//! # lms-closure
//!
//! Cyclic Coordinate Descent (CCD) loop closure for torsion-space loop
//! models (Canutescu & Dunbrack, 2003).  Given a loop whose torsions were
//! just mutated, [`CcdCloser`] sweeps over the rotatable torsions and
//! analytically minimises the distance between the loop's moving end frame
//! and the fixed C-terminal anchor until the loop closure condition is met.
//!
//! ## Quick example
//!
//! ```
//! use lms_closure::{CcdCloser, CcdConfig};
//! use lms_protein::BenchmarkLibrary;
//! use lms_geometry::deg_to_rad;
//!
//! let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
//! // Perturb the native torsions, breaking closure.
//! let mut torsions = target.native_torsions.clone();
//! torsions.rotate_angle(5, deg_to_rad(35.0));
//! // CCD repairs the break.
//! let closer = CcdCloser::with_config(CcdConfig::default());
//! let result = closer.close(&target.frame, &target.sequence, &mut torsions);
//! assert!(result.converged);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod ccd;

#[cfg(feature = "simd")]
pub use batch::optimal_rotation_batch_wide;
#[cfg(feature = "simd")]
pub use batch::rebuild_spine_from_batch;
pub use batch::{optimal_rotation_batch, CcdBatchScratch, CcdLane};
pub use ccd::{CcdCloser, CcdConfig, CcdResult};
