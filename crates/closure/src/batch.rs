//! Population-batched CCD closure: lockstep sweeps over a block of members.
//!
//! The paper closes every conformation of the population concurrently — one
//! device thread per conformation, all threads executing the same CCD sweep
//! with divergence handled by masking.  [`CcdCloser::close_batch`]
//! reproduces that execution shape on the host for one *block* of members:
//! all lanes advance through the same `(sweep, torsion)` schedule in
//! lockstep, members that have converged (or whose start index excludes a
//! torsion) are masked out, and the per-torsion optimal-rotation inner
//! products are gathered into flat SoA arrays and evaluated in one tight
//! batched loop ([`optimal_rotation_batch`]) instead of being interleaved
//! with structure traversal.
//!
//! **Bit-identity.**  Each member's computation depends only on its own
//! state, and the lockstep schedule performs, per member, exactly the same
//! operations in exactly the same order as the sequential
//! [`CcdCloser::close_with_scratch`]: build → (check; sweep over eligible
//! torsions: axis, optimal rotation, conditional apply + suffix rebuild) →
//! deviation.  The batched inner products call the identical scalar kernel
//! per gathered lane, so every rotation angle — and therefore every closed
//! loop — matches the per-member reference bit for bit (property-tested in
//! this module and in `lms-core`'s batched-pipeline equivalence tests).

use crate::ccd::{optimal_rotation, CcdCloser, CcdResult};
use lms_geometry::Vec3;
use lms_protein::{AminoAcid, LoopFrame, LoopStructure, Torsions};

/// One member's view into a population-batched closure: its candidate
/// torsions, its reusable structure buffer, and the first torsion CCD may
/// adjust (the smallest mutated index).
#[derive(Debug)]
pub struct CcdLane<'a> {
    /// The torsion vector CCD adjusts in place.
    pub torsions: &'a mut Torsions,
    /// The member's persistent structure buffer; on return it holds the
    /// structure built from the final torsions (ready for scoring).
    pub structure: &'a mut LoopStructure,
    /// First flat torsion index eligible for adjustment.
    pub start_index: usize,
}

/// Reusable SoA workspace of one closure block: per-lane sweep state plus
/// the gather buffers of the batched optimal-rotation kernel.  All buffers
/// warm up to the block width on first use; afterwards a `close_batch` call
/// performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct CcdBatchScratch {
    deviation: Vec<f64>,
    initial: Vec<f64>,
    sweeps: Vec<usize>,
    rotations: Vec<usize>,
    active: Vec<bool>,
    results: Vec<CcdResult>,
    // Gathered per-rotation inputs, member-major SoA.
    g_lane: Vec<usize>,
    g_pivot: Vec<Vec3>,
    g_axis: Vec<Vec3>,
    g_moving: Vec<[Vec3; 3]>,
    g_theta: Vec<f64>,
}

impl CcdBatchScratch {
    /// Create an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        CcdBatchScratch::default()
    }

    /// Per-lane closure statistics of the most recent
    /// [`CcdCloser::close_batch`] call, in lane order.
    pub fn results(&self) -> &[CcdResult] {
        &self.results
    }

    /// How many of the first `lanes` results of the most recent batch
    /// failed to converge (final deviation above the CCD tolerance).  The
    /// sampler's stall guard aggregates this per iteration: a long streak
    /// of all-lanes non-convergence is what `Error::Stalled` reports.
    pub fn non_converged(&self, lanes: usize) -> usize {
        self.results
            .iter()
            .take(lanes)
            .filter(|r| !r.converged)
            .count()
    }

    fn reset(&mut self, lanes: usize) {
        self.deviation.clear();
        self.deviation.resize(lanes, 0.0);
        self.initial.clear();
        self.initial.resize(lanes, 0.0);
        self.sweeps.clear();
        self.sweeps.resize(lanes, 0);
        self.rotations.clear();
        self.rotations.resize(lanes, 0);
        self.active.clear();
        self.active.resize(lanes, false);
        self.results.clear();
        self.g_lane.clear();
        if self.g_lane.capacity() < lanes {
            self.g_lane.reserve(lanes);
            self.g_pivot.reserve(lanes);
            self.g_axis.reserve(lanes);
            self.g_moving.reserve(lanes);
            self.g_theta.reserve(lanes);
        }
    }
}

/// The batched optimal-rotation kernel: one tight loop over the gathered
/// member-major SoA arrays, with nothing between the inner products — the
/// lane iterations are independent, so the compiler is free to vectorise
/// across members.  Each lane's angle is computed by the *identical* scalar
/// closed form the sequential sweep uses, so the batch is bit-identical to
/// per-member evaluation by construction.
pub fn optimal_rotation_batch(
    moving: &[[Vec3; 3]],
    targets: &[Vec3; 3],
    pivots: &[Vec3],
    axes: &[Vec3],
    thetas: &mut Vec<f64>,
) {
    debug_assert_eq!(moving.len(), pivots.len());
    debug_assert_eq!(moving.len(), axes.len());
    thetas.clear();
    for j in 0..moving.len() {
        thetas.push(optimal_rotation(&moving[j], targets, pivots[j], axes[j]));
    }
}

impl CcdCloser {
    /// Close every lane of one block in population lockstep.
    ///
    /// All lanes march through the same `(sweep, torsion)` schedule;
    /// converged and out-of-range lanes are masked.  Per-lane statistics
    /// land in `scratch.results()` (lane order) and each lane's structure
    /// buffer holds the final built candidate, exactly as after a
    /// per-member [`CcdCloser::close_with_scratch`] call.
    ///
    /// # Panics
    ///
    /// Panics if the lanes disagree on torsion count (a block always comes
    /// from one population over one target).
    pub fn close_batch(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        lanes: &mut [CcdLane<'_>],
        scratch: &mut CcdBatchScratch,
    ) {
        let builder = *self.builder();
        let config = *self.config();
        let targets = frame.c_anchor.atoms();
        scratch.reset(lanes.len());
        if lanes.is_empty() {
            return;
        }
        let n_angles = lanes[0].torsions.n_angles();
        for lane in lanes.iter() {
            assert_eq!(
                lane.torsions.n_angles(),
                n_angles,
                "all lanes of a closure block must share the loop length"
            );
        }

        // Initial build + deviation, exactly as the sequential path.
        for (j, lane) in lanes.iter_mut().enumerate() {
            builder.build_into(frame, sequence, lane.torsions, lane.structure);
            let dev = builder.closure_deviation(frame, lane.structure);
            scratch.initial[j] = dev;
            scratch.deviation[j] = dev;
        }

        loop {
            // Mask: a lane sweeps while its own `while` condition holds.
            let mut any_active = false;
            for j in 0..lanes.len() {
                let go = scratch.deviation[j] > config.tolerance
                    && scratch.sweeps[j] < config.max_sweeps;
                scratch.active[j] = go;
                if go {
                    scratch.sweeps[j] += 1;
                    any_active = true;
                }
            }
            if !any_active {
                break;
            }

            for k in 0..n_angles {
                // Gather phase: every active lane whose start index admits
                // torsion `k` contributes its pivot, axis and moving end
                // frame to the SoA arrays.
                scratch.g_lane.clear();
                scratch.g_pivot.clear();
                scratch.g_axis.clear();
                scratch.g_moving.clear();
                let (residue, kind) = Torsions::describe_angle(k);
                for (j, lane) in lanes.iter().enumerate() {
                    if !scratch.active[j] || k < lane.start_index.min(n_angles) {
                        continue;
                    }
                    let res_atoms = &lane.structure.residues[residue];
                    let (pivot, axis_end) = match kind {
                        lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                        lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                    };
                    let Some(axis) = (axis_end - pivot).try_normalize() else {
                        continue;
                    };
                    scratch.g_lane.push(j);
                    scratch.g_pivot.push(pivot);
                    scratch.g_axis.push(axis);
                    scratch.g_moving.push(lane.structure.end_frame.atoms());
                }

                // Batched inner products across the gathered members.
                optimal_rotation_batch(
                    &scratch.g_moving,
                    &targets,
                    &scratch.g_pivot,
                    &scratch.g_axis,
                    &mut scratch.g_theta,
                );

                // Apply phase: accepted rotations mutate their lane and
                // suffix-rebuild its structure.  Only the backbone spine and
                // the end frame feed the sweep (rotation pivots/axes and the
                // deviation metric), so the rebuild skips the O/centroid
                // placements; one full rebuild after the sweeps recovers
                // them bit-identically.
                for (g, &j) in scratch.g_lane.iter().enumerate() {
                    let delta = scratch.g_theta[g];
                    if delta.abs() < 1e-9 {
                        continue;
                    }
                    let lane = &mut lanes[j];
                    lane.torsions.rotate_angle(k, delta);
                    scratch.rotations[j] += 1;
                    builder.rebuild_spine_from(frame, sequence, lane.torsions, k, lane.structure);
                }
            }

            // Post-sweep deviation for the lanes that swept.
            for (j, lane) in lanes.iter().enumerate() {
                if scratch.active[j] {
                    scratch.deviation[j] = builder.closure_deviation(frame, lane.structure);
                }
            }
        }

        // The sweeps rebuilt spines only; one full rebuild per rotated lane
        // restores the O atoms and centroids, bit-identical to the
        // sequential path's final state (a full build from the final
        // torsions equals the incremental chain — property-tested in
        // `lms-protein/tests/incremental_rebuild.rs`).  Untouched lanes
        // still hold their exact initial full build.
        for (j, lane) in lanes.iter_mut().enumerate() {
            if scratch.rotations[j] > 0 {
                builder.build_into(frame, sequence, lane.torsions, lane.structure);
            }
        }

        for j in 0..lanes.len() {
            scratch.results.push(CcdResult {
                converged: scratch.deviation[j] <= config.tolerance,
                sweeps: scratch.sweeps[j],
                initial_deviation: scratch.initial[j],
                final_deviation: scratch.deviation[j],
                rotations_applied: scratch.rotations[j],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccd::CcdConfig;
    use lms_geometry::deg_to_rad;
    use lms_protein::BenchmarkLibrary;
    use rand::Rng;

    fn perturbed(name: &str, count: usize, seed: u64) -> (lms_protein::LoopTarget, Vec<Torsions>) {
        let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
        let factory = lms_geometry::StreamRngFactory::new(seed);
        let members = (0..count)
            .map(|m| {
                let mut rng = factory.stream(m as u64, 0);
                let mut t = target.native_torsions.clone();
                for k in 0..t.n_angles() {
                    t.rotate_angle(k, deg_to_rad((rng.gen::<f64>() * 2.0 - 1.0) * 40.0));
                }
                t
            })
            .collect();
        (target, members)
    }

    #[test]
    fn batch_closure_is_bit_identical_to_per_member() {
        for (name, seed) in [("1cex", 3u64), ("5pti", 11)] {
            let (target, members) = perturbed(name, 7, seed);
            let closer = CcdCloser::with_config(CcdConfig::new().with_max_sweeps(64));
            let n_res = target.n_residues();

            // Per-member reference.
            let mut ref_torsions = members.clone();
            let mut ref_results = Vec::new();
            let mut ref_structures = Vec::new();
            for (m, t) in ref_torsions.iter_mut().enumerate() {
                let mut s = LoopStructure::with_capacity(n_res);
                let start = m % 5; // exercise heterogeneous start indices
                ref_results.push(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    t,
                    start,
                    &mut s,
                ));
                ref_structures.push(s);
            }

            // One lockstep block over the same members.
            let mut batch_torsions = members.clone();
            let mut structures: Vec<LoopStructure> = (0..members.len())
                .map(|_| LoopStructure::with_capacity(n_res))
                .collect();
            let mut lanes: Vec<CcdLane> = batch_torsions
                .iter_mut()
                .zip(structures.iter_mut())
                .enumerate()
                .map(|(m, (t, s))| CcdLane {
                    torsions: t,
                    structure: s,
                    start_index: m % 5,
                })
                .collect();
            let mut scratch = CcdBatchScratch::new();
            closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
            drop(lanes);

            assert_eq!(batch_torsions, ref_torsions, "{name}: torsions diverged");
            assert_eq!(
                scratch.results(),
                &ref_results[..],
                "{name}: stats diverged"
            );
            assert_eq!(structures, ref_structures, "{name}: structures diverged");
        }
    }

    #[test]
    fn block_partitioning_does_not_change_results() {
        // Closing the same population in blocks of 1, 3 and all-at-once
        // gives identical trajectories: lanes are fully independent.
        let (target, members) = perturbed("1akz", 6, 17);
        let closer = CcdCloser::with_config(CcdConfig::new().with_max_sweeps(48));
        let n_res = target.n_residues();
        let close_in_blocks = |width: usize| -> Vec<Torsions> {
            let mut torsions = members.clone();
            let mut structures: Vec<LoopStructure> = (0..members.len())
                .map(|_| LoopStructure::with_capacity(n_res))
                .collect();
            let mut scratch = CcdBatchScratch::new();
            for (ts, ss) in torsions.chunks_mut(width).zip(structures.chunks_mut(width)) {
                let mut lanes: Vec<CcdLane> = ts
                    .iter_mut()
                    .zip(ss.iter_mut())
                    .map(|(t, s)| CcdLane {
                        torsions: t,
                        structure: s,
                        start_index: 0,
                    })
                    .collect();
                closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
            }
            torsions
        };
        let one = close_in_blocks(1);
        let three = close_in_blocks(3);
        let all = close_in_blocks(members.len());
        assert_eq!(one, three);
        assert_eq!(one, all);
    }

    #[test]
    fn batch_rotation_kernel_matches_scalar() {
        let targets = [
            Vec3::new(2.0, 0.5, 1.0),
            Vec3::new(-1.0, 3.0, -1.0),
            Vec3::new(1.5, 1.5, 0.5),
        ];
        let moving: Vec<[Vec3; 3]> = (0..16)
            .map(|i| {
                let s = i as f64 * 0.37;
                [
                    Vec3::new(2.0 + s, 0.5 - s, 1.0),
                    Vec3::new(-1.0, 3.0 + s, -1.0 + s),
                    Vec3::new(1.5 - s, 1.5, 0.5 + s),
                ]
            })
            .collect();
        let pivots: Vec<Vec3> = (0..16)
            .map(|i| Vec3::new(0.1 * i as f64, 0.0, 0.0))
            .collect();
        let axes: Vec<Vec3> = (0..16)
            .map(|i| Vec3::new(0.2 * i as f64, 1.0, 0.5).try_normalize().unwrap())
            .collect();
        let mut thetas = Vec::new();
        optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut thetas);
        for j in 0..16 {
            let scalar = optimal_rotation(&moving[j], &targets, pivots[j], axes[j]);
            assert_eq!(thetas[j].to_bits(), scalar.to_bits(), "lane {j}");
        }
    }

    #[test]
    fn empty_and_converged_blocks_are_noops() {
        let mut scratch = CcdBatchScratch::new();
        let closer = CcdCloser::default();
        let target = BenchmarkLibrary::standard().target_by_name("5pti").unwrap();
        let mut lanes: Vec<CcdLane> = Vec::new();
        closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
        assert!(scratch.results().is_empty());

        // A native (already closed) lane performs zero sweeps.
        let mut t = target.native_torsions.clone();
        let mut s = LoopStructure::with_capacity(target.n_residues());
        let mut lanes = vec![CcdLane {
            torsions: &mut t,
            structure: &mut s,
            start_index: 0,
        }];
        closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
        drop(lanes);
        assert_eq!(scratch.results().len(), 1);
        assert!(scratch.results()[0].converged);
        assert_eq!(scratch.results()[0].sweeps, 0);
        assert_eq!(scratch.results()[0].rotations_applied, 0);
        assert_eq!(scratch.non_converged(1), 0);
        assert_eq!(t, target.native_torsions);
    }
}
