//! Population-batched CCD closure: lockstep sweeps over a block of members.
//!
//! The paper closes every conformation of the population concurrently — one
//! device thread per conformation, all threads executing the same CCD sweep
//! with divergence handled by masking.  [`CcdCloser::close_batch`]
//! reproduces that execution shape on the host for one *block* of members:
//! all lanes advance through the same `(sweep, torsion)` schedule in
//! lockstep, members that have converged (or whose start index excludes a
//! torsion) are masked out, and the per-torsion optimal-rotation inner
//! products are gathered into flat SoA arrays and evaluated in one tight
//! batched loop ([`optimal_rotation_batch`]) instead of being interleaved
//! with structure traversal.
//!
//! **Bit-identity.**  Each member's computation depends only on its own
//! state, and the lockstep schedule performs, per member, exactly the same
//! operations in exactly the same order as the sequential
//! [`CcdCloser::close_with_scratch`]: build → (check; sweep over eligible
//! torsions: axis, optimal rotation, conditional apply + suffix rebuild) →
//! deviation.  The batched inner products call the identical scalar kernel
//! per gathered lane, so every rotation angle — and therefore every closed
//! loop — matches the per-member reference bit for bit (property-tested in
//! this module and in `lms-core`'s batched-pipeline equivalence tests).

use crate::ccd::{optimal_rotation, CcdCloser, CcdResult};
use lms_geometry::Vec3;
#[cfg(feature = "simd")]
use lms_protein::{sin_cos_lanes, AnchorFrame, LoopBuilder, SpineKernel, WideVec3};
use lms_protein::{AminoAcid, LoopFrame, LoopStructure, Torsions};

/// One member's view into a population-batched closure: its candidate
/// torsions, its reusable structure buffer, and the first torsion CCD may
/// adjust (the smallest mutated index).
#[derive(Debug)]
pub struct CcdLane<'a> {
    /// The torsion vector CCD adjusts in place.
    pub torsions: &'a mut Torsions,
    /// The member's persistent structure buffer; on return it holds the
    /// structure built from the final torsions (ready for scoring).
    pub structure: &'a mut LoopStructure,
    /// First flat torsion index eligible for adjustment.
    pub start_index: usize,
}

/// Reusable SoA workspace of one closure block: per-lane sweep state plus
/// the gather buffers of the batched optimal-rotation kernel.  All buffers
/// warm up to the block width on first use; afterwards a `close_batch` call
/// performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct CcdBatchScratch {
    deviation: Vec<f64>,
    initial: Vec<f64>,
    sweeps: Vec<usize>,
    rotations: Vec<usize>,
    active: Vec<bool>,
    results: Vec<CcdResult>,
    // Gathered per-rotation inputs, member-major SoA.
    g_lane: Vec<usize>,
    g_pivot: Vec<Vec3>,
    g_axis: Vec<Vec3>,
    g_moving: Vec<[Vec3; 3]>,
    g_theta: Vec<f64>,
    // Lanes whose rotation was accepted this torsion — the rebuild
    // worklist the lane-major spine driver chunks into wide groups.
    g_accept: Vec<usize>,
}

impl CcdBatchScratch {
    /// Create an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        CcdBatchScratch::default()
    }

    /// Per-lane closure statistics of the most recent
    /// [`CcdCloser::close_batch`] call, in lane order.
    pub fn results(&self) -> &[CcdResult] {
        &self.results
    }

    /// How many of the first `lanes` results of the most recent batch
    /// failed to converge (final deviation above the CCD tolerance).  The
    /// sampler's stall guard aggregates this per iteration: a long streak
    /// of all-lanes non-convergence is what `Error::Stalled` reports.
    pub fn non_converged(&self, lanes: usize) -> usize {
        self.results
            .iter()
            .take(lanes)
            .filter(|r| !r.converged)
            .count()
    }

    fn reset(&mut self, lanes: usize) {
        self.deviation.clear();
        self.deviation.resize(lanes, 0.0);
        self.initial.clear();
        self.initial.resize(lanes, 0.0);
        self.sweeps.clear();
        self.sweeps.resize(lanes, 0);
        self.rotations.clear();
        self.rotations.resize(lanes, 0);
        self.active.clear();
        self.active.resize(lanes, false);
        self.results.clear();
        self.g_lane.clear();
        if self.g_lane.capacity() < lanes {
            self.g_lane.reserve(lanes);
            self.g_pivot.reserve(lanes);
            self.g_axis.reserve(lanes);
            self.g_moving.reserve(lanes);
            self.g_theta.reserve(lanes);
        }
        self.g_accept.clear();
        if self.g_accept.capacity() < lanes {
            self.g_accept.reserve(lanes);
        }
    }
}

/// The batched optimal-rotation kernel: one tight loop over the gathered
/// member-major SoA arrays, with nothing between the inner products — the
/// lane iterations are independent, so the compiler is free to vectorise
/// across members.  Each lane's angle is computed by the *identical* scalar
/// closed form the sequential sweep uses, so the batch is bit-identical to
/// per-member evaluation by construction.
pub fn optimal_rotation_batch(
    moving: &[[Vec3; 3]],
    targets: &[Vec3; 3],
    pivots: &[Vec3],
    axes: &[Vec3],
    thetas: &mut Vec<f64>,
) {
    debug_assert_eq!(moving.len(), pivots.len());
    debug_assert_eq!(moving.len(), axes.len());
    thetas.clear();
    for j in 0..moving.len() {
        thetas.push(optimal_rotation(&moving[j], targets, pivots[j], axes[j]));
    }
}

/// The explicitly-wide optimal-rotation kernel: the gathered lanes are
/// processed four at a time in wide-`f64` registers (the vendored
/// portable-SIMD shim), with a scalar tail for the remainder.
///
/// **Bit-identity.**  The wide path transposes each chunk of four lanes
/// into SoA component registers and then performs, per lane, *exactly* the
/// scalar kernel's operation sequence — the same left-associated dot
/// products, the same projection and cross-product component expressions,
/// the same serial accumulation over the three anchor-atom pairs — using
/// element-wise IEEE operations (no FMA, no reassociation).  Only the
/// final `atan2` runs scalar per lane.  Every lane therefore matches
/// [`optimal_rotation_batch`] bit for bit (asserted by the tests below and
/// by the cross-backend pipeline equivalence harness in `lms-core`).
#[cfg(feature = "simd")]
pub fn optimal_rotation_batch_wide(
    moving: &[[Vec3; 3]],
    targets: &[Vec3; 3],
    pivots: &[Vec3],
    axes: &[Vec3],
    thetas: &mut Vec<f64>,
) {
    const W: usize = wide::f64x4::LANES;
    debug_assert_eq!(moving.len(), pivots.len());
    debug_assert_eq!(moving.len(), axes.len());
    thetas.clear();
    let n = moving.len();
    let chunks = n / W;
    for c in 0..chunks {
        wide_kernel::optimal_rotation_chunk(moving, targets, pivots, axes, c * W, thetas);
    }
    for j in chunks * W..n {
        thetas.push(optimal_rotation(&moving[j], targets, pivots[j], axes[j]));
    }
}

#[cfg(feature = "simd")]
mod wide_kernel {
    use lms_geometry::Vec3;
    use wide::f64x4;

    /// Wide 3-vector: one component register per coordinate, four lanes
    /// (population members) each.  Every method mirrors the corresponding
    /// `Vec3` operation's exact component expressions and association so
    /// per-lane results are bit-identical to the scalar kernel.
    #[derive(Clone, Copy)]
    struct WVec3 {
        x: f64x4,
        y: f64x4,
        z: f64x4,
    }

    impl WVec3 {
        /// Transpose four consecutive gathered vectors into SoA registers.
        #[inline(always)]
        fn gather(vs: &[Vec3], base: usize) -> WVec3 {
            WVec3 {
                x: f64x4::from_array([vs[base].x, vs[base + 1].x, vs[base + 2].x, vs[base + 3].x]),
                y: f64x4::from_array([vs[base].y, vs[base + 1].y, vs[base + 2].y, vs[base + 3].y]),
                z: f64x4::from_array([vs[base].z, vs[base + 1].z, vs[base + 2].z, vs[base + 3].z]),
            }
        }

        /// Transpose anchor-atom pair `p` of four consecutive lanes.
        #[inline(always)]
        fn gather_pair(moving: &[[Vec3; 3]], base: usize, p: usize) -> WVec3 {
            WVec3 {
                x: f64x4::from_array([
                    moving[base][p].x,
                    moving[base + 1][p].x,
                    moving[base + 2][p].x,
                    moving[base + 3][p].x,
                ]),
                y: f64x4::from_array([
                    moving[base][p].y,
                    moving[base + 1][p].y,
                    moving[base + 2][p].y,
                    moving[base + 3][p].y,
                ]),
                z: f64x4::from_array([
                    moving[base][p].z,
                    moving[base + 1][p].z,
                    moving[base + 2][p].z,
                    moving[base + 3][p].z,
                ]),
            }
        }

        /// Broadcast one vector (the shared anchor target) to all lanes.
        #[inline(always)]
        fn splat(v: Vec3) -> WVec3 {
            WVec3 {
                x: f64x4::splat(v.x),
                y: f64x4::splat(v.y),
                z: f64x4::splat(v.z),
            }
        }

        #[inline(always)]
        fn sub(self, o: WVec3) -> WVec3 {
            WVec3 {
                x: self.x - o.x,
                y: self.y - o.y,
                z: self.z - o.z,
            }
        }

        #[inline(always)]
        fn scale(self, s: f64x4) -> WVec3 {
            WVec3 {
                x: self.x * s,
                y: self.y * s,
                z: self.z * s,
            }
        }

        /// Same left-to-right association as `Vec3::dot`.
        #[inline(always)]
        fn dot(self, o: WVec3) -> f64x4 {
            self.x * o.x + self.y * o.y + self.z * o.z
        }

        /// Same component expressions as `Vec3::cross`.
        #[inline(always)]
        fn cross(self, o: WVec3) -> WVec3 {
            WVec3 {
                x: self.y * o.z - self.z * o.y,
                y: self.z * o.x - self.x * o.z,
                z: self.x * o.y - self.y * o.x,
            }
        }
    }

    /// One four-lane chunk of the Canutescu–Dunbrack closed form: the
    /// scalar `optimal_rotation`, lane-parallel.
    pub(super) fn optimal_rotation_chunk(
        moving: &[[Vec3; 3]],
        targets: &[Vec3; 3],
        pivots: &[Vec3],
        axes: &[Vec3],
        base: usize,
        thetas: &mut Vec<f64>,
    ) {
        let pivot = WVec3::gather(pivots, base);
        let axis = WVec3::gather(axes, base);
        let mut a = f64x4::ZERO;
        let mut b = f64x4::ZERO;
        // Serial accumulation over the three anchor-atom pairs, exactly as
        // the scalar kernel's `for (m, t) in moving.zip(targets)` loop.
        for (p, target) in targets.iter().enumerate() {
            let m_rel = WVec3::gather_pair(moving, base, p).sub(pivot);
            let t_rel = WVec3::splat(*target).sub(pivot);
            // Components perpendicular to the axis.
            let r = m_rel.sub(axis.scale(m_rel.dot(axis)));
            let f = t_rel.sub(axis.scale(t_rel.dot(axis)));
            a += f.dot(r);
            b += f.dot(axis.cross(r));
        }
        let (aa, bb) = (a.to_array(), b.to_array());
        for l in 0..f64x4::LANES {
            thetas.push(if aa[l].abs() < 1e-15 && bb[l].abs() < 1e-15 {
                0.0
            } else {
                bb[l].atan2(aa[l])
            });
        }
    }
}

/// The lane-major (member-transposed) NeRF spine rebuild: every accepted
/// lane of one torsion step rebuilds from the *same* changed angle — and
/// therefore from the same first residue over the same suffix — so the
/// driver chunks the accepted lanes into `f64x4` groups and marches each
/// group through [`SpineKernel::place_spine`] with one member per SIMD
/// lane.  Per lane the kernel performs exactly the scalar
/// [`LoopBuilder::rebuild_spine_from`] operation sequence (see
/// `lms_protein::backbone_wide`), so the rebuilt spines and end frames are
/// bit-identical to the scalar driver's.  Groups in which any lane would
/// take a scalar degeneracy branch fall back to the scalar rebuild per
/// member, which restarts from the untouched prefix and overwrites any
/// partially scattered suffix — bit-identical either way.
///
/// On `x86_64` the drive loop dispatches at runtime to an
/// `#[target_feature(enable = "avx2")]` clone when the host CPU supports
/// AVX2 (`wide::runtime_avx2`), re-compiling the inlined lane arithmetic
/// with the AVX ISA available; the portable/SSE2 path is the fallback.
///
/// Public so the CCD benchmark can time the lane-major rebuild in
/// isolation against the scalar per-member driver; production code reaches
/// it through [`CcdCloser::close_batch`].
#[cfg(feature = "simd")]
pub fn rebuild_spine_from_batch(
    builder: &LoopBuilder,
    kernel: &SpineKernel,
    frame: &LoopFrame,
    sequence: &[AminoAcid],
    lanes: &mut [CcdLane<'_>],
    accepted: &[usize],
    changed_angle: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if wide::runtime_avx2() {
        // SAFETY: AVX2 support on the running CPU was just verified.
        unsafe {
            rebuild_spine_from_batch_avx2(
                builder,
                kernel,
                frame,
                sequence,
                lanes,
                accepted,
                changed_angle,
            );
        }
        return;
    }
    rebuild_spine_from_batch_generic(
        builder,
        kernel,
        frame,
        sequence,
        lanes,
        accepted,
        changed_angle,
    );
}

/// The AVX2-featured clone of the rebuild drive loop: identical code,
/// compiled with the AVX ISA enabled so the `#[inline(always)]` lane
/// arithmetic underneath picks up VEX encodings.  Results are bit-identical
/// to the generic path (every lane operation is the same IEEE instruction
/// either way); only the instruction selection differs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn rebuild_spine_from_batch_avx2(
    builder: &LoopBuilder,
    kernel: &SpineKernel,
    frame: &LoopFrame,
    sequence: &[AminoAcid],
    lanes: &mut [CcdLane<'_>],
    accepted: &[usize],
    changed_angle: usize,
) {
    rebuild_spine_from_batch_generic(
        builder,
        kernel,
        frame,
        sequence,
        lanes,
        accepted,
        changed_angle,
    );
}

#[cfg(feature = "simd")]
#[inline(always)]
fn rebuild_spine_from_batch_generic(
    builder: &LoopBuilder,
    kernel: &SpineKernel,
    frame: &LoopFrame,
    sequence: &[AminoAcid],
    lanes: &mut [CcdLane<'_>],
    accepted: &[usize],
    changed_angle: usize,
) {
    for group in accepted.chunks(wide::f64x4::LANES) {
        rebuild_spine_group(
            builder,
            kernel,
            frame,
            sequence,
            lanes,
            group,
            changed_angle,
        );
    }
}

/// Rebuild one group of up to four accepted lanes in lockstep.  Ragged
/// groups pad by replicating the first lane's indices (the pad lanes
/// compute real arithmetic but never scatter), so raggedness cannot change
/// any member's bits.
#[cfg(feature = "simd")]
#[inline(always)]
fn rebuild_spine_group(
    builder: &LoopBuilder,
    kernel: &SpineKernel,
    frame: &LoopFrame,
    sequence: &[AminoAcid],
    lanes: &mut [CcdLane<'_>],
    group: &[usize],
    changed_angle: usize,
) {
    debug_assert!(!group.is_empty() && group.len() <= wide::f64x4::LANES);
    let len = sequence.len();
    let (first, _) = Torsions::describe_angle(changed_angle);
    let idx: [usize; 4] = core::array::from_fn(|l| group[l.min(group.len() - 1)]);

    let scalar_fallback = |lanes: &mut [CcdLane<'_>]| {
        for &j in group {
            let lane = &mut lanes[j];
            builder.rebuild_spine_from(
                frame,
                sequence,
                lane.torsions,
                changed_angle,
                lane.structure,
            );
        }
    };

    // The rebuild context: the shared N-anchor frame for a prefix rebuild
    // (identical in every lane), or each lane's own residue `first - 1`
    // (untouched by this torsion step, so still current).
    let (mut prev_n, mut prev_ca, mut prev_c, mut prev_psi) = if first == 0 {
        (
            WideVec3::splat(frame.n_anchor.n),
            WideVec3::splat(frame.n_anchor.ca),
            WideVec3::splat(frame.n_anchor.c),
            [frame.n_anchor_psi; 4],
        )
    } else {
        (
            WideVec3::from_lanes(core::array::from_fn(|l| {
                lanes[idx[l]].structure.residues[first - 1].n
            })),
            WideVec3::from_lanes(core::array::from_fn(|l| {
                lanes[idx[l]].structure.residues[first - 1].ca
            })),
            WideVec3::from_lanes(core::array::from_fn(|l| {
                lanes[idx[l]].structure.residues[first - 1].c
            })),
            core::array::from_fn(|l| lanes[idx[l]].torsions.psi(first - 1)),
        )
    };

    for i in first..len {
        let (psi_sin, psi_cos) = sin_cos_lanes(prev_psi);
        let (phi_sin, phi_cos) =
            sin_cos_lanes(core::array::from_fn(|l| lanes[idx[l]].torsions.phi(i)));
        let Some((n, ca, c)) =
            kernel.place_spine(prev_n, prev_ca, prev_c, psi_sin, psi_cos, phi_sin, phi_cos)
        else {
            scalar_fallback(lanes);
            return;
        };
        for (l, &j) in group.iter().enumerate() {
            let r = &mut lanes[j].structure.residues[i];
            r.n = n.lane(l);
            r.ca = ca.lane(l);
            r.c = c.lane(l);
        }
        prev_n = n;
        prev_ca = ca;
        prev_c = c;
        prev_psi = core::array::from_fn(|l| lanes[idx[l]].torsions.psi(i));
    }

    let (psi_sin, psi_cos) = sin_cos_lanes(prev_psi);
    match kernel.place_end_frame(prev_n, prev_ca, prev_c, psi_sin, psi_cos) {
        Some((n, ca, c)) => {
            for (l, &j) in group.iter().enumerate() {
                lanes[j].structure.end_frame = AnchorFrame::new(n.lane(l), ca.lane(l), c.lane(l));
            }
        }
        None => scalar_fallback(lanes),
    }
}

impl CcdCloser {
    /// Close every lane of one block in population lockstep.
    ///
    /// All lanes march through the same `(sweep, torsion)` schedule;
    /// converged and out-of-range lanes are masked.  Per-lane statistics
    /// land in `scratch.results()` (lane order) and each lane's structure
    /// buffer holds the final built candidate, exactly as after a
    /// per-member [`CcdCloser::close_with_scratch`] call.
    ///
    /// # Panics
    ///
    /// Panics if the lanes disagree on torsion count (a block always comes
    /// from one population over one target).
    pub fn close_batch(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        lanes: &mut [CcdLane<'_>],
        scratch: &mut CcdBatchScratch,
    ) {
        let builder = *self.builder();
        let config = *self.config();
        let targets = frame.c_anchor.atoms();
        // Hoist the lane-major spine kernel's constants (bond-angle
        // products, ω and C-anchor-φ sin/cos) once per block.
        #[cfg(feature = "simd")]
        let spine_kernel = self
            .wide_lanes()
            .then(|| SpineKernel::new(builder.geometry(), frame));
        scratch.reset(lanes.len());
        if lanes.is_empty() {
            return;
        }
        let n_angles = lanes[0].torsions.n_angles();
        for lane in lanes.iter() {
            assert_eq!(
                lane.torsions.n_angles(),
                n_angles,
                "all lanes of a closure block must share the loop length"
            );
        }

        // Initial build + deviation, exactly as the sequential path.
        for (j, lane) in lanes.iter_mut().enumerate() {
            builder.build_into(frame, sequence, lane.torsions, lane.structure);
            let dev = builder.closure_deviation(frame, lane.structure);
            scratch.initial[j] = dev;
            scratch.deviation[j] = dev;
        }

        loop {
            // Mask: a lane sweeps while its own `while` condition holds.
            let mut any_active = false;
            for j in 0..lanes.len() {
                let go = scratch.deviation[j] > config.tolerance
                    && scratch.sweeps[j] < config.max_sweeps;
                scratch.active[j] = go;
                if go {
                    scratch.sweeps[j] += 1;
                    any_active = true;
                }
            }
            if !any_active {
                break;
            }

            for k in 0..n_angles {
                // Gather phase: every active lane whose start index admits
                // torsion `k` contributes its pivot, axis and moving end
                // frame to the SoA arrays.
                scratch.g_lane.clear();
                scratch.g_pivot.clear();
                scratch.g_axis.clear();
                scratch.g_moving.clear();
                let (residue, kind) = Torsions::describe_angle(k);
                for (j, lane) in lanes.iter().enumerate() {
                    if !scratch.active[j] || k < lane.start_index.min(n_angles) {
                        continue;
                    }
                    let res_atoms = &lane.structure.residues[residue];
                    let (pivot, axis_end) = match kind {
                        lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                        lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                    };
                    let Some(axis) = (axis_end - pivot).try_normalize() else {
                        continue;
                    };
                    scratch.g_lane.push(j);
                    scratch.g_pivot.push(pivot);
                    scratch.g_axis.push(axis);
                    scratch.g_moving.push(lane.structure.end_frame.atoms());
                }

                // Batched inner products across the gathered members —
                // wide-`f64` lanes when the closer (i.e. the SIMD executor
                // backend) asks for them, the scalar kernel otherwise;
                // bit-identical either way.
                #[cfg(feature = "simd")]
                if self.wide_lanes() {
                    optimal_rotation_batch_wide(
                        &scratch.g_moving,
                        &targets,
                        &scratch.g_pivot,
                        &scratch.g_axis,
                        &mut scratch.g_theta,
                    );
                } else {
                    optimal_rotation_batch(
                        &scratch.g_moving,
                        &targets,
                        &scratch.g_pivot,
                        &scratch.g_axis,
                        &mut scratch.g_theta,
                    );
                }
                #[cfg(not(feature = "simd"))]
                optimal_rotation_batch(
                    &scratch.g_moving,
                    &targets,
                    &scratch.g_pivot,
                    &scratch.g_axis,
                    &mut scratch.g_theta,
                );

                // Apply phase: accepted rotations mutate their lane and
                // suffix-rebuild its structure.  Only the backbone spine and
                // the end frame feed the sweep (rotation pivots/axes and the
                // deviation metric), so the rebuild skips the O/centroid
                // placements; one full rebuild after the sweeps recovers
                // them bit-identically.  Rotations land first so the
                // rebuild worklist can be driven lane-major: all accepted
                // lanes rebuild from the same changed angle `k`.
                scratch.g_accept.clear();
                for (g, &j) in scratch.g_lane.iter().enumerate() {
                    let delta = scratch.g_theta[g];
                    if delta.abs() < 1e-9 {
                        continue;
                    }
                    lanes[j].torsions.rotate_angle(k, delta);
                    scratch.rotations[j] += 1;
                    scratch.g_accept.push(j);
                }
                #[cfg(feature = "simd")]
                if let Some(kernel) = &spine_kernel {
                    rebuild_spine_from_batch(
                        &builder,
                        kernel,
                        frame,
                        sequence,
                        lanes,
                        &scratch.g_accept,
                        k,
                    );
                } else {
                    for &j in &scratch.g_accept {
                        let lane = &mut lanes[j];
                        builder.rebuild_spine_from(
                            frame,
                            sequence,
                            lane.torsions,
                            k,
                            lane.structure,
                        );
                    }
                }
                #[cfg(not(feature = "simd"))]
                for &j in &scratch.g_accept {
                    let lane = &mut lanes[j];
                    builder.rebuild_spine_from(frame, sequence, lane.torsions, k, lane.structure);
                }
            }

            // Post-sweep deviation for the lanes that swept.
            for (j, lane) in lanes.iter().enumerate() {
                if scratch.active[j] {
                    scratch.deviation[j] = builder.closure_deviation(frame, lane.structure);
                }
            }
        }

        // The sweeps rebuilt spines only; one full rebuild per rotated lane
        // restores the O atoms and centroids, bit-identical to the
        // sequential path's final state (a full build from the final
        // torsions equals the incremental chain — property-tested in
        // `lms-protein/tests/incremental_rebuild.rs`).  Untouched lanes
        // still hold their exact initial full build.
        for (j, lane) in lanes.iter_mut().enumerate() {
            if scratch.rotations[j] > 0 {
                builder.build_into(frame, sequence, lane.torsions, lane.structure);
            }
        }

        for j in 0..lanes.len() {
            scratch.results.push(CcdResult {
                converged: scratch.deviation[j] <= config.tolerance,
                sweeps: scratch.sweeps[j],
                initial_deviation: scratch.initial[j],
                final_deviation: scratch.deviation[j],
                rotations_applied: scratch.rotations[j],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccd::CcdConfig;
    use lms_geometry::deg_to_rad;
    use lms_protein::BenchmarkLibrary;
    use rand::Rng;

    fn perturbed(name: &str, count: usize, seed: u64) -> (lms_protein::LoopTarget, Vec<Torsions>) {
        let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
        let factory = lms_geometry::StreamRngFactory::new(seed);
        let members = (0..count)
            .map(|m| {
                let mut rng = factory.stream(m as u64, 0);
                let mut t = target.native_torsions.clone();
                for k in 0..t.n_angles() {
                    t.rotate_angle(k, deg_to_rad((rng.gen::<f64>() * 2.0 - 1.0) * 40.0));
                }
                t
            })
            .collect();
        (target, members)
    }

    #[test]
    fn batch_closure_is_bit_identical_to_per_member() {
        for (name, seed) in [("1cex", 3u64), ("5pti", 11)] {
            let (target, members) = perturbed(name, 7, seed);
            let closer = CcdCloser::with_config(CcdConfig::new().with_max_sweeps(64));
            let n_res = target.n_residues();

            // Per-member reference.
            let mut ref_torsions = members.clone();
            let mut ref_results = Vec::new();
            let mut ref_structures = Vec::new();
            for (m, t) in ref_torsions.iter_mut().enumerate() {
                let mut s = LoopStructure::with_capacity(n_res);
                let start = m % 5; // exercise heterogeneous start indices
                ref_results.push(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    t,
                    start,
                    &mut s,
                ));
                ref_structures.push(s);
            }

            // One lockstep block over the same members.
            let mut batch_torsions = members.clone();
            let mut structures: Vec<LoopStructure> = (0..members.len())
                .map(|_| LoopStructure::with_capacity(n_res))
                .collect();
            let mut lanes: Vec<CcdLane> = batch_torsions
                .iter_mut()
                .zip(structures.iter_mut())
                .enumerate()
                .map(|(m, (t, s))| CcdLane {
                    torsions: t,
                    structure: s,
                    start_index: m % 5,
                })
                .collect();
            let mut scratch = CcdBatchScratch::new();
            closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
            drop(lanes);

            assert_eq!(batch_torsions, ref_torsions, "{name}: torsions diverged");
            assert_eq!(
                scratch.results(),
                &ref_results[..],
                "{name}: stats diverged"
            );
            assert_eq!(structures, ref_structures, "{name}: structures diverged");
        }
    }

    #[test]
    fn block_partitioning_does_not_change_results() {
        // Closing the same population in blocks of 1, 3 and all-at-once
        // gives identical trajectories: lanes are fully independent.
        let (target, members) = perturbed("1akz", 6, 17);
        let closer = CcdCloser::with_config(CcdConfig::new().with_max_sweeps(48));
        let n_res = target.n_residues();
        let close_in_blocks = |width: usize| -> Vec<Torsions> {
            let mut torsions = members.clone();
            let mut structures: Vec<LoopStructure> = (0..members.len())
                .map(|_| LoopStructure::with_capacity(n_res))
                .collect();
            let mut scratch = CcdBatchScratch::new();
            for (ts, ss) in torsions.chunks_mut(width).zip(structures.chunks_mut(width)) {
                let mut lanes: Vec<CcdLane> = ts
                    .iter_mut()
                    .zip(ss.iter_mut())
                    .map(|(t, s)| CcdLane {
                        torsions: t,
                        structure: s,
                        start_index: 0,
                    })
                    .collect();
                closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
            }
            torsions
        };
        let one = close_in_blocks(1);
        let three = close_in_blocks(3);
        let all = close_in_blocks(members.len());
        assert_eq!(one, three);
        assert_eq!(one, all);
    }

    #[test]
    fn batch_rotation_kernel_matches_scalar() {
        let targets = [
            Vec3::new(2.0, 0.5, 1.0),
            Vec3::new(-1.0, 3.0, -1.0),
            Vec3::new(1.5, 1.5, 0.5),
        ];
        let moving: Vec<[Vec3; 3]> = (0..16)
            .map(|i| {
                let s = i as f64 * 0.37;
                [
                    Vec3::new(2.0 + s, 0.5 - s, 1.0),
                    Vec3::new(-1.0, 3.0 + s, -1.0 + s),
                    Vec3::new(1.5 - s, 1.5, 0.5 + s),
                ]
            })
            .collect();
        let pivots: Vec<Vec3> = (0..16)
            .map(|i| Vec3::new(0.1 * i as f64, 0.0, 0.0))
            .collect();
        let axes: Vec<Vec3> = (0..16)
            .map(|i| Vec3::new(0.2 * i as f64, 1.0, 0.5).try_normalize().unwrap())
            .collect();
        let mut thetas = Vec::new();
        optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut thetas);
        for j in 0..16 {
            let scalar = optimal_rotation(&moving[j], &targets, pivots[j], axes[j]);
            assert_eq!(thetas[j].to_bits(), scalar.to_bits(), "lane {j}");
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_rotation_kernel_is_bit_identical_to_scalar() {
        // 19 lanes: four full wide chunks plus a 3-lane scalar tail.
        let targets = [
            Vec3::new(2.0, 0.5, 1.0),
            Vec3::new(-1.0, 3.0, -1.0),
            Vec3::new(1.5, 1.5, 0.5),
        ];
        let n = 19;
        let moving: Vec<[Vec3; 3]> = (0..n)
            .map(|i| {
                let s = i as f64 * 0.31 - 2.0;
                [
                    Vec3::new(2.0 + s, 0.5 - s, 1.0 + 0.1 * s),
                    Vec3::new(-1.0 - s, 3.0 + s, -1.0 + s),
                    Vec3::new(1.5 - s, 1.5 + 0.3 * s, 0.5 + s),
                ]
            })
            .collect();
        let pivots: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.1 * i as f64, -0.05 * i as f64, 0.2))
            .collect();
        let axes: Vec<Vec3> = (0..n)
            .map(|i| {
                Vec3::new(0.2 * i as f64 - 1.0, 1.0, 0.5)
                    .try_normalize()
                    .unwrap()
            })
            .collect();
        let mut scalar = Vec::new();
        let mut wide = Vec::new();
        optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut scalar);
        optimal_rotation_batch_wide(&moving, &targets, &pivots, &axes, &mut wide);
        assert_eq!(scalar.len(), wide.len());
        for j in 0..n {
            assert_eq!(wide[j].to_bits(), scalar[j].to_bits(), "lane {j}");
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_close_batch_is_bit_identical_to_scalar_close_batch() {
        for (name, seed) in [("1cex", 3u64), ("1akz", 23)] {
            let (target, members) = perturbed(name, 9, seed);
            let n_res = target.n_residues();
            let config = CcdConfig::new().with_max_sweeps(64);
            let run = |wide: bool| {
                let closer = CcdCloser::with_config(config).with_wide_lanes(wide);
                let mut torsions = members.clone();
                let mut structures: Vec<LoopStructure> = (0..members.len())
                    .map(|_| LoopStructure::with_capacity(n_res))
                    .collect();
                let mut lanes: Vec<CcdLane> = torsions
                    .iter_mut()
                    .zip(structures.iter_mut())
                    .enumerate()
                    .map(|(m, (t, s))| CcdLane {
                        torsions: t,
                        structure: s,
                        start_index: m % 3,
                    })
                    .collect();
                let mut scratch = CcdBatchScratch::new();
                closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
                drop(lanes);
                (torsions, structures, scratch.results().to_vec())
            };
            let (st, ss, sr) = run(false);
            let (wt, ws, wr) = run(true);
            assert_eq!(st, wt, "{name}: torsions diverged");
            assert_eq!(ss, ws, "{name}: structures diverged");
            assert_eq!(sr, wr, "{name}: stats diverged");
        }
    }

    #[test]
    fn empty_and_converged_blocks_are_noops() {
        let mut scratch = CcdBatchScratch::new();
        let closer = CcdCloser::default();
        let target = BenchmarkLibrary::standard().target_by_name("5pti").unwrap();
        let mut lanes: Vec<CcdLane> = Vec::new();
        closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
        assert!(scratch.results().is_empty());

        // A native (already closed) lane performs zero sweeps.
        let mut t = target.native_torsions.clone();
        let mut s = LoopStructure::with_capacity(target.n_residues());
        let mut lanes = vec![CcdLane {
            torsions: &mut t,
            structure: &mut s,
            start_index: 0,
        }];
        closer.close_batch(&target.frame, &target.sequence, &mut lanes, &mut scratch);
        drop(lanes);
        assert_eq!(scratch.results().len(), 1);
        assert!(scratch.results()[0].converged);
        assert_eq!(scratch.results()[0].sweeps, 0);
        assert_eq!(scratch.results()[0].rotations_applied, 0);
        assert_eq!(scratch.non_converged(1), 0);
        assert_eq!(t, target.native_torsions);
    }
}
