//! Cyclic Coordinate Descent (CCD) loop closure.
//!
//! After a torsion mutation the rebuilt loop no longer connects to the
//! fixed C-terminal anchor.  CCD (Canutescu & Dunbrack, 2003) restores the
//! connection by sweeping over the loop's rotatable torsions and, for each
//! one, analytically choosing the rotation that minimises the summed squared
//! distance between the three *moving* end-anchor atoms (N, Cα, C' of the
//! residue after the loop) and their fixed target positions.  The optimal
//! angle for one torsion has the closed form `θ* = atan2(b, a)` with
//! `a = Σ fᵢ·rᵢ` and `b = Σ fᵢ·(û×rᵢ)`, where `rᵢ` is the moving atom's
//! radius vector about the rotation axis and `fᵢ` the target's.
//!
//! This is the dominant cost of the whole sampling pipeline (84 % of the
//! CPU-only run time in the paper's Figure 1, 75 % of device time in its
//! Table II), which is why the sampler offloads it to the SIMT executor.
//!
//! ## Incremental rebuilds
//!
//! CCD rebuilds the loop after every accepted rotation — hundreds of times
//! per closure.  A rotation at flat torsion index `k` leaves every atom
//! before that torsion's pivot bit-exactly where it was (NeRF is a strict
//! left-to-right recurrence), so the sweep rebuilds only the suffix with
//! [`LoopBuilder::rebuild_from`] instead of re-running NeRF over the whole
//! loop.  Because the sweep walks torsions in ascending order, successive
//! rebuilds share maximal prefixes: on average half the per-rotation NeRF
//! work disappears, and the closed-loop results stay **bit-identical** to
//! the full-rebuild implementation (property-tested in
//! `lms-protein/tests/incremental_rebuild.rs`; the full-rebuild baseline is
//! preserved in `lms-bench`'s `ccd_closure` benchmark).

use lms_geometry::Vec3;
use lms_protein::{AminoAcid, LoopBuilder, LoopFrame, LoopStructure, Torsions};

/// Configuration of the CCD closure run.
///
/// `#[non_exhaustive]`: construct via [`CcdConfig::new`] (or `default()`)
/// and the `with_*` setters, e.g.
/// `CcdConfig::new().with_max_sweeps(32).with_tolerance(0.2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CcdConfig {
    /// Maximum number of full sweeps over the torsions.
    pub max_sweeps: usize,
    /// Convergence tolerance on the anchor RMS deviation (Å).
    pub tolerance: f64,
    /// First flat torsion index eligible for adjustment.  The paper starts
    /// CCD "from the immediate torsion angle after the mutated ones"; the
    /// sampler passes that index here.  Use 0 to adjust every torsion.
    pub start_index: usize,
}

impl Default for CcdConfig {
    fn default() -> Self {
        // CCD converges geometrically but slowly once the gap is small; for
        // 10-12 residue loops ~200 sweeps is enough even from a fully random
        // start, and the tolerance of 0.1 A keeps the closed loop visually
        // and energetically indistinguishable from an exactly closed one.
        CcdConfig {
            max_sweeps: 256,
            tolerance: 0.1,
            start_index: 0,
        }
    }
}

impl CcdConfig {
    /// The default configuration, as a starting point for the `with_*`
    /// setters.
    pub fn new() -> Self {
        CcdConfig::default()
    }

    /// Set the maximum number of full sweeps over the torsions.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Set the convergence tolerance on the anchor RMS deviation (Å).
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Set the first flat torsion index eligible for adjustment.
    #[must_use]
    pub fn with_start_index(mut self, start_index: usize) -> Self {
        self.start_index = start_index;
        self
    }
}

/// Outcome of a CCD closure run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcdResult {
    /// Whether the anchor deviation reached the tolerance.
    pub converged: bool,
    /// Number of sweeps performed.
    pub sweeps: usize,
    /// Anchor RMS deviation before closure (Å).
    pub initial_deviation: f64,
    /// Anchor RMS deviation after closure (Å).
    pub final_deviation: f64,
    /// Number of individual torsion rotations applied.
    pub rotations_applied: usize,
}

/// The CCD closure engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcdCloser {
    builder: LoopBuilder,
    config: CcdConfig,
    wide: bool,
}

impl CcdCloser {
    /// Create a closer with an explicit builder and configuration.
    pub fn new(builder: LoopBuilder, config: CcdConfig) -> Self {
        CcdCloser {
            builder,
            config,
            wide: false,
        }
    }

    /// Create a closer with the default builder and the given configuration.
    pub fn with_config(config: CcdConfig) -> Self {
        CcdCloser {
            builder: LoopBuilder::default(),
            config,
            wide: false,
        }
    }

    /// Enable explicit wide-`f64` lanes in the batched rotation kernel
    /// ([`CcdCloser::close_batch`]).  The wide kernel applies the same IEEE
    /// operations in the same per-lane order as the scalar one, so results
    /// are bit-identical either way.  Without the `simd` cargo feature this
    /// is a no-op (the scalar kernel runs regardless); the sequential entry
    /// points are always scalar.
    #[must_use]
    pub fn with_wide_lanes(mut self, wide: bool) -> Self {
        self.wide = wide;
        self
    }

    /// Whether the batched rotation kernel uses wide lanes.
    pub fn wide_lanes(&self) -> bool {
        self.wide
    }

    /// The configuration in use.
    pub fn config(&self) -> &CcdConfig {
        &self.config
    }

    /// The loop builder in use (shared with the batched closure path).
    pub(crate) fn builder(&self) -> &LoopBuilder {
        &self.builder
    }

    /// Close the loop *in place*: `torsions` is modified so that the built
    /// structure's end frame approaches the fixed C-anchor.  Returns the
    /// closure statistics; the caller rebuilds the structure afterwards (or
    /// uses [`CcdCloser::close_and_build`]).
    pub fn close(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
    ) -> CcdResult {
        self.close_with_start(frame, sequence, torsions, self.config.start_index)
    }

    /// [`CcdCloser::close`] with an explicit start torsion index overriding
    /// the configured one.
    pub fn close_with_start(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
        start_index: usize,
    ) -> CcdResult {
        let mut structure = LoopStructure::with_capacity(sequence.len());
        self.close_with_scratch(frame, sequence, torsions, start_index, &mut structure)
    }

    /// [`CcdCloser::close_with_start`] writing every intermediate rebuild
    /// into a caller-owned scratch structure.
    ///
    /// CCD rebuilds the loop after every applied rotation (hundreds of times
    /// per closure), so reusing one structure buffer removes the single
    /// largest allocation source of the whole sampling pipeline.  On return
    /// `scratch` holds the structure built from the final torsions, letting
    /// the caller score it without rebuilding.
    pub fn close_with_scratch(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
        start_index: usize,
        scratch: &mut LoopStructure,
    ) -> CcdResult {
        let targets = frame.c_anchor.atoms();
        self.builder.build_into(frame, sequence, torsions, scratch);
        let initial_deviation = self.builder.closure_deviation(frame, scratch);
        let mut deviation = initial_deviation;
        let mut sweeps = 0;
        let mut rotations_applied = 0;

        let n_angles = torsions.n_angles();
        let start = start_index.min(n_angles);

        while deviation > self.config.tolerance && sweeps < self.config.max_sweeps {
            sweeps += 1;
            for k in start..n_angles {
                let (residue, kind) = Torsions::describe_angle(k);
                let res_atoms = &scratch.residues[residue];
                // Rotation axis of this torsion: phi spins about N->CA,
                // psi about CA->C'.
                let (pivot, axis_end) = match kind {
                    lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                    lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                };
                let Some(axis) = (axis_end - pivot).try_normalize() else {
                    continue;
                };

                let moving = scratch.end_frame.atoms();
                let delta = optimal_rotation(&moving, &targets, pivot, axis);
                if delta.abs() < 1e-9 {
                    continue;
                }
                torsions.rotate_angle(k, delta);
                rotations_applied += 1;
                // Rebuild so the next torsion sees up-to-date coordinates.
                // Only angle `k` changed and `scratch` is exact for the
                // pre-rotation torsions, so a suffix-only rebuild from `k`
                // reproduces the full rebuild bit for bit at ~half the cost.
                // Only the backbone spine and the end frame feed the sweep
                // (rotation pivots/axes and the deviation metric), so the
                // rebuild additionally skips the O/centroid placements —
                // the same discipline as the batched path; the full rebuild
                // below recovers them bit-identically.
                self.builder
                    .rebuild_spine_from(frame, sequence, torsions, k, scratch);
            }
            deviation = self.builder.closure_deviation(frame, scratch);
        }

        // The sweeps rebuilt spines only; one full rebuild restores the O
        // atoms and centroids so `scratch` holds the exact structure of the
        // final torsions (a full build from the final torsions equals the
        // incremental chain — property-tested in
        // `lms-protein/tests/incremental_rebuild.rs`).  With zero rotations
        // `scratch` still holds its exact initial full build.
        if rotations_applied > 0 {
            self.builder.build_into(frame, sequence, torsions, scratch);
        }

        CcdResult {
            converged: deviation <= self.config.tolerance,
            sweeps,
            initial_deviation,
            final_deviation: deviation,
            rotations_applied,
        }
    }

    /// Close the loop and return both the statistics and the final built
    /// structure.
    pub fn close_and_build(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
    ) -> (CcdResult, LoopStructure) {
        let result = self.close(frame, sequence, torsions);
        let structure = self.builder.build(frame, sequence, torsions);
        (result, structure)
    }
}

/// The closed-form optimal rotation about `axis` through `pivot` that
/// minimises Σ |targetᵢ − R(θ)·movingᵢ|², following Canutescu & Dunbrack.
///
/// `#[inline]` so the population-batched caller
/// ([`crate::batch::optimal_rotation_batch`]) compiles into one tight loop
/// over the gathered SoA arrays.
#[inline]
pub(crate) fn optimal_rotation(
    moving: &[Vec3; 3],
    targets: &[Vec3; 3],
    pivot: Vec3,
    axis: Vec3,
) -> f64 {
    let mut a = 0.0;
    let mut b = 0.0;
    for (m, t) in moving.iter().zip(targets.iter()) {
        let m_rel = *m - pivot;
        let t_rel = *t - pivot;
        // Components perpendicular to the axis.
        let r = m_rel - axis * m_rel.dot(axis);
        let f = t_rel - axis * t_rel.dot(axis);
        a += f.dot(r);
        b += f.dot(axis.cross(r));
    }
    if a.abs() < 1e-15 && b.abs() < 1e-15 {
        0.0
    } else {
        b.atan2(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::{deg_to_rad, Rotation};
    use lms_protein::BenchmarkLibrary;
    use rand::Rng;

    fn target_and_perturbed(
        name: &str,
        perturb_deg: f64,
        seed: u64,
    ) -> (lms_protein::LoopTarget, Torsions) {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name(name).unwrap();
        let mut torsions = target.native_torsions.clone();
        let mut rng = lms_geometry::StreamRngFactory::new(seed).stream(0, 0);
        for k in 0..torsions.n_angles() {
            let delta = deg_to_rad((rng.gen::<f64>() * 2.0 - 1.0) * perturb_deg);
            torsions.rotate_angle(k, delta);
        }
        (target, torsions)
    }

    #[test]
    fn optimal_rotation_recovers_known_angle() {
        // Rotate three points about the z axis by a known angle; the optimal
        // rotation must rotate them back.
        let targets = [
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(0.0, 3.0, -1.0),
            Vec3::new(1.5, 1.5, 0.5),
        ];
        let applied = deg_to_rad(40.0);
        let rot = Rotation::about_axis(Vec3::Z, applied);
        let moving = [
            rot.apply(targets[0]),
            rot.apply(targets[1]),
            rot.apply(targets[2]),
        ];
        let theta = optimal_rotation(&moving, &targets, Vec3::ZERO, Vec3::Z);
        assert!(
            (theta + applied).abs() < 1e-9,
            "expected {} got {theta}",
            -applied
        );
    }

    #[test]
    fn optimal_rotation_degenerate_geometry_returns_zero() {
        // Moving atoms on the axis: no rotation can help.
        let moving = [Vec3::ZERO, Vec3::Z, Vec3::Z * 2.0];
        let targets = [Vec3::X, Vec3::X + Vec3::Z, Vec3::X + Vec3::Z * 2.0];
        let theta = optimal_rotation(&moving, &targets, Vec3::ZERO, Vec3::Z);
        assert_eq!(theta, 0.0);
    }

    #[test]
    fn ccd_closes_a_mildly_perturbed_loop() {
        let (target, mut torsions) = target_and_perturbed("1cex", 25.0, 42);
        let closer = CcdCloser::default();
        let before = {
            let s = target.build(&LoopBuilder::default(), &torsions);
            target.closure_deviation(&s)
        };
        assert!(
            before > 0.5,
            "perturbation should break closure (gap {before})"
        );
        let result = closer.close(&target.frame, &target.sequence, &mut torsions);
        assert!(result.converged, "CCD failed to converge: {result:?}");
        assert!(result.final_deviation <= closer.config().tolerance);
        assert!(result.final_deviation < result.initial_deviation);
        // The closed structure really does meet the anchor.
        let closed = target.build(&LoopBuilder::default(), &torsions);
        assert!(target.closure_deviation(&closed) <= closer.config().tolerance + 1e-9);
    }

    #[test]
    fn ccd_closes_heavily_randomised_loops() {
        // Fully random torsions (the sampler's initialisation case).  CCD's
        // convergence is geometric with a long tail: the hardest random
        // 12-residue starts take ~2000 sweeps to reach the 0.1 A tolerance.
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1akz").unwrap();
        let closer = CcdCloser::with_config(CcdConfig {
            max_sweeps: 2048,
            ..CcdConfig::default()
        });
        let mut converged = 0;
        let trials = 8;
        for seed in 0..trials {
            let mut rng = lms_geometry::StreamRngFactory::new(seed).stream(7, 0);
            let mut torsions = Torsions::zeros(target.n_residues());
            for k in 0..torsions.n_angles() {
                torsions.set_angle(k, lms_geometry::random_torsion(&mut rng));
            }
            let result = closer.close(&target.frame, &target.sequence, &mut torsions);
            assert!(
                result.final_deviation <= result.initial_deviation + 1e-9,
                "CCD must never worsen the gap"
            );
            if result.converged {
                converged += 1;
            }
        }
        assert!(
            converged >= trials - 2,
            "only {converged}/{trials} random 12-residue loops closed"
        );
    }

    #[test]
    fn already_closed_loop_is_untouched() {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("5pti").unwrap();
        let mut torsions = target.native_torsions.clone();
        let closer = CcdCloser::default();
        let result = closer.close(&target.frame, &target.sequence, &mut torsions);
        assert!(result.converged);
        assert_eq!(
            result.sweeps, 0,
            "native is already closed; no sweeps needed"
        );
        assert_eq!(result.rotations_applied, 0);
        assert_eq!(torsions, target.native_torsions);
    }

    #[test]
    fn start_index_freezes_upstream_torsions() {
        let (target, mut torsions) = target_and_perturbed("1ixh", 20.0, 3);
        let original = torsions.clone();
        let start = 6; // freeze the first three residues' torsions
        let closer = CcdCloser::default();
        let result = closer.close_with_start(&target.frame, &target.sequence, &mut torsions, start);
        for k in 0..start {
            assert_eq!(
                torsions.angle(k),
                original.angle(k),
                "torsion {k} must not move"
            );
        }
        // Downstream torsions did move (closure required work).
        assert!(result.rotations_applied > 0);
        assert!(result.final_deviation < result.initial_deviation);
    }

    #[test]
    fn close_and_build_returns_consistent_structure() {
        let (target, mut torsions) = target_and_perturbed("153l", 30.0, 9);
        let closer = CcdCloser::default();
        let (result, structure) =
            closer.close_and_build(&target.frame, &target.sequence, &mut torsions);
        let rebuilt = target.build(&LoopBuilder::default(), &torsions);
        assert_eq!(structure, rebuilt);
        assert!((target.closure_deviation(&structure) - result.final_deviation).abs() < 1e-9);
    }

    /// The pre-incremental CCD sweep: identical maths, but a full NeRF
    /// rebuild after every accepted rotation.  Kept as the bit-equivalence
    /// reference for the suffix-only rebuild path.
    fn close_full_rebuild(
        closer: &CcdCloser,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
    ) -> CcdResult {
        let builder = closer.builder;
        let targets = frame.c_anchor.atoms();
        let mut scratch = LoopStructure::with_capacity(sequence.len());
        builder.build_into(frame, sequence, torsions, &mut scratch);
        let initial_deviation = builder.closure_deviation(frame, &scratch);
        let mut deviation = initial_deviation;
        let mut sweeps = 0;
        let mut rotations_applied = 0;
        while deviation > closer.config.tolerance && sweeps < closer.config.max_sweeps {
            sweeps += 1;
            for k in 0..torsions.n_angles() {
                let (residue, kind) = Torsions::describe_angle(k);
                let res_atoms = &scratch.residues[residue];
                let (pivot, axis_end) = match kind {
                    lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                    lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                };
                let Some(axis) = (axis_end - pivot).try_normalize() else {
                    continue;
                };
                let moving = scratch.end_frame.atoms();
                let delta = optimal_rotation(&moving, &targets, pivot, axis);
                if delta.abs() < 1e-9 {
                    continue;
                }
                torsions.rotate_angle(k, delta);
                rotations_applied += 1;
                builder.build_into(frame, sequence, torsions, &mut scratch);
            }
            deviation = builder.closure_deviation(frame, &scratch);
        }
        CcdResult {
            converged: deviation <= closer.config.tolerance,
            sweeps,
            initial_deviation,
            final_deviation: deviation,
            rotations_applied,
        }
    }

    #[test]
    fn incremental_rebuild_closure_is_bit_identical_to_full_rebuild() {
        for (name, perturb, seed) in [("1cex", 30.0, 11), ("1akz", 45.0, 2), ("5pti", 20.0, 8)] {
            let (target, torsions0) = target_and_perturbed(name, perturb, seed);
            let closer = CcdCloser::default();
            let mut incremental = torsions0.clone();
            let mut full = torsions0.clone();
            let ri = closer.close(&target.frame, &target.sequence, &mut incremental);
            let rf = close_full_rebuild(&closer, &target.frame, &target.sequence, &mut full);
            assert_eq!(incremental, full, "{name}: torsion trajectories diverged");
            assert_eq!(ri, rf, "{name}: closure statistics diverged");
        }
    }

    #[test]
    fn spine_only_sweeps_leave_a_fully_built_scratch_structure() {
        // The sweeps rebuild spines only; on return the scratch structure
        // must nevertheless be the exact full build of the final torsions
        // (O atoms and centroids included), because callers score it
        // directly.  Include an untouched native loop (zero rotations).
        for (name, perturb, seed) in [("1cex", 30.0, 11), ("1akz", 45.0, 2), ("5pti", 0.0, 8)] {
            let (target, mut torsions) = target_and_perturbed(name, perturb, seed);
            let closer = CcdCloser::default();
            let mut scratch = LoopStructure::with_capacity(target.n_residues());
            let result = closer.close_with_scratch(
                &target.frame,
                &target.sequence,
                &mut torsions,
                0,
                &mut scratch,
            );
            let full = target.build(&LoopBuilder::default(), &torsions);
            assert_eq!(scratch, full, "{name}: scratch is not the full build");
            assert!(
                (target.closure_deviation(&scratch) - result.final_deviation).abs() < 1e-12,
                "{name}: deviation inconsistent with returned structure"
            );
        }
    }

    #[test]
    fn ccd_is_deterministic() {
        let (target, torsions0) = target_and_perturbed("1dim", 35.0, 5);
        let closer = CcdCloser::default();
        let mut t1 = torsions0.clone();
        let mut t2 = torsions0.clone();
        let r1 = closer.close(&target.frame, &target.sequence, &mut t1);
        let r2 = closer.close(&target.frame, &target.sequence, &mut t2);
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn tight_tolerance_costs_more_sweeps() {
        let (target, torsions0) = target_and_perturbed("1cex", 40.0, 17);
        let loose = CcdCloser::with_config(CcdConfig {
            tolerance: 0.5,
            ..CcdConfig::default()
        });
        let tight = CcdCloser::with_config(CcdConfig {
            tolerance: 0.01,
            max_sweeps: 256,
            ..CcdConfig::default()
        });
        let mut tl = torsions0.clone();
        let mut tt = torsions0.clone();
        let rl = loose.close(&target.frame, &target.sequence, &mut tl);
        let rt = tight.close(&target.frame, &target.sequence, &mut tt);
        assert!(rl.sweeps <= rt.sweeps);
        if rt.converged {
            assert!(rt.final_deviation <= 0.01);
        }
    }
}
