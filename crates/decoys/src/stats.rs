//! Trajectory and decoy-set statistics.
//!
//! These are the aggregations the paper's Figure 3 plots: the number of
//! *structurally distinct* non-dominated conformations produced by a
//! trajectory, and the minimum / maximum / average of the best-decoy RMSD
//! over a set of independent trajectories.

use lms_core::TrajectoryResult;
use lms_protein::Torsions;
use lms_scoring::ScoreVector;

/// Count the structurally distinct members of a set of torsion vectors
/// under the paper's rule: a conformation is distinct if its maximum torsion
/// deviation from every *previously kept* conformation is at least
/// `threshold_deg`.
pub fn count_structurally_distinct(torsions: &[&Torsions], threshold_deg: f64) -> usize {
    let mut kept: Vec<&Torsions> = Vec::new();
    for t in torsions {
        if kept.iter().all(|k| k.is_distinct_from(t, threshold_deg)) {
            kept.push(t);
        }
    }
    kept.len()
}

/// The number of structurally distinct non-dominated conformations in a
/// finished trajectory's population.
pub fn distinct_non_dominated(result: &TrajectoryResult, threshold_deg: f64) -> usize {
    let scores: Vec<ScoreVector> = result.population.iter().map(|c| c.scores).collect();
    let nd = lms_core::non_dominated_indices(&scores);
    let torsions: Vec<&Torsions> = nd.iter().map(|&i| &result.population[i].torsions).collect();
    count_structurally_distinct(&torsions, threshold_deg)
}

/// Min / max / mean summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxMean {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl MinMaxMean {
    /// Summarise a sample; returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<MinMaxMean> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(MinMaxMean {
            min,
            max,
            mean: sum / values.len() as f64,
        })
    }
}

/// Aggregated statistics over a set of independent trajectories on the same
/// target — one point of the paper's Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEnsembleStats {
    /// Number of trajectories aggregated.
    pub trajectories: usize,
    /// Average number of structurally distinct non-dominated conformations
    /// per trajectory.
    pub avg_distinct_non_dominated: f64,
    /// Min/max/mean of the best (lowest) RMSD found per trajectory (Å).
    pub best_rmsd: MinMaxMean,
}

/// Aggregate independent trajectories (Figure 3's per-population-size
/// statistics).
pub fn ensemble_stats(
    results: &[TrajectoryResult],
    threshold_deg: f64,
) -> Option<TrajectoryEnsembleStats> {
    if results.is_empty() {
        return None;
    }
    let distinct: Vec<f64> = results
        .iter()
        .map(|r| distinct_non_dominated(r, threshold_deg) as f64)
        .collect();
    let best: Vec<f64> = results.iter().map(|r| r.best_rmsd()).collect();
    Some(TrajectoryEnsembleStats {
        trajectories: results.len(),
        avg_distinct_non_dominated: distinct.iter().sum::<f64>() / distinct.len() as f64,
        best_rmsd: MinMaxMean::of(&best)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;

    fn t(phis_deg: &[f64]) -> Torsions {
        Torsions::from_pairs(
            &phis_deg
                .iter()
                .map(|&p| (deg_to_rad(p), deg_to_rad(p * 0.5)))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn min_max_mean_basics() {
        let s = MinMaxMean::of(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(MinMaxMean::of(&[]).is_none());
        let single = MinMaxMean::of(&[5.0]).unwrap();
        assert_eq!(single.min, 5.0);
        assert_eq!(single.max, 5.0);
        assert_eq!(single.mean, 5.0);
    }

    #[test]
    fn distinct_counting_respects_threshold() {
        let a = t(&[-60.0, -60.0]);
        let b = t(&[-65.0, -58.0]); // within 30 deg of a
        let c = t(&[-120.0, -60.0]); // far from a and b in the first torsion
        let d = t(&[-118.0, -62.0]); // close to c
        let set = [&a, &b, &c, &d];
        assert_eq!(count_structurally_distinct(&set, 30.0), 2);
        assert_eq!(count_structurally_distinct(&set, 1.0), 4);
        assert_eq!(count_structurally_distinct(&set, 400.0), 1);
        assert_eq!(count_structurally_distinct(&[], 30.0), 0);
    }

    #[test]
    fn distinct_counting_order_keeps_first_representative() {
        let a = t(&[0.0]);
        let b = t(&[20.0]);
        let c = t(&[40.0]);
        // a and b are within 30 deg; c is 40 deg from a but 20 from b.
        // Greedy keeps a, skips b, then c is distinct from a -> kept.
        assert_eq!(count_structurally_distinct(&[&a, &b, &c], 30.0), 2);
    }

    #[test]
    fn ensemble_stats_empty_is_none() {
        assert!(ensemble_stats(&[], 30.0).is_none());
    }
}
