//! # lms-decoys
//!
//! Analysis of loop decoy sets produced by the MOSCEM sampler: ensemble
//! statistics for the population-size study (Figure 3), greedy structural
//! clustering and cross-implementation equivalence checks, and plain-text
//! report formatting shared by the experiment harness.
//!
//! ## Quick example
//!
//! ```
//! use lms_decoys::{MinMaxMean, TextTable};
//!
//! let rmsds = [0.8, 1.4, 2.1];
//! let summary = MinMaxMean::of(&rmsds).unwrap();
//! assert_eq!(summary.min, 0.8);
//!
//! let mut table = TextTable::new(vec!["Population", "Best RMSD (A)"]);
//! table.add_row(vec!["100".to_string(), format!("{:.2}", summary.min)]);
//! assert!(table.render().contains("0.80"));
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod report;
pub mod stats;

pub use cluster::{
    cluster_decoys, compare_decoy_sets, decoys_from_torsions, Cluster, ClusterMetric,
    EquivalenceReport,
};
pub use report::{format_percent, format_us, section, TextTable};
pub use stats::{
    count_structurally_distinct, distinct_non_dominated, ensemble_stats, MinMaxMean,
    TrajectoryEnsembleStats,
};
