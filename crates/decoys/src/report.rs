//! Plain-text report formatting for the experiment harness.
//!
//! Every table and figure of the paper is regenerated as text output; these
//! helpers keep the formatting consistent across the harness binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.  Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed and extend the table width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) -> &mut Self {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}  ", width = w);
            }
            let _ = writeln!(out);
        };
        write_row(&self.headers, &mut out);
        let total_width: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Format a duration given in microseconds with a sensible unit.
pub fn format_us(us: f64) -> String {
    if us >= 60e6 {
        format!("{:.1} min", us / 60e6)
    } else if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

/// Format a fraction as a percentage string.
pub fn format_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// A labelled experiment section header used by the harness binaries.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Protein", "Start", "End", "Speedup"]);
        t.add_row(vec!["1cex", "40", "51", "42.6"]);
        t.add_row(vec!["1akz", "181", "192", "40.3"]);
        let s = t.render();
        assert!(s.contains("Protein"));
        assert!(s.contains("1cex"));
        assert!(s.contains("42.6"));
        assert_eq!(t.n_rows(), 2);
        // Every data line at least as long as the header line's columns.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = TextTable::new(vec!["A", "B"]);
        t.add_row(vec!["1"]);
        t.add_row(vec!["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_us(1.0), "1.0 us");
        assert_eq!(format_us(2_500.0), "2.50 ms");
        assert_eq!(format_us(3_200_000.0), "3.20 s");
        assert!(format_us(90e6).contains("min"));
    }

    #[test]
    fn percent_and_section() {
        assert_eq!(format_percent(0.774), "77.4%");
        assert!(section("Table I").contains("=== Table I ==="));
    }
}
