//! Structural clustering of decoys.
//!
//! The paper argues the CPU and CPU-GPU implementations are "functionally
//! equivalent" because, although they consume different random number
//! sequences, the decoys they generate "lead to similar structure clusters".
//! This module provides the greedy leader-style clustering (in torsion space
//! or in backbone-RMSD space) used to make that comparison quantitative.

use lms_core::Decoy;
use lms_geometry::rmsd_direct;
use lms_protein::{LoopBuilder, LoopTarget, Torsions};

/// How decoy-to-decoy distances are measured during clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterMetric {
    /// Maximum torsion deviation (degrees); matches the decoy-distinctness
    /// rule.
    TorsionDeg,
    /// Backbone RMSD (Å) in the shared anchor frame.
    RmsdAngstrom,
}

/// One cluster of decoys.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Index (into the clustered slice) of the leader/representative decoy.
    pub representative: usize,
    /// Indices of all members, including the representative.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Greedy leader clustering: decoys are visited in order; each joins the
/// first cluster whose representative is within `radius`, otherwise it
/// founds a new cluster.
pub fn cluster_decoys(
    target: &LoopTarget,
    decoys: &[Decoy],
    metric: ClusterMetric,
    radius: f64,
) -> Vec<Cluster> {
    let builder = LoopBuilder::default();
    // Pre-build coordinates once when clustering by RMSD.
    let coords: Vec<Vec<lms_geometry::Vec3>> = match metric {
        ClusterMetric::RmsdAngstrom => decoys
            .iter()
            .map(|d| target.build(&builder, &d.torsions).backbone_atoms())
            .collect(),
        ClusterMetric::TorsionDeg => Vec::new(),
    };
    let distance = |a: usize, b: usize| -> f64 {
        match metric {
            ClusterMetric::TorsionDeg => decoys[a].torsions.max_deviation_deg(&decoys[b].torsions),
            ClusterMetric::RmsdAngstrom => rmsd_direct(&coords[a], &coords[b]),
        }
    };

    let mut clusters: Vec<Cluster> = Vec::new();
    for i in 0..decoys.len() {
        match clusters
            .iter_mut()
            .find(|c| distance(c.representative, i) <= radius)
        {
            Some(c) => c.members.push(i),
            None => clusters.push(Cluster {
                representative: i,
                members: vec![i],
            }),
        }
    }
    clusters
}

/// Summary of a cross-comparison between two decoy sets (e.g. produced by
/// the scalar and the parallel executor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceReport {
    /// Number of clusters found in set A.
    pub clusters_a: usize,
    /// Number of clusters found in set B.
    pub clusters_b: usize,
    /// Fraction of A's clusters that contain at least one B decoy within the
    /// matching radius of their representative.
    pub coverage_a_by_b: f64,
    /// Fraction of B's clusters covered by A.
    pub coverage_b_by_a: f64,
}

impl EquivalenceReport {
    /// Symmetric coverage: the mean of the two directional coverages.
    pub fn symmetric_coverage(&self) -> f64 {
        0.5 * (self.coverage_a_by_b + self.coverage_b_by_a)
    }
}

/// Compare two decoy sets for structural equivalence: cluster each set, then
/// measure how well the other set covers each cluster's representative.
pub fn compare_decoy_sets(
    target: &LoopTarget,
    set_a: &[Decoy],
    set_b: &[Decoy],
    metric: ClusterMetric,
    radius: f64,
) -> EquivalenceReport {
    let clusters_a = cluster_decoys(target, set_a, metric, radius);
    let clusters_b = cluster_decoys(target, set_b, metric, radius);

    let builder = LoopBuilder::default();
    let coords = |decoys: &[Decoy]| -> Vec<Vec<lms_geometry::Vec3>> {
        match metric {
            ClusterMetric::RmsdAngstrom => decoys
                .iter()
                .map(|d| target.build(&builder, &d.torsions).backbone_atoms())
                .collect(),
            ClusterMetric::TorsionDeg => Vec::new(),
        }
    };
    let ca = coords(set_a);
    let cb = coords(set_b);
    let cross_distance = |a_idx: usize, b_idx: usize| -> f64 {
        match metric {
            ClusterMetric::TorsionDeg => set_a[a_idx]
                .torsions
                .max_deviation_deg(&set_b[b_idx].torsions),
            ClusterMetric::RmsdAngstrom => rmsd_direct(&ca[a_idx], &cb[b_idx]),
        }
    };

    let coverage_a_by_b = if clusters_a.is_empty() {
        0.0
    } else {
        clusters_a
            .iter()
            .filter(|c| (0..set_b.len()).any(|j| cross_distance(c.representative, j) <= radius))
            .count() as f64
            / clusters_a.len() as f64
    };
    let coverage_b_by_a = if clusters_b.is_empty() {
        0.0
    } else {
        clusters_b
            .iter()
            .filter(|c| (0..set_a.len()).any(|i| cross_distance(i, c.representative) <= radius))
            .count() as f64
            / clusters_b.len() as f64
    };

    EquivalenceReport {
        clusters_a: clusters_a.len(),
        clusters_b: clusters_b.len(),
        coverage_a_by_b,
        coverage_b_by_a,
    }
}

/// Helper used by tests and examples: wrap raw torsion vectors as decoys.
pub fn decoys_from_torsions(torsions: &[Torsions]) -> Vec<Decoy> {
    torsions
        .iter()
        .map(|t| Decoy {
            torsions: t.clone(),
            scores: lms_scoring::ScoreVector::default(),
            rmsd_to_native: f64::NAN,
            trajectory: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;
    use lms_protein::BenchmarkLibrary;

    fn target() -> LoopTarget {
        BenchmarkLibrary::standard().target_by_name("1cex").unwrap()
    }

    fn torsions_around(target: &LoopTarget, offsets_deg: &[f64]) -> Vec<Torsions> {
        offsets_deg
            .iter()
            .map(|&off| {
                let mut t = target.native_torsions.clone();
                t.rotate_angle(0, deg_to_rad(off));
                t
            })
            .collect()
    }

    #[test]
    fn clustering_groups_nearby_decoys() {
        let tgt = target();
        // Two groups: offsets near 0 and offsets near 120 degrees.
        let decoys = decoys_from_torsions(&torsions_around(&tgt, &[0.0, 5.0, -4.0, 120.0, 124.0]));
        let clusters = cluster_decoys(&tgt, &decoys, ClusterMetric::TorsionDeg, 30.0);
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.size()).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&2));
        // Every decoy is in exactly one cluster.
        let total: usize = sizes.iter().sum();
        assert_eq!(total, decoys.len());
    }

    #[test]
    fn rmsd_metric_clusters_identical_structures_together() {
        let tgt = target();
        let decoys = decoys_from_torsions(&torsions_around(&tgt, &[0.0, 0.0, 90.0]));
        let clusters = cluster_decoys(&tgt, &decoys, ClusterMetric::RmsdAngstrom, 0.5);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![0, 1]);
        assert_eq!(clusters[1].members, vec![2]);
    }

    #[test]
    fn empty_decoy_set_gives_no_clusters() {
        let tgt = target();
        assert!(cluster_decoys(&tgt, &[], ClusterMetric::TorsionDeg, 30.0).is_empty());
    }

    #[test]
    fn equivalent_sets_have_high_mutual_coverage() {
        let tgt = target();
        // Two "implementations" sampling the same two basins with slightly
        // different random offsets.
        let a = decoys_from_torsions(&torsions_around(&tgt, &[0.0, 3.0, 118.0]));
        let b = decoys_from_torsions(&torsions_around(&tgt, &[-4.0, 122.0, 1.5]));
        let report = compare_decoy_sets(&tgt, &a, &b, ClusterMetric::TorsionDeg, 30.0);
        assert_eq!(report.clusters_a, 2);
        assert_eq!(report.clusters_b, 2);
        assert!((report.coverage_a_by_b - 1.0).abs() < 1e-12);
        assert!((report.coverage_b_by_a - 1.0).abs() < 1e-12);
        assert!((report.symmetric_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_low_coverage() {
        let tgt = target();
        let a = decoys_from_torsions(&torsions_around(&tgt, &[0.0, 4.0]));
        let b = decoys_from_torsions(&torsions_around(&tgt, &[150.0, 155.0]));
        let report = compare_decoy_sets(&tgt, &a, &b, ClusterMetric::TorsionDeg, 30.0);
        assert_eq!(report.coverage_a_by_b, 0.0);
        assert_eq!(report.coverage_b_by_a, 0.0);
        assert_eq!(report.symmetric_coverage(), 0.0);
    }

    #[test]
    fn empty_sets_report_zero_coverage_without_panicking() {
        let tgt = target();
        let a = decoys_from_torsions(&torsions_around(&tgt, &[0.0]));
        let report = compare_decoy_sets(&tgt, &a, &[], ClusterMetric::TorsionDeg, 30.0);
        assert_eq!(report.clusters_b, 0);
        assert_eq!(report.coverage_a_by_b, 0.0);
    }
}
