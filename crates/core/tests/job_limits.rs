//! Feature-off robustness: [`JobLimits`] enforcement (wall-clock deadline,
//! iteration budget, closure-stall streak) and the engine supervisor's
//! terminal-vs-retryable classification — no fault injection involved.

use lms_closure::CcdConfig;
use lms_core::{
    ConfigError, Error, Job, JobLimits, LoopModelingEngine, MoscemSampler, RetryPolicy,
    RunControls, SamplerConfig,
};
use lms_protein::{BenchmarkLibrary, LoopTarget};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use lms_simt::ExecutorConfig;
use std::sync::Arc;
use std::time::Duration;

fn fast_kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn target() -> LoopTarget {
    BenchmarkLibrary::standard().target_by_name("1cex").unwrap()
}

fn tiny_builder() -> lms_core::SamplerConfigBuilder {
    SamplerConfig::test_scale()
        .to_builder()
        .population_size(8)
        .n_complexes(2)
        .iterations(3)
        .snapshot_iterations(Vec::new())
}

/// A config whose CCD can never converge (zero tolerance): every iteration
/// counts toward the stall streak.
fn stall_config(limit: usize) -> SamplerConfig {
    tiny_builder()
        .iterations(4)
        .ccd(CcdConfig::new().with_tolerance(0.0))
        .limits(JobLimits::none().with_max_closure_stall(limit))
        .build()
        .unwrap()
}

#[test]
fn an_already_spent_deadline_fires_before_initialisation() {
    let cfg = tiny_builder()
        .limits(JobLimits::none().with_deadline(Duration::from_nanos(1)))
        .build()
        .unwrap();
    let sampler = MoscemSampler::new(target(), fast_kb(), cfg);
    let err = sampler
        .run_controlled(
            &ExecutorConfig::scalar().build().unwrap(),
            7,
            &RunControls::new(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        Error::DeadlineExceeded {
            limit: Duration::from_nanos(1),
            completed_iterations: 0,
        }
    );
    assert!(!err.is_retryable(), "deadlines are terminal");
}

#[test]
fn stall_guard_fires_after_the_configured_streak() {
    let limit = 2;
    let sampler = MoscemSampler::new(target(), fast_kb(), stall_config(limit));
    let err = sampler
        .run_controlled(
            &ExecutorConfig::scalar().build().unwrap(),
            11,
            &RunControls::new(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        Error::Stalled {
            streak: limit,
            limit,
            completed_iterations: limit - 1,
        }
    );
    assert!(err.is_retryable(), "stalls can be environmental");
}

#[test]
fn limit_validation_rejects_degenerate_budgets() {
    let zero_deadline = tiny_builder()
        .limits(JobLimits::none().with_deadline(Duration::ZERO))
        .build()
        .unwrap_err();
    assert_eq!(zero_deadline, ConfigError::ZeroDeadline);

    let over_budget = tiny_builder()
        .iterations(10)
        .limits(JobLimits::none().with_max_iterations(5))
        .build()
        .unwrap_err();
    assert_eq!(
        over_budget,
        ConfigError::IterationBudgetExceeded {
            iterations: 10,
            budget: 5,
        }
    );

    let zero_stall = tiny_builder()
        .limits(JobLimits::none().with_max_closure_stall(0))
        .build()
        .unwrap_err();
    assert_eq!(zero_stall, ConfigError::ZeroStallLimit);

    // A sufficient budget passes and is inert at runtime.
    let ok = tiny_builder()
        .iterations(2)
        .limits(JobLimits::none().with_max_iterations(2))
        .build()
        .unwrap();
    assert!(ok.limits.is_limited());
    let result = MoscemSampler::new(target(), fast_kb(), ok)
        .run_with_seed(&ExecutorConfig::scalar().build().unwrap(), 5);
    assert_eq!(result.population.len(), 8);
}

#[test]
fn supervisor_does_not_retry_terminal_failures() {
    let engine = LoopModelingEngine::builder(fast_kb())
        .concurrency(1)
        .retry_policy(RetryPolicy::with_max_attempts(3).backoff(Duration::ZERO, Duration::ZERO))
        .build()
        .unwrap();
    let cfg = tiny_builder()
        .limits(JobLimits::none().with_deadline(Duration::from_nanos(1)))
        .build()
        .unwrap();
    let job = Job::builder(target()).config(cfg).seed(3).build().unwrap();
    let results = engine.submit(vec![job]).join();
    let result = &results[0];
    assert!(matches!(
        result.outcome,
        Err(Error::DeadlineExceeded { .. })
    ));
    // Terminal failure: exactly one attempt, recorded with zero backoff.
    assert_eq!(result.attempts.len(), 1);
    assert_eq!(result.attempts[0].attempt, 1);
    assert_eq!(result.attempts[0].backoff, Duration::ZERO);
}

#[test]
fn supervisor_retries_a_deterministic_stall_to_the_attempt_budget() {
    let engine = LoopModelingEngine::builder(fast_kb())
        .concurrency(1)
        .retry_policy(RetryPolicy::with_max_attempts(3).backoff(Duration::ZERO, Duration::ZERO))
        .build()
        .unwrap();
    let job = Job::builder(target())
        .config(stall_config(1))
        .seed(3)
        .build()
        .unwrap();
    let results = engine.submit(vec![job]).join();
    let result = &results[0];
    assert!(matches!(result.outcome, Err(Error::Stalled { .. })));
    // Same seed, deterministic fault: every attempt fails the same way
    // until the budget is spent.
    assert_eq!(result.attempts.len(), 3);
    assert!(result
        .attempts
        .iter()
        .all(|a| matches!(a.error, Error::Stalled { .. })));
    assert_eq!(result.attempts.last().unwrap().backoff, Duration::ZERO);
}
