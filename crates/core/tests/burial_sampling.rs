//! End-to-end sampler behaviour of the fourth (burial) objective: disabled
//! runs keep the BURIAL slot at exactly zero everywhere, enabled runs score
//! it on every member and stay deterministic across executors, and the two
//! modes genuinely explore differently.

use lms_core::{MoscemSampler, SamplerConfig};
use lms_protein::BenchmarkLibrary;
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use lms_simt::ExecutorConfig;
use std::sync::Arc;

fn kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn config(burial: bool) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(24)
        .n_complexes(2)
        .iterations(4)
        .seed(404)
        .burial_objective(burial)
        .build()
        .expect("valid test config")
}

#[test]
fn disabled_burial_slot_stays_exactly_zero() {
    let target = BenchmarkLibrary::standard().target_by_name("1xyz").unwrap();
    let sampler = MoscemSampler::new(target, kb(), config(false));
    let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    for c in &result.population {
        assert_eq!(c.scores.burial(), 0.0);
        assert!(c.scores.is_finite());
    }
}

#[test]
fn enabled_burial_scores_every_member_and_changes_the_trajectory() {
    let library = BenchmarkLibrary::standard();
    let off = MoscemSampler::new(library.target_by_name("1xyz").unwrap(), kb(), config(false));
    let on = MoscemSampler::new(library.target_by_name("1xyz").unwrap(), kb(), config(true));
    let a = off.run(&ExecutorConfig::parallel().build().unwrap());
    let b = on.run(&ExecutorConfig::parallel().build().unwrap());

    // Every member of the enabled run carries a real burial score on the
    // deeply buried 1xyz target.
    assert!(b.population.iter().all(|c| c.scores.burial() != 0.0));
    assert!(b.population.iter().all(|c| c.scores.is_finite()));

    // The initial populations start from identical random streams, so the
    // divergence comes from the objective set, not the seeding.
    let same_torsions = a
        .population
        .iter()
        .zip(b.population.iter())
        .filter(|(x, y)| x.torsions == y.torsions)
        .count();
    assert!(
        same_torsions < a.population.len(),
        "adding an objective should change acceptance decisions"
    );
}

#[test]
fn enabled_burial_runs_are_deterministic_across_executors() {
    let library = BenchmarkLibrary::standard();
    let sampler = MoscemSampler::new(library.target_by_name("1cex").unwrap(), kb(), config(true));
    let scalar = sampler.run(&ExecutorConfig::scalar().build().unwrap());
    let parallel = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    assert_eq!(scalar.population.len(), parallel.population.len());
    for (x, y) in scalar.population.iter().zip(parallel.population.iter()) {
        assert_eq!(x.torsions, y.torsions);
        assert_eq!(x.scores, y.scores);
        assert_eq!(x.fitness, y.fitness);
    }
    assert_eq!(scalar.final_temperature, parallel.final_temperature);
}

#[test]
fn engine_jobs_accept_burial_configs() {
    use lms_core::{Job, LoopModelingEngine};
    let library = BenchmarkLibrary::standard();
    let engine = LoopModelingEngine::builder(kb()).build().expect("engine");
    let jobs: Vec<Job> = [false, true]
        .iter()
        .map(|&burial| {
            Job::builder(library.target_by_name("5pti").unwrap())
                .config(config(burial))
                .seed(11)
                .build()
                .expect("valid job")
        })
        .collect();
    let mut outcomes: Vec<_> = engine
        .submit(jobs)
        .map(|r| r.outcome.expect("job succeeds"))
        .collect();
    outcomes.sort_by(|a, b| {
        let burial_sum = |t: &lms_core::TrajectoryResult| {
            t.population
                .iter()
                .map(|c| c.scores.burial().abs())
                .sum::<f64>()
        };
        burial_sum(a).partial_cmp(&burial_sum(b)).unwrap()
    });
    // The disabled job's burial components are all zero, the enabled one's
    // are not.
    assert!(outcomes[0]
        .population
        .iter()
        .all(|c| c.scores.burial() == 0.0));
    assert!(outcomes[1]
        .population
        .iter()
        .any(|c| c.scores.burial() != 0.0));
}
