//! Counting-allocator proof of the zero-allocation invariant: after
//! warm-up, one member-iteration of the evolution kernel's work —
//! mutation into a reused candidate buffer, CCD closure into a reused
//! structure (suffix-only incremental rebuilds included), workspace
//! scoring through the environment-candidate **cell list**, and
//! allocation-free RMSD — performs zero heap allocations.
//!
//! Two proofs: the full member-iteration on a surface target, and a
//! dense-environment (buried-target) variant that drives the incremental
//! `rebuild_from` path and the per-site cell-list gather directly, so
//! neither optimization can silently regress into allocating.

use lms_closure::{CcdCloser, CcdConfig};
use lms_core::{MoscemSampler, MutationConfig, Mutator, RunControls, SamplerConfig};
use lms_geometry::StreamRngFactory;
use lms_protein::{BenchmarkLibrary, LoopBuilder, LoopStructure, RamaClass, Torsions};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, MultiScorer, ScoreScratch, VdwScore};
use lms_simt::ExecutorConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A system allocator that counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn member_iteration_is_allocation_free_after_warmup() {
    // Build everything the evolution kernel needs (allocations allowed).
    let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let scorer = MultiScorer::new(kb);
    let builder = LoopBuilder::default();
    let closer = CcdCloser::new(
        builder,
        CcdConfig::new()
            .with_max_sweeps(24)
            .with_tolerance(0.25)
            .with_start_index(0),
    );
    let mutator = Mutator::new(MutationConfig::default());
    let classes: Vec<RamaClass> = target.sequence.iter().map(|aa| aa.rama_class()).collect();
    let factory = StreamRngFactory::new(42);

    // Per-member persistent buffers, exactly as `Member` holds them.
    let n_res = target.n_residues();
    let mut current = target.native_torsions.clone();
    let mut cand = Torsions::zeros(n_res);
    let mut indices: Vec<usize> = Vec::with_capacity(8);
    let mut structure = LoopStructure::with_capacity(n_res);
    let mut scratch = ScoreScratch::for_loop_len(n_res);

    // Warm up: the first pass may size buffers and fill the per-target
    // environment-candidate cache.
    target.env_candidates();
    let member_iteration = |iter: u64,
                            current: &mut Torsions,
                            cand: &mut Torsions,
                            indices: &mut Vec<usize>,
                            structure: &mut LoopStructure,
                            scratch: &mut ScoreScratch| {
        let mut rng = factory.stream(0, iter);
        let ccd_start = mutator.mutate_into(current, &classes, &mut rng, cand, indices);
        let ccd =
            closer.close_with_scratch(&target.frame, &target.sequence, cand, ccd_start, structure);
        let scores = scorer.evaluate_with(&target, structure, cand, scratch);
        let rmsd = target.rmsd_to_native(structure);
        assert!(scores.is_finite());
        assert!(rmsd.is_finite());
        if ccd.final_deviation <= 0.75 {
            std::mem::swap(current, cand);
        }
    };
    for iter in 0..3 {
        member_iteration(
            iter,
            &mut current,
            &mut cand,
            &mut indices,
            &mut structure,
            &mut scratch,
        );
    }

    // Steady state: not a single allocation across many member-iterations.
    let before = allocation_count();
    for iter in 3..40 {
        member_iteration(
            iter,
            &mut current,
            &mut cand,
            &mut indices,
            &mut structure,
            &mut scratch,
        );
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "evolution-kernel member-iterations allocated {} times after warm-up",
        after - before
    );
}

#[test]
fn incremental_rebuild_and_cell_list_paths_are_allocation_free() {
    // The buried 1xyz target has the densest environment in the benchmark,
    // so its candidate set (and therefore the cell-list gathers) is the
    // largest the sampler ever sees.  Drive the two new hot paths directly:
    // suffix-only `rebuild_from` at every angle index, and the VDW
    // environment term through the per-site cell-list query.
    let target = BenchmarkLibrary::standard().target_by_name("1xyz").unwrap();
    let builder = LoopBuilder::default();
    let vdw = VdwScore::default();
    let n_res = target.n_residues();
    let mut torsions = target.native_torsions.clone();
    let mut structure = target.build(&builder, &torsions);
    let mut scratch = ScoreScratch::for_loop_len(n_res);

    // Warm up: builds the env-candidate cache (with its cell list) and
    // sizes the gather buffer to the candidate count.
    target.env_candidates();
    let pass = |structure: &mut LoopStructure,
                torsions: &mut Torsions,
                scratch: &mut ScoreScratch,
                step: f64| {
        for k in 0..torsions.n_angles() {
            torsions.rotate_angle(k, step);
            builder.rebuild_from(&target.frame, &target.sequence, torsions, k, structure);
            let term = vdw.environment_term(&target, structure, scratch);
            assert!(term.is_finite());
        }
    };
    pass(&mut structure, &mut torsions, &mut scratch, 0.05);

    let before = allocation_count();
    for i in 0..8 {
        pass(
            &mut structure,
            &mut torsions,
            &mut scratch,
            -0.05 + 0.01 * i as f64,
        );
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "incremental rebuild / cell-list scoring allocated {} times after warm-up",
        after - before
    );
    // The suffix rebuilds tracked the full rebuild exactly the whole way.
    assert_eq!(structure, target.build(&builder, &torsions));
}

#[test]
fn scratch_reused_across_targets_stays_allocation_free_after_rewarm() {
    // Regression guard for the gather-buffer capacity bound: a scratch
    // warmed up on a small-environment target and then moved to a target
    // with many more candidates must, after ONE warm-up evaluation on the
    // new target, go back to allocating nothing — the capacity floor is
    // the new target's candidate count, not a stale increment.
    let lib = BenchmarkLibrary::standard();
    let small = lib.target_by_name("1cex").unwrap();
    let dense = lib.target_by_name("1xyz").unwrap();
    assert!(
        dense.env_candidates().len() > small.env_candidates().len(),
        "test premise: 1xyz must have the larger candidate set"
    );
    let builder = LoopBuilder::default();
    let vdw = VdwScore::default();
    let mut scratch = ScoreScratch::for_loop_len(small.n_residues());

    let s_small = small.build(&builder, &small.native_torsions);
    let s_dense = dense.build(&builder, &dense.native_torsions);
    // Warm on the small target, then one re-warm evaluation on the dense
    // one (may allocate: sites and gather buffer regrow).
    vdw.environment_term(&small, &s_small, &mut scratch);
    vdw.environment_term(&dense, &s_dense, &mut scratch);

    let before = allocation_count();
    for _ in 0..16 {
        let term = vdw.environment_term(&dense, &s_dense, &mut scratch);
        assert!(term.is_finite());
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "cross-target scratch reuse allocated {} times after re-warm-up",
        after - before
    );
}

#[test]
fn burial_enabled_scoring_is_allocation_free_after_warmup() {
    // The fourth objective's shared-gather path (wider Cα queries + the
    // per-residue count buffer) must preserve the zero-allocation invariant
    // on the densest-environment target.
    let target = BenchmarkLibrary::standard().target_by_name("1xyz").unwrap();
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let scorer = MultiScorer::new(kb).with_burial(true);
    let builder = LoopBuilder::default();
    let n_res = target.n_residues();
    let mut torsions = target.native_torsions.clone();
    let mut structure = target.build(&builder, &torsions);
    let mut scratch = ScoreScratch::for_loop_len(n_res);

    target.env_candidates();
    let pass = |structure: &mut LoopStructure,
                torsions: &mut Torsions,
                scratch: &mut ScoreScratch,
                step: f64| {
        for k in 0..torsions.n_angles() {
            torsions.rotate_angle(k, step);
            builder.rebuild_from(&target.frame, &target.sequence, torsions, k, structure);
            let scores = scorer.evaluate_with(&target, structure, torsions, scratch);
            assert!(scores.is_finite());
            assert!(scores.burial() != 0.0, "buried target must score burial");
        }
    };
    pass(&mut structure, &mut torsions, &mut scratch, 0.05);

    let before = allocation_count();
    for i in 0..8 {
        pass(
            &mut structure,
            &mut torsions,
            &mut scratch,
            -0.05 + 0.01 * i as f64,
        );
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "burial-enabled scoring allocated {} times after warm-up",
        after - before
    );
}

#[test]
fn staged_arena_pipeline_is_allocation_free_after_warmup() {
    // The population-batched pipeline's claim is stronger than the
    // per-member one: not just each member-iteration but the *entire staged
    // iteration* — sort/partition, the six kernel launches over the SoA
    // arena, acceptance statistics, traces, transfers and the fitness
    // kernel — reuses arena buffers allocated at trajectory start.  Sample
    // the allocation counter from the per-iteration progress callback and
    // require exact zero growth across steady-state iterations.
    //
    // The invariant must hold for every block partition of the population
    // (the default width, a non-divisor width with a ragged final block,
    // single-member blocks) and on the wide-lane SIMD backend, whose CCD
    // and VDW kernels stage into preallocated lane buffers.  Executors are
    // pinned to one worker because the parallel dispatch path itself spawns
    // scoped threads (an allocation by design); the kernels it runs are the
    // same ones proven allocation-free here.
    #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
    let mut executor_configs = vec![
        ExecutorConfig::scalar(),
        ExecutorConfig::scalar().ccd_block_width(5),
        ExecutorConfig::scalar().ccd_block_width(1),
    ];
    #[cfg(feature = "simd")]
    executor_configs.push(ExecutorConfig::simd().threads(1).ccd_block_width(6));
    for exec_cfg in executor_configs {
        let executor = exec_cfg.build().expect("valid executor config");
        let caps = executor.capabilities();
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
        let iterations = 10usize;
        let cfg = SamplerConfig::builder()
            .population_size(12)
            .n_complexes(2)
            .iterations(iterations)
            .seed(7)
            .build()
            .expect("valid test config");
        let sampler = MoscemSampler::new(target, kb, cfg);

        let samples: Vec<AtomicUsize> = (0..=iterations).map(|_| AtomicUsize::new(0)).collect();
        let progress = |done: usize, _total: usize| {
            samples[done].store(allocation_count(), Ordering::Relaxed);
        };
        let controls = RunControls::new().progress(&progress);
        let result = sampler
            .run_controlled(&executor, 7, &controls)
            .expect("uncancelled run succeeds");
        assert_eq!(result.population.len(), 12);

        // Iterations 1–3 may warm buffers up (profiler rows, trace growth);
        // every later iteration must allocate exactly nothing.
        for iter in 4..=iterations {
            let before = samples[iter - 1].load(Ordering::Relaxed);
            let after = samples[iter].load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "staged iteration {iter} on {caps} performed {} heap allocations",
                after - before
            );
        }
    }
}

#[test]
fn legacy_scoring_path_still_allocates_for_contrast() {
    // Sanity check that the counter actually observes allocations: the
    // legacy `evaluate` wrapper allocates its throwaway scratch.
    let target = BenchmarkLibrary::standard().target_by_name("5pti").unwrap();
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let scorer = MultiScorer::new(kb);
    let structure = target.build(&LoopBuilder::default(), &target.native_torsions);
    let before = allocation_count();
    let scores = scorer.evaluate(&target, &structure, &target.native_torsions);
    assert!(scores.is_finite());
    let after = allocation_count();
    assert!(
        after > before,
        "legacy path should allocate; counter broken?"
    );
}
