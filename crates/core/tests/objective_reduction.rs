//! Property tests that the generalized (4-slot) objective plumbing reduces
//! **exactly** to the three-objective behaviour whenever the burial
//! component carries no information:
//!
//! * when the burial component is *constant across a population* (of which
//!   the disabled objective's all-zero slot is the special case), Pareto
//!   dominance, non-dominated fronts, strengths, Eq.-1 fitness and NSGA-II
//!   crowding distances are all identical to the three-objective results;
//! * the three-objective results themselves agree with an independent
//!   reference implementation that hardwires 3 components, guarding the
//!   generic loops against objective-count regressions.

use lms_core::{
    crowding_distances, fitness_against, fitness_assignment, non_dominated_indices, strengths,
};
use lms_scoring::ScoreVector;
use proptest::prelude::*;

/// Reference three-objective dominance (hardwired component count).
fn dominates3(a: &ScoreVector, b: &ScoreVector) -> bool {
    let (a, b) = (a.as_array(), b.as_array());
    let mut strictly = false;
    for i in 0..3 {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strictly = true;
        }
    }
    strictly
}

/// Reference three-objective crowding distances (hardwired components).
fn crowding3(scores: &[ScoreVector]) -> Vec<f64> {
    let n = scores.len();
    let mut d = vec![0.0f64; n];
    for k in 0..3 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .component(k)
                .partial_cmp(&scores[b].component(k))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let span = scores[order[n - 1]].component(k) - scores[order[0]].component(k);
        if span <= 0.0 {
            continue;
        }
        d[order[0]] = f64::INFINITY;
        d[order[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            d[order[w]] +=
                (scores[order[w + 1]].component(k) - scores[order[w - 1]].component(k)) / span;
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constant_burial_reduces_to_three_objectives(
        raw in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 12),
        burial in -5.0f64..5.0,
    ) {
        let pop3: Vec<ScoreVector> = raw
            .iter()
            .map(|&(a, b, c)| ScoreVector::new(a, b, c))
            .collect();
        let pop4: Vec<ScoreVector> = pop3.iter().map(|s| s.with_burial(burial)).collect();

        // Dominance structure is unchanged by a constant fourth component…
        for i in 0..pop3.len() {
            for j in 0..pop3.len() {
                prop_assert_eq!(
                    pop4[i].dominates(&pop4[j]),
                    pop3[i].dominates(&pop3[j])
                );
                // …and matches the hardwired three-objective reference.
                prop_assert_eq!(pop3[i].dominates(&pop3[j]), dominates3(&pop3[i], &pop3[j]));
            }
        }

        // Fronts, strengths and Eq.-1 fitness are bit-identical.
        prop_assert_eq!(non_dominated_indices(&pop4), non_dominated_indices(&pop3));
        prop_assert_eq!(strengths(&pop4), strengths(&pop3));
        prop_assert_eq!(fitness_assignment(&pop4), fitness_assignment(&pop3));

        // Candidate-vs-reference fitness (the evolution kernel's Metropolis
        // quantity) reduces identically.
        let cand3 = pop3[0];
        let cand4 = pop4[0];
        prop_assert_eq!(
            fitness_against(&cand4, &pop4[1..]).to_bits(),
            fitness_against(&cand3, &pop3[1..]).to_bits()
        );

        // Crowding: the degenerate objective contributes nothing, and the
        // generic loop matches the hardwired reference.
        let c4 = crowding_distances(&pop4);
        let c3 = crowding_distances(&pop3);
        prop_assert_eq!(&c4, &c3);
        prop_assert_eq!(&c3, &crowding3(&pop3));
    }

    #[test]
    fn varying_burial_can_rescue_dominated_members(
        raw in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 8),
    ) {
        // Sanity check that the fourth slot is *not* inert in general: give
        // every member a distinct burial value inversely ordered to its VDW
        // component; any member dominated in 3-objective space on strictly
        // unequal components becomes incomparable.
        let pop3: Vec<ScoreVector> = raw
            .iter()
            .map(|&(a, b, c)| ScoreVector::new(a, b, c))
            .collect();
        let pop4: Vec<ScoreVector> = pop3
            .iter()
            .map(|s| s.with_burial(-s.vdw()))
            .collect();
        for i in 0..pop3.len() {
            for j in 0..pop3.len() {
                if pop3[i].dominates(&pop3[j]) && pop3[i].vdw() < pop3[j].vdw() {
                    prop_assert!(
                        !pop4[i].dominates(&pop4[j]),
                        "member {} should no longer dominate {} once burial disagrees",
                        i,
                        j
                    );
                }
            }
        }
    }
}
