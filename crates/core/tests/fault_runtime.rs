//! Deterministic fault-injection coverage (requires `--features
//! fault-injection`): every pipeline stage survives an injected panic,
//! NaN or stall as the *correct typed error* (or a clean recovery), the
//! supervisor's same-seed retries are bit-identical to unfaulted runs,
//! and a faulted job can never corrupt its batch siblings.

#![cfg(feature = "fault-injection")]

use lms_core::{
    Conformation, Error, Job, JobLimits, JobResult, LoopModelingEngine, NumericGuard, RetryPolicy,
    SamplerConfig,
};
use lms_protein::{BenchmarkLibrary, LoopTarget};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, Objective};
use lms_simt::{FaultKind, FaultPlan, KernelKind};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn fast_kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn target() -> LoopTarget {
    BenchmarkLibrary::standard().target_by_name("1cex").unwrap()
}

fn tiny_builder(iterations: usize) -> lms_core::SamplerConfigBuilder {
    SamplerConfig::test_scale()
        .to_builder()
        .population_size(8)
        .n_complexes(2)
        .iterations(iterations)
        .snapshot_iterations(Vec::new())
}

fn tiny(iterations: usize) -> SamplerConfig {
    tiny_builder(iterations).build().unwrap()
}

fn engine_with(policy: RetryPolicy) -> LoopModelingEngine {
    LoopModelingEngine::builder(fast_kb())
        .concurrency(1)
        .retry_policy(policy)
        .build()
        .unwrap()
}

fn run_single(engine: &LoopModelingEngine, job: Job) -> JobResult {
    engine.submit([job]).join().remove(0)
}

fn zero_backoff(max_attempts: usize) -> RetryPolicy {
    RetryPolicy::with_max_attempts(max_attempts).backoff(Duration::ZERO, Duration::ZERO)
}

/// Launch index 0 exists for every kernel the staged pipeline launches:
/// init for the sample/close/rebuild/score/health kernels, iteration 1
/// for Metropolis/Select.  (`FitAssgComplex` is a reference-path kernel
/// and never launched by the staged pipeline.)
const STAGED_KINDS: [KernelKind; 10] = [
    KernelKind::Ccd,
    KernelKind::EvalDist,
    KernelKind::EvalVdw,
    KernelKind::EvalTrip,
    KernelKind::FitAssgPopulation,
    KernelKind::Reproduction,
    KernelKind::Metropolis,
    KernelKind::Rebuild,
    KernelKind::Select,
    KernelKind::HealthSweep,
];

#[test]
fn an_injected_panic_in_any_stage_surfaces_as_a_labelled_job_panic() {
    let engine = engine_with(RetryPolicy::no_retries());
    for kind in STAGED_KINDS {
        let label = format!("faulty-{}", kind.name());
        let job = Job::builder(target())
            .config(tiny(2))
            .seed(7)
            .label(label.clone())
            .fault_plan(FaultPlan::new().inject(kind, 0, 0, FaultKind::Panic))
            .build()
            .unwrap();
        let result = run_single(&engine, job);
        match &result.outcome {
            Err(Error::JobPanicked { label: got, detail }) => {
                assert_eq!(got, &label);
                assert!(
                    detail.contains(kind.name()),
                    "panic detail {detail:?} should name the stage {}",
                    kind.name()
                );
            }
            other => panic!("{}: expected JobPanicked, got {other:?}", kind.name()),
        }
        // The supervisor recorded the (unretried) failure.
        assert_eq!(result.attempts.len(), 1);
        assert!(result.attempts[0].error.is_retryable());
    }
}

#[test]
fn a_nan_injected_into_a_score_kernel_fails_naming_the_poisoned_objective() {
    let engine = engine_with(RetryPolicy::no_retries());

    // Launch 1 of a score kernel is iteration 1's evaluation.
    let mid_run = Job::builder(target())
        .config(tiny(2))
        .seed(7)
        .fault_plan(FaultPlan::new().inject(KernelKind::EvalDist, 1, 1, FaultKind::Nan))
        .build()
        .unwrap();
    let err = run_single(&engine, mid_run).outcome.unwrap_err();
    assert_eq!(
        err,
        Error::NumericalFault {
            member: 1,
            iteration: 1,
            objective: Some(Objective::Dist),
        }
    );
    assert!(err.is_retryable());

    // Launch 0 poisons the initial scoring pass.
    let at_init = Job::builder(target())
        .config(tiny(2))
        .seed(7)
        .fault_plan(FaultPlan::new().inject(KernelKind::EvalVdw, 0, 3, FaultKind::Nan))
        .build()
        .unwrap();
    assert_eq!(
        run_single(&engine, at_init).outcome.unwrap_err(),
        Error::NumericalFault {
            member: 3,
            iteration: 0,
            objective: Some(Objective::Vdw),
        }
    );
}

#[test]
fn nan_in_mutate_close_and_rebuild_stages_is_policed_by_the_health_sweep() {
    let engine = engine_with(RetryPolicy::no_retries());

    // Rebuild launches exactly once at init, so launch 1 is iteration 1:
    // a poisoned RMSD observable (no objective to blame).
    let rebuild = Job::builder(target())
        .config(tiny(2))
        .seed(7)
        .fault_plan(FaultPlan::new().inject(KernelKind::Rebuild, 1, 5, FaultKind::Nan))
        .build()
        .unwrap();
    assert_eq!(
        run_single(&engine, rebuild).outcome.unwrap_err(),
        Error::NumericalFault {
            member: 5,
            iteration: 1,
            objective: None,
        }
    );

    // Init draws at most four masked sample/close rounds, so launch 4 of
    // the Reproduction / Ccd kernels is always an MCMC iteration's stage.
    // A NaN torsion out of the mutate stage is caught either by the
    // health sweep (NumericalFault) or earlier, when the closure geometry
    // chokes on the non-finite structure (JobPanicked) — both retryable,
    // and a same-seed retry recovers bit-identically (the fault session's
    // launch counters are already past the armed site).
    let retrying = engine_with(zero_backoff(2));
    let clean = run_single(
        &retrying,
        Job::builder(target())
            .config(tiny(5))
            .seed(7)
            .build()
            .unwrap(),
    )
    .outcome
    .unwrap()
    .population;
    let mutate = Job::builder(target())
        .config(tiny(5))
        .seed(7)
        .fault_plan(FaultPlan::new().inject(KernelKind::Reproduction, 4, 2, FaultKind::Nan))
        .build()
        .unwrap();
    let result = run_single(&retrying, mutate);
    assert_eq!(result.attempts.len(), 1);
    assert!(
        matches!(
            result.attempts[0].error,
            Error::NumericalFault { member: 2, .. } | Error::JobPanicked { .. }
        ),
        "unexpected classification: {:?}",
        result.attempts[0].error
    );
    assert_eq!(
        result.outcome.expect("the retry recovers").population,
        clean
    );

    // A NaN closure-deviation readback (CCD lane = block, block 0 holds
    // member 0) is caught even though `NaN > bound` is false and it would
    // sail through the Metropolis closure gate.
    let close = Job::builder(target())
        .config(tiny(5))
        .seed(7)
        .fault_plan(FaultPlan::new().inject(KernelKind::Ccd, 4, 0, FaultKind::Nan))
        .build()
        .unwrap();
    match run_single(&engine, close).outcome.unwrap_err() {
        Error::NumericalFault {
            member, objective, ..
        } => {
            assert_eq!(member, 0);
            assert_eq!(objective, None);
        }
        other => panic!("expected NumericalFault, got {other:?}"),
    }
}

#[test]
fn quarantine_policy_recovers_from_injected_nans() {
    let engine = engine_with(RetryPolicy::no_retries());
    let plans = [
        // Mid-run: the poisoned candidate is force-rejected.
        FaultPlan::new().inject(KernelKind::EvalDist, 1, 1, FaultKind::Nan),
        // At init: the poisoned member is re-seeded from a healthy donor.
        FaultPlan::new().inject(KernelKind::EvalVdw, 0, 3, FaultKind::Nan),
    ];
    for plan in plans {
        let cfg = tiny_builder(2)
            .numeric_guard(NumericGuard::Quarantine)
            .build()
            .unwrap();
        let job = Job::builder(target())
            .config(cfg)
            .seed(7)
            .fault_plan(plan)
            .build()
            .unwrap();
        let result = run_single(&engine, job);
        assert!(result.attempts.is_empty(), "quarantine is not a failure");
        let trajectory = result.outcome.expect("quarantine recovers in-place");
        assert!(trajectory
            .population
            .iter()
            .all(|c| c.scores.is_finite() && c.torsions.as_slice().iter().all(|t| t.is_finite())));
    }
}

#[test]
fn fault_sites_key_identically_across_executor_backends() {
    // Fault sites are keyed by (kernel kind, launch index, logical lane) —
    // coordinates of the *computation*, not of the backend that runs it.
    // The same plan must therefore hit the same member on every backend
    // and produce bit-identical quarantine recoveries.
    let plans = [
        FaultPlan::new().inject(KernelKind::EvalDist, 1, 1, FaultKind::Nan),
        FaultPlan::new().inject(KernelKind::Ccd, 0, 0, FaultKind::Nan),
    ];
    let mut executor_configs = vec![
        lms_simt::ExecutorConfig::scalar(),
        lms_simt::ExecutorConfig::parallel().threads(2),
    ];
    #[cfg(feature = "simd")]
    executor_configs.push(lms_simt::ExecutorConfig::simd().threads(2));
    for plan in plans {
        let mut baseline: Option<Vec<Conformation>> = None;
        for exec_cfg in &executor_configs {
            let engine = LoopModelingEngine::builder(fast_kb())
                .concurrency(1)
                .executor(*exec_cfg)
                .build()
                .unwrap();
            let cfg = tiny_builder(2)
                .numeric_guard(NumericGuard::Quarantine)
                .build()
                .unwrap();
            let job = Job::builder(target())
                .config(cfg)
                .seed(13)
                .fault_plan(plan.clone())
                .build()
                .unwrap();
            let result = run_single(&engine, job);
            let backend = result.capabilities.name;
            let population = result
                .outcome
                .unwrap_or_else(|e| panic!("quarantine recovers on {backend}: {e}"))
                .population;
            match &baseline {
                None => baseline = Some(population),
                Some(reference) => {
                    for (i, (a, b)) in population.iter().zip(reference.iter()).enumerate() {
                        assert_eq!(
                            a.torsions, b.torsions,
                            "member {i} torsions diverge on {backend}"
                        );
                        assert_eq!(a.scores, b.scores, "member {i} scores diverge on {backend}");
                    }
                }
            }
        }
    }
}

#[test]
fn an_injected_stall_trips_the_wallclock_deadline() {
    let engine = engine_with(RetryPolicy::no_retries());
    let cfg = tiny_builder(2)
        .limits(JobLimits::none().with_deadline(Duration::from_millis(250)))
        .build()
        .unwrap();
    let job = Job::builder(target())
        .config(cfg)
        .seed(7)
        .fault_plan(FaultPlan::new().inject(
            KernelKind::Ccd,
            0,
            0,
            FaultKind::Stall(Duration::from_millis(500)),
        ))
        .build()
        .unwrap();
    let result = run_single(&engine, job);
    assert_eq!(
        result.outcome.unwrap_err(),
        Error::DeadlineExceeded {
            limit: Duration::from_millis(250),
            completed_iterations: 0,
        }
    );
    assert_eq!(result.attempts.len(), 1, "deadlines are terminal");
}

#[test]
fn a_same_seed_retry_after_a_transient_panic_is_bit_identical_to_an_unfaulted_run() {
    let engine = engine_with(zero_backoff(2));
    let clean = run_single(
        &engine,
        Job::builder(target())
            .config(tiny(2))
            .seed(42)
            .build()
            .unwrap(),
    )
    .outcome
    .unwrap()
    .population;

    // The fault session spans the whole job, so the attempt-1 launch
    // counters are already past index 0 when the retry begins: the fault
    // behaves like a transient and the rerun sails past it.
    let job = Job::builder(target())
        .config(tiny(2))
        .seed(42)
        .fault_plan(FaultPlan::new().inject(KernelKind::EvalVdw, 0, 0, FaultKind::Panic))
        .build()
        .unwrap();
    let result = run_single(&engine, job);
    assert_eq!(result.attempts.len(), 1);
    assert!(matches!(
        result.attempts[0].error,
        Error::JobPanicked { .. }
    ));
    let retried = result.outcome.expect("the retry recovers").population;
    assert_eq!(retried, clean);
}

#[test]
fn a_nan_fired_into_a_non_float_stage_is_inert() {
    let engine = engine_with(RetryPolicy::no_retries());
    let clean = run_single(
        &engine,
        Job::builder(target())
            .config(tiny(2))
            .seed(9)
            .build()
            .unwrap(),
    )
    .outcome
    .unwrap()
    .population;

    // Metropolis/Select/fitness have no cooperative NaN hook; the
    // executor clears the unconsumed flag so it cannot leak into the
    // next lane scheduled on the same worker.
    let plan = FaultPlan::new()
        .inject(KernelKind::Metropolis, 0, 0, FaultKind::Nan)
        .inject(KernelKind::Select, 0, 1, FaultKind::Nan)
        .inject(KernelKind::FitAssgPopulation, 0, 2, FaultKind::Nan);
    let job = Job::builder(target())
        .config(tiny(2))
        .seed(9)
        .fault_plan(plan)
        .build()
        .unwrap();
    let result = run_single(&engine, job);
    assert!(result.attempts.is_empty());
    assert_eq!(result.outcome.unwrap().population, clean);
}

const SIBLING_SEEDS: [u64; 2] = [101, 202];

/// Unfaulted baseline populations for the sibling-isolation property,
/// computed once per test process.
fn sibling_baselines() -> &'static [Vec<Conformation>; 2] {
    static BASELINES: OnceLock<[Vec<Conformation>; 2]> = OnceLock::new();
    BASELINES.get_or_init(|| {
        let engine = engine_with(RetryPolicy::no_retries());
        SIBLING_SEEDS.map(|seed| {
            run_single(
                &engine,
                Job::builder(target())
                    .config(tiny(2))
                    .seed(seed)
                    .build()
                    .unwrap(),
            )
            .outcome
            .unwrap()
            .population
        })
    })
}

/// A seeded plan injected into one job of a batch — whatever stage,
/// launch or lane it hits — either recovers or fails with a typed error,
/// and never perturbs the sibling jobs' trajectories.  (Plain function
/// body; the `proptest!` block below only forwards to it.)
fn check_faulted_job_never_corrupts_its_siblings(fault_seed: u64) {
    let plan = FaultPlan::seeded(fault_seed, 3, &STAGED_KINDS, 4, 8);
    let engine = LoopModelingEngine::builder(fast_kb())
        .concurrency(2)
        .retry_policy(zero_backoff(2))
        .build()
        .unwrap();
    let jobs = vec![
        Job::builder(target())
            .config(tiny(2))
            .seed(SIBLING_SEEDS[0])
            .label("a")
            .build()
            .unwrap(),
        Job::builder(target())
            .config(tiny(2))
            .seed(555)
            .label("faulty")
            .fault_plan(plan)
            .build()
            .unwrap(),
        Job::builder(target())
            .config(tiny(2))
            .seed(SIBLING_SEEDS[1])
            .label("c")
            .build()
            .unwrap(),
    ];
    let results = engine.submit(jobs).join();
    let baselines = sibling_baselines();
    for result in &results {
        match result.label.as_str() {
            "a" | "c" => {
                let baseline = if result.label == "a" {
                    &baselines[0]
                } else {
                    &baselines[1]
                };
                assert!(result.attempts.is_empty());
                match &result.outcome {
                    Ok(t) => assert_eq!(&t.population, baseline),
                    Err(e) => panic!("sibling failed: {e:?}"),
                }
            }
            "faulty" => {
                // Recovered, or dead of a *typed, classified* fault —
                // never a mis-filed config/cancel error.
                if let Err(e) = &result.outcome {
                    assert!(
                        matches!(
                            e,
                            Error::JobPanicked { .. }
                                | Error::NumericalFault { .. }
                                | Error::Stalled { .. }
                                | Error::DeadlineExceeded { .. }
                        ),
                        "unexpected classification: {e:?}"
                    );
                }
            }
            other => panic!("unknown label {other}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn a_faulted_job_never_corrupts_its_siblings(fault_seed in 0usize..usize::MAX) {
        check_faulted_job_never_corrupts_its_siblings(fault_seed as u64);
    }
}
