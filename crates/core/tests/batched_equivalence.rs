//! Property tests: the staged population-batched kernel pipeline
//! (`MoscemSampler::run_controlled` / `run_with_seed`) is **bit-identical**
//! to the per-member reference implementation
//! (`MoscemSampler::run_reference_with_seed`) — across every executor
//! backend (scalar / parallel / SIMD when compiled in), several CCD block
//! widths, both objective modes (3- and 4-objective), the single-objective
//! and weighted-sum baselines, multiple seeds and targets.
//!
//! This is the contract that makes the SoA arena refactor and the pluggable
//! backend API safe: the staged launches (`mutate`, `close`, `rebuild`,
//! `score`, `metropolis`, `select`) reorganise *execution*, never
//! *computation* — every member draws the same `(member, iteration)` random
//! stream and sees the same floating-point operation sequence as the fused
//! per-member loop, whatever backend or block width runs it.  Every new
//! backend must join [`equivalence_executors`] to ship.

use lms_core::{MoscemSampler, ObjectiveMode, SamplerConfig, TrajectoryResult};
use lms_protein::BenchmarkLibrary;
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, Objective};
use lms_simt::{Executor, ExecutorConfig};
use std::sync::Arc;

/// The full backend × block-width equivalence matrix.  Every backend the
/// build knows about appears here — adding an executor backend without
/// extending this harness is a bug.
fn equivalence_executors() -> Vec<Executor> {
    #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
    let mut executors = vec![
        ExecutorConfig::scalar().build().unwrap(),
        ExecutorConfig::parallel().build().unwrap(),
        ExecutorConfig::parallel().threads(2).build().unwrap(),
        // Block widths off the default 8: a divisor of the population, a
        // non-divisor (ragged final block), and single-member blocks.
        ExecutorConfig::scalar().ccd_block_width(4).build().unwrap(),
        ExecutorConfig::parallel()
            .threads(2)
            .ccd_block_width(5)
            .build()
            .unwrap(),
        ExecutorConfig::scalar().ccd_block_width(1).build().unwrap(),
    ];
    #[cfg(feature = "simd")]
    {
        executors.push(ExecutorConfig::simd().build().unwrap());
        executors.push(
            ExecutorConfig::simd()
                .threads(2)
                .ccd_block_width(12)
                .build()
                .unwrap(),
        );
        // Widths that leave the lane-major spine rebuild with ragged
        // 4-lane groups (6 = 4+2, 7 = 4+3) so its masked-tail path — the
        // last group repeating a lane — is exercised, not just full
        // groups.
        executors.push(ExecutorConfig::simd().ccd_block_width(6).build().unwrap());
        executors.push(
            ExecutorConfig::simd()
                .threads(2)
                .ccd_block_width(7)
                .build()
                .unwrap(),
        );
    }
    executors
}

/// Label an executor for assertion messages.
fn describe(executor: &Executor) -> String {
    let caps = executor.capabilities();
    format!("{} w={}", caps.name, caps.ccd_block_width)
}

fn fast_kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn sampler(name: &str, cfg: SamplerConfig) -> MoscemSampler {
    let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
    MoscemSampler::new(target, fast_kb(), cfg)
}

fn base_config() -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(16)
        .n_complexes(2)
        .iterations(3)
        .snapshot_iterations(vec![0, 2, 3])
        .build()
        .expect("valid test config")
}

/// Bitwise equality of everything the sampling computation determines
/// (timings and profiler rows are measurements and excluded).
fn assert_bit_identical(batched: &TrajectoryResult, reference: &TrajectoryResult, label: &str) {
    assert_eq!(
        batched.population.len(),
        reference.population.len(),
        "{label}: population size"
    );
    for (i, (b, r)) in batched
        .population
        .iter()
        .zip(reference.population.iter())
        .enumerate()
    {
        assert_eq!(b.torsions, r.torsions, "{label}: member {i} torsions");
        assert_eq!(b.scores, r.scores, "{label}: member {i} scores");
        assert_eq!(
            b.fitness.to_bits(),
            r.fitness.to_bits(),
            "{label}: member {i} fitness"
        );
        assert_eq!(
            b.closure_deviation.to_bits(),
            r.closure_deviation.to_bits(),
            "{label}: member {i} closure deviation"
        );
        assert_eq!(
            b.rmsd_to_native.to_bits(),
            r.rmsd_to_native.to_bits(),
            "{label}: member {i} rmsd"
        );
        assert_eq!(
            (b.accepted_moves, b.proposed_moves),
            (r.accepted_moves, r.proposed_moves),
            "{label}: member {i} move counts"
        );
    }
    assert_eq!(
        batched.final_temperature.to_bits(),
        reference.final_temperature.to_bits(),
        "{label}: final temperature"
    );
    assert_eq!(
        batched.acceptance_rate.to_bits(),
        reference.acceptance_rate.to_bits(),
        "{label}: acceptance rate"
    );
    assert_eq!(
        batched.complex_traces, reference.complex_traces,
        "{label}: complex traces"
    );
    assert_eq!(
        batched.snapshots.len(),
        reference.snapshots.len(),
        "{label}: snapshot count"
    );
    for (b, r) in batched.snapshots.iter().zip(reference.snapshots.iter()) {
        assert_eq!(b.iteration, r.iteration, "{label}: snapshot iteration");
        assert_eq!(
            b.non_dominated_count, r.non_dominated_count,
            "{label}: snapshot front size"
        );
        assert_eq!(b.front, r.front, "{label}: snapshot front");
        assert_eq!(
            b.best_rmsd.to_bits(),
            r.best_rmsd.to_bits(),
            "{label}: snapshot best rmsd"
        );
        assert_eq!(
            b.temperature.to_bits(),
            r.temperature.to_bits(),
            "{label}: snapshot temperature"
        );
    }
}

#[test]
fn batched_pipeline_matches_reference_across_executors_and_seeds() {
    let executors = equivalence_executors();
    for name in ["1cex", "5pti"] {
        let s = sampler(name, base_config());
        for seed in [1u64, 42, 2010] {
            // The reference run itself is executor-invariant; compute it once
            // per seed on the scalar baseline.
            let reference =
                s.run_reference_with_seed(&ExecutorConfig::scalar().build().unwrap(), seed);
            for executor in &executors {
                let batched = s.run_with_seed(executor, seed);
                assert_bit_identical(
                    &batched,
                    &reference,
                    &format!("{name} seed {seed} on {}", describe(executor)),
                );
            }
        }
    }
}

#[test]
fn batched_pipeline_matches_reference_in_four_objective_mode() {
    let cfg = base_config()
        .to_builder()
        .burial_objective(true)
        .build()
        .expect("valid burial config");
    // 1xyz is the buried target: the burial objective is non-trivial there.
    let s = sampler("1xyz", cfg);
    for seed in [7u64, 99] {
        let reference = s.run_reference_with_seed(&ExecutorConfig::scalar().build().unwrap(), seed);
        #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
        let mut executors = vec![
            ExecutorConfig::scalar().build().unwrap(),
            ExecutorConfig::parallel()
                .threads(2)
                .ccd_block_width(6)
                .build()
                .unwrap(),
        ];
        #[cfg(feature = "simd")]
        executors.push(ExecutorConfig::simd().build().unwrap());
        for executor in executors {
            let batched = s.run_with_seed(&executor, seed);
            assert_bit_identical(
                &batched,
                &reference,
                &format!("burial seed {seed} on {}", describe(&executor)),
            );
        }
        // The burial slot is genuinely active (not reduced to the
        // three-objective pipeline).
        assert!(
            reference
                .population
                .iter()
                .any(|c| c.scores.burial() != 0.0),
            "burial objective inactive on the buried target"
        );
    }
}

#[test]
fn batched_pipeline_matches_reference_in_baseline_objective_modes() {
    for (label, mode) in [
        ("single-vdw", ObjectiveMode::Single(Objective::Vdw)),
        ("single-dist", ObjectiveMode::Single(Objective::Dist)),
        (
            "weighted-sum",
            ObjectiveMode::WeightedSum([0.5, 0.3, 0.2, 0.0]),
        ),
    ] {
        let cfg = base_config()
            .to_builder()
            .objective_mode(mode)
            .build()
            .expect("valid baseline config");
        let s = sampler("1akz", cfg);
        let reference = s.run_reference_with_seed(&ExecutorConfig::scalar().build().unwrap(), 5);
        let batched = s.run_with_seed(&ExecutorConfig::parallel().build().unwrap(), 5);
        assert_bit_identical(&batched, &reference, label);
    }
}

#[test]
fn uniform_random_init_mode_matches_reference() {
    // The init retry rounds (unclosed members redrawing from their own
    // streams) are exercised hardest by uniform-random starts.
    let cfg = base_config()
        .to_builder()
        .init_mode(lms_core::InitMode::UniformRandom)
        .build()
        .expect("valid config");
    let s = sampler("1cex", cfg);
    for seed in [3u64, 11] {
        let reference = s.run_reference_with_seed(&ExecutorConfig::scalar().build().unwrap(), seed);
        let batched = s.run_with_seed(
            &ExecutorConfig::parallel().threads(3).build().unwrap(),
            seed,
        );
        assert_bit_identical(&batched, &reference, &format!("uniform-init seed {seed}"));
    }
}
