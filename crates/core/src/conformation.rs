//! The per-member state of the sampling population.

use lms_protein::Torsions;
use lms_scoring::ScoreVector;

/// One member of the MOSCEM population: a loop conformation in torsion
/// space together with its three objective scores and bookkeeping used by
/// the sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct Conformation {
    /// The torsion-angle vector (φ1, ψ1, …, φn, ψn).
    pub torsions: Torsions,
    /// The (VDW, DIST, TRIPLET) scores of the built, closed structure.
    pub scores: ScoreVector,
    /// Loop-closure deviation of the built structure (Å).
    pub closure_deviation: f64,
    /// Fitness from the latest population-wide assignment (Eq. 1); lower is
    /// better, `< 1` means on the Pareto front.
    pub fitness: f64,
    /// Backbone RMSD to the native loop (Å).  Available because the
    /// benchmark is synthetic; the sampler never uses it for decisions —
    /// it is recorded purely for evaluation.
    pub rmsd_to_native: f64,
    /// Number of proposal moves this slot has accepted.
    pub accepted_moves: usize,
    /// Number of proposal moves this slot has seen.
    pub proposed_moves: usize,
}

impl Conformation {
    /// Create a new member with unset scores.
    pub fn new(torsions: Torsions) -> Self {
        Conformation {
            torsions,
            scores: ScoreVector::default(),
            closure_deviation: f64::INFINITY,
            fitness: f64::INFINITY,
            rmsd_to_native: f64::INFINITY,
            accepted_moves: 0,
            proposed_moves: 0,
        }
    }

    /// Acceptance ratio of this member so far (0 when nothing proposed).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.proposed_moves == 0 {
            0.0
        } else {
            self.accepted_moves as f64 / self.proposed_moves as f64
        }
    }

    /// Whether the member currently satisfies the loop-closure condition.
    pub fn is_closed(&self, tolerance: f64) -> bool {
        self.closure_deviation <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_conformation_has_unset_state() {
        let c = Conformation::new(Torsions::zeros(5));
        assert_eq!(c.torsions.n_residues(), 5);
        assert!(c.fitness.is_infinite());
        assert!(c.closure_deviation.is_infinite());
        assert!(!c.is_closed(0.5));
        assert_eq!(c.acceptance_ratio(), 0.0);
    }

    #[test]
    fn acceptance_ratio_tracks_counts() {
        let mut c = Conformation::new(Torsions::zeros(3));
        c.proposed_moves = 10;
        c.accepted_moves = 4;
        assert!((c.acceptance_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn closure_check_uses_tolerance() {
        let mut c = Conformation::new(Torsions::zeros(3));
        c.closure_deviation = 0.2;
        assert!(c.is_closed(0.25));
        assert!(!c.is_closed(0.1));
    }
}
