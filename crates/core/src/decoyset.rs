//! Decoy-set accumulation.
//!
//! The paper's evaluation protocol: run the multi-scoring sampling
//! trajectory, take the structurally distinct non-dominated conformations
//! (maximum torsion deviation of at least 30° from every decoy already in
//! the set), add them to the decoy set, and repeat trajectories with fresh
//! random seeds until the set holds 1,000 decoys.  [`DecoySet`] implements
//! that accumulation and the quality queries Table IV needs.

use crate::conformation::Conformation;
use crate::pareto::non_dominated_indices;
use lms_protein::Torsions;
use lms_scoring::ScoreVector;

/// One decoy in the set.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoy {
    /// Torsion vector of the decoy.
    pub torsions: Torsions,
    /// Objective scores of the decoy.
    pub scores: ScoreVector,
    /// Backbone RMSD to the native loop (Å).
    pub rmsd_to_native: f64,
    /// Index of the trajectory that produced it.
    pub trajectory: usize,
}

/// A growing set of structurally distinct loop decoys.
#[derive(Debug, Clone)]
pub struct DecoySet {
    decoys: Vec<Decoy>,
    threshold_deg: f64,
    max_closure_deviation: f64,
}

impl DecoySet {
    /// Create an empty decoy set with the given structural-distinctness
    /// threshold (degrees of maximum torsion deviation).  By default no
    /// closure filter is applied; see
    /// [`DecoySet::with_max_closure_deviation`].
    pub fn new(threshold_deg: f64) -> Self {
        DecoySet {
            decoys: Vec::new(),
            threshold_deg,
            max_closure_deviation: f64::INFINITY,
        }
    }

    /// Restrict harvesting to conformations satisfying the loop-closure
    /// condition: members whose recorded closure deviation exceeds
    /// `max_deviation` (Å) are never added by
    /// [`DecoySet::harvest_population`].  An unclosed loop can score
    /// deceptively well (it simply drifts away from the protein), so decoy
    /// sets for evaluation should always set this.
    pub fn with_max_closure_deviation(mut self, max_deviation: f64) -> Self {
        self.max_closure_deviation = max_deviation;
        self
    }

    /// The distinctness threshold in degrees.
    pub fn threshold_deg(&self) -> f64 {
        self.threshold_deg
    }

    /// Number of decoys collected so far.
    pub fn len(&self) -> usize {
        self.decoys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.decoys.is_empty()
    }

    /// The decoys collected so far.
    pub fn decoys(&self) -> &[Decoy] {
        &self.decoys
    }

    /// Whether a candidate is structurally distinct from everything already
    /// in the set.
    pub fn is_distinct(&self, torsions: &Torsions) -> bool {
        self.decoys
            .iter()
            .all(|d| d.torsions.is_distinct_from(torsions, self.threshold_deg))
    }

    /// Try to add a decoy; returns `true` if it was added (i.e. it was
    /// distinct from every existing decoy).
    pub fn try_add(&mut self, decoy: Decoy) -> bool {
        if self.is_distinct(&decoy.torsions) {
            self.decoys.push(decoy);
            true
        } else {
            false
        }
    }

    /// Harvest the structurally distinct non-dominated conformations of a
    /// finished trajectory's population into the set.  Returns how many new
    /// decoys were added.
    pub fn harvest_population(&mut self, population: &[Conformation], trajectory: usize) -> usize {
        let scores: Vec<ScoreVector> = population.iter().map(|c| c.scores).collect();
        let mut added = 0;
        for idx in non_dominated_indices(&scores) {
            let c = &population[idx];
            if c.closure_deviation > self.max_closure_deviation {
                // Unclosed conformations are not valid decoys regardless of
                // how well they score.
                continue;
            }
            let decoy = Decoy {
                torsions: c.torsions.clone(),
                scores: c.scores,
                rmsd_to_native: c.rmsd_to_native,
                trajectory,
            };
            if self.try_add(decoy) {
                added += 1;
            }
        }
        added
    }

    /// Best (lowest) RMSD to native in the set, or `None` when empty.
    pub fn best_rmsd(&self) -> Option<f64> {
        self.decoys
            .iter()
            .map(|d| d.rmsd_to_native)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Number of decoys within an RMSD cutoff of the native.
    pub fn count_within(&self, rmsd_cutoff: f64) -> usize {
        self.decoys
            .iter()
            .filter(|d| d.rmsd_to_native <= rmsd_cutoff)
            .count()
    }

    /// Whether the set contains at least one decoy within the cutoff — the
    /// per-target success criterion of Table IV.
    pub fn has_decoy_within(&self, rmsd_cutoff: f64) -> bool {
        self.count_within(rmsd_cutoff) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;

    fn decoy(phis_deg: &[f64], rmsd: f64) -> Decoy {
        let pairs: Vec<(f64, f64)> = phis_deg
            .iter()
            .map(|&p| (deg_to_rad(p), deg_to_rad(p / 2.0)))
            .collect();
        Decoy {
            torsions: Torsions::from_pairs(&pairs),
            scores: ScoreVector::new(1.0, 1.0, 1.0),
            rmsd_to_native: rmsd,
            trajectory: 0,
        }
    }

    #[test]
    fn distinctness_rule_enforced() {
        let mut set = DecoySet::new(30.0);
        assert!(set.is_empty());
        assert!(set.try_add(decoy(&[-60.0, -60.0, -60.0], 1.0)));
        // Within 30 degrees of the first everywhere: rejected.
        assert!(!set.try_add(decoy(&[-70.0, -55.0, -45.0], 1.2)));
        assert_eq!(set.len(), 1);
        // One torsion deviates by 40 degrees: accepted.
        assert!(set.try_add(decoy(&[-100.0, -60.0, -60.0], 0.8)));
        assert_eq!(set.len(), 2);
        // Must now be distinct from *both* members.
        assert!(!set.try_add(decoy(&[-95.0, -62.0, -58.0], 0.9)));
        assert_eq!(set.threshold_deg(), 30.0);
    }

    #[test]
    fn quality_queries() {
        let mut set = DecoySet::new(30.0);
        set.try_add(decoy(&[-60.0, -60.0, -60.0], 2.4));
        set.try_add(decoy(&[-120.0, 140.0, -60.0], 0.9));
        set.try_add(decoy(&[60.0, 45.0, 100.0], 1.4));
        assert_eq!(set.len(), 3);
        assert!((set.best_rmsd().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(set.count_within(1.0), 1);
        assert_eq!(set.count_within(1.5), 2);
        assert!(set.has_decoy_within(1.0));
        assert!(!set.has_decoy_within(0.5));
        assert!(DecoySet::new(30.0).best_rmsd().is_none());
    }

    #[test]
    fn harvest_takes_only_non_dominated_and_distinct() {
        let mut set = DecoySet::new(30.0);
        let make = |phi_deg: f64, scores: ScoreVector, rmsd: f64| {
            let mut c = Conformation::new(Torsions::from_pairs(&[(deg_to_rad(phi_deg), 0.0)]));
            c.scores = scores;
            c.rmsd_to_native = rmsd;
            c
        };
        let population = vec![
            make(-60.0, ScoreVector::new(1.0, 2.0, 3.0), 1.0), // non-dominated
            make(100.0, ScoreVector::new(2.0, 1.0, 3.0), 1.5), // non-dominated
            make(170.0, ScoreVector::new(3.0, 3.0, 4.0), 0.5), // dominated by both
            make(-65.0, ScoreVector::new(1.0, 2.0, 2.9), 1.1), // non-dominated but not distinct from the first
        ];
        let added = set.harvest_population(&population, 7);
        assert_eq!(added, 2);
        assert_eq!(set.len(), 2);
        assert!(set.decoys().iter().all(|d| d.trajectory == 7));
        // The dominated low-RMSD member was (correctly) not harvested.
        assert!(set.best_rmsd().unwrap() > 0.9);
    }
}
