//! # lms-core
//!
//! The paper's core contribution: **multi-scoring-functions protein loop
//! structure sampling** with the MOSCEM (Multiobjective Shuffled Complex
//! Evolution Metropolis) algorithm, expressed as per-conformation kernels
//! over a population and executed on the heterogeneous platform substitute
//! provided by [`lms_simt`].
//!
//! The crate provides:
//!
//! * [`engine`] — the batch job engine: [`LoopModelingEngine`] owns the
//!   shared knowledge base, executor and scratch pool, and schedules many
//!   concurrent [`Job`]s with streaming results, per-job progress and
//!   cancellation;
//! * [`pareto`] — Pareto dominance and the strength-based fitness of Eq. 1;
//! * [`mutation`] — the torsion mutation (reproduction) move set;
//! * [`sampler`] — one MOSCEM sampling trajectory (initialisation, fitness
//!   assignment, complex partitioning, evolution with CCD closure and
//!   three-objective scoring, Metropolis acceptance, temperature control),
//!   with full device-model instrumentation;
//! * [`decoyset`] — accumulation of structurally distinct non-dominated
//!   decoys across trajectories (the paper's decoy-production protocol);
//! * [`error`] — the typed [`ConfigError`]/[`Error`] hierarchy every
//!   fallible entry point reports through.
//!
//! ## Quick example
//!
//! ```
//! use lms_core::{Job, LoopModelingEngine, SamplerConfig};
//! use lms_protein::BenchmarkLibrary;
//! use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
//!
//! # fn main() -> Result<(), lms_core::Error> {
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let engine = LoopModelingEngine::builder(kb).build()?;
//! let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
//! let config = SamplerConfig::builder()
//!     .population_size(16)
//!     .iterations(2)
//!     .build()?;
//! let job = Job::builder(target).config(config).seed(7).build()?;
//! let result = engine.run(job)?;
//! assert_eq!(result.population.len(), 16);
//! assert!(result.non_dominated_count() >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod annealing;
pub mod arena;
pub mod config;
pub mod conformation;
pub mod convergence;
pub mod decoyset;
pub mod engine;
pub mod error;
pub mod health;
pub mod mutation;
pub mod pareto;
pub mod sampler;

pub use annealing::{TemperatureController, TemperatureSchedule};
pub use arena::PopulationArena;
#[allow(deprecated)]
pub use arena::CCD_BLOCK_WIDTH;
pub use config::{
    InitMode, JobLimits, NumericGuard, ObjectiveMode, SamplerConfig, SamplerConfigBuilder,
};
pub use conformation::Conformation;
pub use convergence::{autocorrelation, effective_sample_size, gelman_rubin, FrontProgress};
pub use decoyset::{Decoy, DecoySet};
pub use engine::{
    AttemptFailure, BatchHandle, EngineBuilder, Job, JobBuilder, JobId, JobProgress, JobResult,
    JobStatus, LoopModelingEngine, RetryPolicy,
};
pub use error::{ConfigError, Error};
pub use health::{member_is_finite, member_poison, PoisonedLane};
pub use mutation::{MutationConfig, MutationOutcome, Mutator};
pub use pareto::{
    count_non_dominated, crowding_distances, fitness_against, fitness_against_scalar,
    fitness_assignment, non_dominated_indices, strengths,
};
pub use sampler::{
    ComponentTimes, DecoyProduction, IterationSnapshot, MoscemSampler, RunControls,
    TrajectoryResult,
};
