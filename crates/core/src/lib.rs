//! # lms-core
//!
//! The paper's core contribution: **multi-scoring-functions protein loop
//! structure sampling** with the MOSCEM (Multiobjective Shuffled Complex
//! Evolution Metropolis) algorithm, expressed as per-conformation kernels
//! over a population and executed on the heterogeneous platform substitute
//! provided by [`lms_simt`].
//!
//! The crate provides:
//!
//! * [`pareto`] — Pareto dominance and the strength-based fitness of Eq. 1;
//! * [`mutation`] — the torsion mutation (reproduction) move set;
//! * [`sampler`] — the MOSCEM sampling trajectory (initialisation, fitness
//!   assignment, complex partitioning, evolution with CCD closure and
//!   three-objective scoring, Metropolis acceptance, temperature control),
//!   with full device-model instrumentation;
//! * [`decoyset`] — accumulation of structurally distinct non-dominated
//!   decoys across trajectories (the paper's decoy-production protocol).
//!
//! ## Quick example
//!
//! ```
//! use lms_core::{MoscemSampler, SamplerConfig};
//! use lms_protein::BenchmarkLibrary;
//! use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
//! use lms_simt::Executor;
//!
//! let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let config = SamplerConfig { population_size: 16, iterations: 2, ..SamplerConfig::test_scale() };
//! let sampler = MoscemSampler::new(target, kb, config);
//! let result = sampler.run(&Executor::parallel());
//! assert_eq!(result.population.len(), 16);
//! assert!(result.non_dominated_count() >= 1);
//! ```

#![warn(missing_docs)]

pub mod annealing;
pub mod config;
pub mod conformation;
pub mod convergence;
pub mod decoyset;
pub mod mutation;
pub mod pareto;
pub mod sampler;

pub use annealing::{TemperatureController, TemperatureSchedule};
pub use config::{InitMode, ObjectiveMode, SamplerConfig};
pub use conformation::Conformation;
pub use convergence::{autocorrelation, effective_sample_size, gelman_rubin, FrontProgress};
pub use decoyset::{Decoy, DecoySet};
pub use mutation::{MutationConfig, MutationOutcome, Mutator};
pub use pareto::{
    count_non_dominated, fitness_against, fitness_assignment, non_dominated_indices, strengths,
};
pub use sampler::{
    ComponentTimes, DecoyProduction, IterationSnapshot, MoscemSampler, TrajectoryResult,
};
