//! The MOSCEM multi-scoring-functions loop sampler.
//!
//! This module is the paper's core contribution: a population-based
//! multi-objective MCMC sampler over the loop torsion space.  One sampling
//! *trajectory* follows the paper's pseudo-code:
//!
//! 1. **Initialization** — every population member gets random torsions,
//!    is closed with CCD and scored with the three scoring functions.
//! 2. **Iterations** — fitness assignment (Eq. 1) over the population,
//!    sorting and stride-partition into complexes (host side), then the
//!    per-conformation evolution kernel (mutation → CCD → scoring →
//!    Metropolis against the complex), reassembly, and adaptive temperature
//!    adjustment.
//!
//! The per-conformation work is expressed as kernels over the population and
//! executed by an [`Executor`] — sequentially (the CPU baseline) or
//! data-parallel (the device role) — while every launch is also fed to the
//! analytic device/host [`TimingModel`] so the experiment harness can report
//! the paper's modeled GPU-vs-CPU timings alongside the measured host times.

use crate::arena::{MemberSlot, PopulationArena};
use crate::config::{InitMode, NumericGuard, ObjectiveMode, SamplerConfig};
use crate::conformation::Conformation;
use crate::decoyset::DecoySet;
use crate::error::{ConfigError, Error};
use crate::mutation::Mutator;
use crate::pareto::{fitness_against, non_dominated_indices};
use lms_closure::{CcdCloser, CcdLane};
use lms_geometry::{random_torsion, StreamRngFactory};
use lms_protein::{LoopBuilder, LoopStructure, LoopTarget, RamaClass, RamaLibrary, Torsions};
use lms_scoring::{KnowledgeBase, MultiScorer, ScoreScratch, ScoreVector, ScratchPool};
use lms_simt::{
    Executor, KernelKind, LaunchConfig, Profiler, SharedLanes, TimingModel, TransferKind,
    MAX_CCD_BLOCK_WIDTH,
};
use rand::Rng;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative controls threaded through one trajectory run: an optional
/// cancellation flag (checked between iterations), an optional per-iteration
/// progress callback, and an optional [`ScratchPool`] to lease the
/// population's scoring workspaces from (the engine passes its shared pool
/// here so consecutive jobs reuse warm buffers).
///
/// `RunControls::default()` is a no-op: with no controls set,
/// [`MoscemSampler::run_controlled`] behaves exactly like
/// [`MoscemSampler::run_with_seed`] and cannot fail.
#[derive(Clone, Copy, Default)]
pub struct RunControls<'a> {
    cancel: Option<&'a AtomicBool>,
    progress: Option<&'a (dyn Fn(usize, usize) + Sync)>,
    scratch_pool: Option<&'a ScratchPool>,
}

impl fmt::Debug for RunControls<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControls")
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .field("progress", &self.progress.is_some())
            .field("scratch_pool", &self.scratch_pool.is_some())
            .finish()
    }
}

impl<'a> RunControls<'a> {
    /// No controls: equivalent to an unconditional run.
    pub fn new() -> Self {
        RunControls::default()
    }

    /// Observe `flag` between iterations; when it becomes `true` the run
    /// stops and returns [`Error::Cancelled`].
    #[must_use]
    pub fn cancel_flag(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Call `f(completed_iterations, total_iterations)` after initialisation
    /// and after every completed iteration.
    #[must_use]
    pub fn progress(mut self, f: &'a (dyn Fn(usize, usize) + Sync)) -> Self {
        self.progress = Some(f);
        self
    }

    /// Lease the population's scoring scratches from `pool` instead of
    /// allocating fresh ones, returning them when the run ends (including
    /// on cancellation).
    #[must_use]
    pub fn scratch_pool(mut self, pool: &'a ScratchPool) -> Self {
        self.scratch_pool = Some(pool);
        self
    }
}

/// Host-measured time spent in each algorithm component, summed over all
/// population members (the quantity behind the paper's Figure 1 pie chart).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimes {
    /// Time in CCD loop closure (µs).
    pub ccd_us: f64,
    /// Time in the three scoring-function evaluations (µs).
    pub scoring_us: f64,
    /// Time in fitness assignment (µs).
    pub fitness_us: f64,
    /// Everything else: initialization bookkeeping, sorting, partitioning,
    /// assembling, temperature control (µs).
    pub other_us: f64,
}

impl ComponentTimes {
    /// Total accounted time (µs).
    pub fn total_us(&self) -> f64 {
        self.ccd_us + self.scoring_us + self.fitness_us + self.other_us
    }

    /// Fractions of the total in the order (CCD, scoring, fitness, other).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_us().max(1e-12);
        [
            self.ccd_us / t,
            self.scoring_us / t,
            self.fitness_us / t,
            self.other_us / t,
        ]
    }
}

/// A snapshot of the population at a chosen iteration (Figure 5 data).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSnapshot {
    /// Iteration index (0 = the initial population).
    pub iteration: usize,
    /// Number of non-dominated conformations in the population.
    pub non_dominated_count: usize,
    /// `(scores, rmsd_to_native)` of each non-dominated conformation.
    pub front: Vec<(ScoreVector, f64)>,
    /// Best RMSD to native anywhere in the population (Å).
    pub best_rmsd: f64,
    /// Metropolis temperature at the snapshot.
    pub temperature: f64,
}

/// The result of one sampling trajectory.
#[derive(Debug, Clone)]
#[must_use]
pub struct TrajectoryResult {
    /// Final population.
    pub population: Vec<Conformation>,
    /// Snapshots at the configured iterations.
    pub snapshots: Vec<IterationSnapshot>,
    /// Host-measured component times (Figure 1).
    pub component_times: ComponentTimes,
    /// Modeled device time of the whole trajectory (µs) — the "CPU-GPU
    /// implementation" column of Figure 4 / Table I.
    pub modeled_gpu_us: f64,
    /// Modeled single-core CPU time of the whole trajectory (µs) — the
    /// "CPU implementation" column of Figure 4 / Table I.
    pub modeled_cpu_us: f64,
    /// Measured wall-clock duration of the trajectory on the host.
    pub host_wall: Duration,
    /// Final Metropolis temperature.
    pub final_temperature: f64,
    /// Overall acceptance rate across all proposals.
    pub acceptance_rate: f64,
    /// The device profiler with per-kernel and per-memcpy statistics
    /// (Tables II and III).
    pub profiler: Arc<Profiler>,
    /// Per-complex trace of the mean VDW score after every iteration; the
    /// complexes act as parallel chains for convergence diagnostics.
    pub complex_traces: Vec<Vec<f64>>,
}

impl TrajectoryResult {
    /// Number of non-dominated conformations in the final population.
    pub fn non_dominated_count(&self) -> usize {
        let scores: Vec<ScoreVector> = self.population.iter().map(|c| c.scores).collect();
        non_dominated_indices(&scores).len()
    }

    /// Best RMSD to native anywhere in the final population (Å).
    pub fn best_rmsd(&self) -> f64 {
        self.population
            .iter()
            .map(|c| c.rmsd_to_native)
            .fold(f64::INFINITY, f64::min)
    }

    /// Modeled GPU-over-CPU speedup for the trajectory.
    pub fn modeled_speedup(&self) -> f64 {
        self.modeled_cpu_us / self.modeled_gpu_us.max(1e-12)
    }

    /// Harvest this trajectory's distinct non-dominated conformations into a
    /// decoy set, tagging them with `trajectory_index`.
    pub fn harvest_into(&self, set: &mut DecoySet, trajectory_index: usize) -> usize {
        set.harvest_population(&self.population, trajectory_index)
    }

    /// Gelman–Rubin R̂ of the per-complex mean VDW traces — the "MCMC
    /// equilibrium analysis" the paper alludes to.  `None` when the run had
    /// fewer than two complexes or two iterations.
    pub fn gelman_rubin_vdw(&self) -> Option<f64> {
        crate::convergence::gelman_rubin(&self.complex_traces)
    }
}

/// Outcome of the decoy-production protocol (repeated trajectories until
/// the decoy set reaches its target size).
#[derive(Debug)]
#[must_use]
pub struct DecoyProduction {
    /// The accumulated decoy set.
    pub decoys: DecoySet,
    /// Number of trajectories that were run.
    pub trajectories_run: usize,
    /// Per-trajectory results.
    pub trajectories: Vec<TrajectoryResult>,
}

/// Abstract work-unit model of one conformation's kernels on a given target,
/// used to convert measured work into modeled device/CPU time.
#[derive(Debug, Clone, Copy)]
struct WorkModel {
    /// Atom placements per CCD rotation (rebuild of the whole loop).
    ccd_per_rotation: f64,
    /// Scored atom pairs for DIST.
    dist_work: f64,
    /// Examined contacts for VDW.
    vdw_work: f64,
    /// Table lookups for TRIPLET.
    trip_work: f64,
}

impl WorkModel {
    fn for_target(target: &LoopTarget) -> WorkModel {
        let n = target.n_residues();
        // CCD rebuilds only the suffix from the rotated torsion onward
        // (LoopBuilder::rebuild_from); rotations are spread over the sweep,
        // so the expected rebuild is half the loop's 5 placements/residue.
        let ccd_per_rotation = (n * 5) as f64 * 0.5;
        // DIST: 16 atom-kind pairs per residue pair at separation >= 2.
        let res_pairs_sep2: usize = (2..n).map(|d| n - d).sum();
        let dist_work = (res_pairs_sep2 * 16) as f64;
        // VDW: intra-loop sites plus environment contacts near the loop.
        let centroids = target.sequence.iter().filter(|a| !a.is_glycine()).count();
        let sites = (4 * n + centroids) as f64;
        let env_neighbors: f64 = {
            let atoms = target.native_structure.backbone_atoms();
            let total: usize = atoms
                .iter()
                .map(|a| target.environment.burial_count(*a, 7.0))
                .sum();
            total as f64 / atoms.len().max(1) as f64
        };
        let vdw_work = sites * (sites - 1.0) / 2.0 + sites * env_neighbors;
        WorkModel {
            ccd_per_rotation,
            dist_work,
            vdw_work,
            trip_work: n as f64,
        }
    }
}

/// Internal per-member state used inside the population kernels.
///
/// Besides the conformation itself, every member owns the workspace buffers
/// of the zero-allocation pipeline, reused across all iterations: a
/// [`LoopStructure`] that CCD rebuilds in place (suffix-only via
/// `LoopBuilder::rebuild_from` after each accepted rotation) and hands to
/// scoring, a [`ScoreScratch`] for the SoA scoring kernels (including the
/// index buffer the VDW environment term gathers its per-site cell-list
/// query results into), a candidate torsion vector for proposals, and the
/// mutation-index scratch.  After the first iteration warms these buffers
/// up, one member-iteration of the evolution kernel performs no heap
/// allocation (verified by `tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
struct Member {
    conf: Conformation,
    /// Reused structure buffer: holds the most recently built candidate.
    structure: LoopStructure,
    /// Reused scoring workspace.
    scratch: ScoreScratch,
    /// Reused candidate torsion vector for proposals.
    cand: Torsions,
    /// Reused mutated-index buffer for the mutation move.
    mut_indices: Vec<usize>,
    ccd_us: f64,
    scoring_us: f64,
    ccd_rotations: f64,
    accepted_last: bool,
    /// Whether the last close of this member's candidate converged (the
    /// CCD non-convergence readback behind the stall guard).
    converged_last: bool,
    /// The first poisoned candidate lane the last evolution step saw, if
    /// any (feeds the [`NumericGuard`] verdict on the host).
    poison: Option<crate::health::PoisonedLane>,
}

impl Member {
    fn new(n_res: usize, max_mutations: usize, scratch: ScoreScratch) -> Member {
        Member {
            conf: Conformation::new(Torsions::zeros(n_res)),
            structure: LoopStructure::with_capacity(n_res),
            scratch,
            cand: Torsions::zeros(n_res),
            mut_indices: Vec::with_capacity(max_mutations.max(1)),
            ccd_us: 0.0,
            scoring_us: 0.0,
            ccd_rotations: 0.0,
            accepted_last: false,
            converged_last: false,
            poison: None,
        }
    }
}

/// The MOSCEM multi-scoring-functions loop sampler.
#[derive(Debug, Clone)]
pub struct MoscemSampler {
    target: LoopTarget,
    scorer: MultiScorer,
    config: SamplerConfig,
    builder: LoopBuilder,
    mutator: Mutator,
    timing: TimingModel,
}

impl MoscemSampler {
    /// Create a sampler for one target over a pre-built knowledge base,
    /// rejecting invalid configurations with a typed error.
    pub fn try_new(
        target: LoopTarget,
        kb: Arc<KnowledgeBase>,
        config: SamplerConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(MoscemSampler {
            target,
            scorer: MultiScorer::new(kb).with_burial(config.burial_objective),
            mutator: Mutator::new(config.mutation.clone()),
            config,
            builder: LoopBuilder::default(),
            timing: TimingModel::default(),
        })
    }

    /// Create a sampler for one target over a pre-built knowledge base.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`MoscemSampler::try_new`] for a `Result`.
    pub fn new(target: LoopTarget, kb: Arc<KnowledgeBase>, config: SamplerConfig) -> Self {
        Self::try_new(target, kb, config).expect("invalid sampler configuration")
    }

    /// The sampling configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// The loop target being sampled.
    pub fn target(&self) -> &LoopTarget {
        &self.target
    }

    /// Replace the timing model (e.g. to model a different device).
    pub fn with_timing_model(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Run one sampling trajectory with the configured seed.
    pub fn run(&self, executor: &Executor) -> TrajectoryResult {
        self.run_with_seed(executor, self.config.seed)
    }

    /// Run one sampling trajectory with an explicit seed (used when
    /// repeating trajectories to fill a decoy set).
    ///
    /// # Panics
    ///
    /// With default [`JobLimits`](crate::JobLimits) and
    /// [`NumericGuard`] settings this cannot fail;
    /// when the config sets limits or the guard aborts the run, the typed
    /// error surfaces as a panic here — use
    /// [`MoscemSampler::run_controlled`] to handle those errors.
    pub fn run_with_seed(&self, executor: &Executor, seed: u64) -> TrajectoryResult {
        self.run_controlled(executor, seed, &RunControls::new())
            .expect("a run without controls can only fail when JobLimits or NumericGuard abort it")
    }

    /// Run one sampling trajectory through the **per-member reference
    /// implementation**: the evolution inner loop walks members one at a
    /// time, each fused kernel doing mutation → CCD → scoring → Metropolis
    /// for one conformation before moving to the next.
    ///
    /// The production path is the staged population-batched pipeline of
    /// [`MoscemSampler::run_controlled`]; this reference is kept precisely
    /// because the per-(member, iteration) RNG stream discipline makes the
    /// two **bit-identical**, which the batched-pipeline equivalence
    /// property tests (`tests/batched_equivalence.rs`) verify against this
    /// implementation.
    pub fn run_reference_with_seed(&self, executor: &Executor, seed: u64) -> TrajectoryResult {
        self.run_reference_controlled(executor, seed, &RunControls::new())
            .expect("a run without controls can only fail when JobLimits or NumericGuard abort it")
    }

    /// [`MoscemSampler::run_reference_with_seed`] under cooperative
    /// [`RunControls`].
    fn run_reference_controlled(
        &self,
        executor: &Executor,
        seed: u64,
        controls: &RunControls,
    ) -> Result<TrajectoryResult, Error> {
        let cfg = &self.config;
        let n = cfg.population_size;
        let n_res = self.target.n_residues();
        let classes: Vec<RamaClass> = self
            .target
            .sequence
            .iter()
            .map(|aa| aa.rama_class())
            .collect();
        let factory = StreamRngFactory::new(seed);
        let launch = LaunchConfig::with_block_size(n, cfg.threads_per_block);
        let profiler = Arc::new(Profiler::new());
        profiler.set_executor(executor.capabilities());
        let work = WorkModel::for_target(&self.target);
        let closer = CcdCloser::new(self.builder, cfg.ccd);
        let spec = &self.timing.device;

        let wall_start = Instant::now();
        let limits = cfg.limits;
        let deadline = limits.deadline.map(|d| (wall_start + d, d));
        let mut stall_streak = 0usize;
        let mut component = ComponentTimes::default();
        let mut modeled_gpu = 0.0f64;
        let mut modeled_cpu = 0.0f64;
        let mut snapshots = Vec::new();
        let mut total_proposed = 0usize;
        let mut total_accepted = 0usize;

        // --- Stage the pre-calculated data onto the device (texture /
        // constant memory), as the paper does at program start. ------------
        let kb_bytes = 27 * 36 * 36 * 4 + 16 * 3 * 32 * 4;
        for _ in 0..8 {
            profiler.record_transfer(spec, TransferKind::HtoA, kb_bytes / 8);
        }
        profiler.record_transfer(spec, TransferKind::HtoA, self.target.environment.len() * 16);
        profiler.record_transfer(spec, TransferKind::HtoA, n_res * 8);
        profiler.record_transfer(spec, TransferKind::HtoD, n * 2 * n_res * 4);
        modeled_gpu += 0.0; // transfer time is accounted inside the profiler totals

        // --- Initialization kernel -----------------------------------------
        if Self::cancelled(controls) {
            return Err(Error::Cancelled {
                completed_iterations: 0,
            });
        }
        if let Some((at, limit)) = deadline {
            if Instant::now() >= at {
                return Err(Error::DeadlineExceeded {
                    limit,
                    completed_iterations: 0,
                });
            }
        }
        // Warm the per-target environment-candidate cache on the host thread
        // before the population kernels fan out.
        self.target.env_candidates();
        let mut members: Vec<Member> = (0..n)
            .map(|_| {
                let scratch = match controls.scratch_pool {
                    Some(pool) => pool.acquire(n_res),
                    None => ScoreScratch::for_loop_len(n_res),
                };
                Member::new(n_res, cfg.mutation.max_mutations, scratch)
            })
            .collect();

        let init_factory = factory.derive(0xC0);
        let rama = RamaLibrary::default();
        let init_mode = cfg.init_mode;
        let max_closure = cfg.max_closure_deviation;
        let ccd_start_index = cfg.ccd.start_index;
        executor.for_each_indexed(&mut members, |i, m| {
            let mut rng = init_factory.stream(i as u64, 0);
            sample_initial_torsions(init_mode, &classes, &rama, &mut m.conf.torsions, &mut rng);

            let t_ccd = Instant::now();
            let mut ccd = closer.close_with_scratch(
                &self.target.frame,
                &self.target.sequence,
                &mut m.conf.torsions,
                ccd_start_index,
                &mut m.structure,
            );
            // The loop-closure condition gates everything downstream; when
            // CCD stalls on a bad random start, redraw (deterministically
            // from this member's stream) rather than seeding the population
            // with an unclosed conformation.
            let mut rotations = ccd.rotations_applied;
            for _ in 0..3 {
                if ccd.final_deviation <= max_closure {
                    break;
                }
                sample_initial_torsions(init_mode, &classes, &rama, &mut m.conf.torsions, &mut rng);
                ccd = closer.close_with_scratch(
                    &self.target.frame,
                    &self.target.sequence,
                    &mut m.conf.torsions,
                    ccd_start_index,
                    &mut m.structure,
                );
                rotations += ccd.rotations_applied;
            }
            let ccd_us = t_ccd.elapsed().as_secs_f64() * 1e6;

            // CCD leaves `m.structure` built from the final torsions, so
            // scoring needs no rebuild.
            let t_score = Instant::now();
            let scores = self.scorer.evaluate_with(
                &self.target,
                &m.structure,
                &m.conf.torsions,
                &mut m.scratch,
            );
            let rmsd = self.target.rmsd_to_native(&m.structure);
            let scoring_us = t_score.elapsed().as_secs_f64() * 1e6;

            m.conf.scores = scores;
            m.conf.closure_deviation = ccd.final_deviation;
            m.conf.rmsd_to_native = rmsd;
            m.ccd_us = ccd_us;
            m.scoring_us = scoring_us;
            m.ccd_rotations = rotations as f64;
        });
        self.account_population_kernels(
            &members,
            &work,
            launch,
            n,
            &profiler,
            &mut component,
            &mut modeled_gpu,
            &mut modeled_cpu,
        );

        // Initialisation numerical health: the same sweep-and-verdict the
        // staged pipeline runs as its `[HealthSweep]` stage, applied to the
        // members' freshly scored state.
        if let Err(e) = self.reference_init_health(&mut members) {
            Self::return_scratches(&mut members, controls);
            return Err(e);
        }

        // --- Initial fitness + snapshot 0 ----------------------------------
        let mut temperature_controller = cfg.effective_temperature_schedule().controller();
        let mut temperature = temperature_controller.temperature();
        let mut schedule_rng = factory.derive(0xA7).stream(0, 0);
        let mut complex_traces: Vec<Vec<f64>> = vec![Vec::new(); cfg.n_complexes];
        let scores_snapshot: Vec<ScoreVector> = members.iter().map(|m| m.conf.scores).collect();
        let fitness = self.population_fitness(
            executor,
            &scores_snapshot,
            launch,
            &profiler,
            &mut component,
            &mut modeled_gpu,
            &mut modeled_cpu,
        );
        for (m, f) in members.iter_mut().zip(fitness.iter()) {
            m.conf.fitness = *f;
        }
        if cfg.snapshot_iterations.contains(&0) {
            snapshots.push(self.snapshot(0, &members, temperature));
        }
        if let Some(report) = controls.progress {
            report(0, cfg.iterations);
        }

        // --- MCMC iterations ------------------------------------------------
        for iter in 1..=cfg.iterations {
            if Self::cancelled(controls) {
                Self::return_scratches(&mut members, controls);
                return Err(Error::Cancelled {
                    completed_iterations: iter - 1,
                });
            }
            if let Some((at, limit)) = deadline {
                if Instant::now() >= at {
                    Self::return_scratches(&mut members, controls);
                    return Err(Error::DeadlineExceeded {
                        limit,
                        completed_iterations: iter - 1,
                    });
                }
            }
            let other_start = Instant::now();
            // Sorting (best fitness first) and stride partition into
            // complexes, exactly as in the paper's pseudo-code; both stay on
            // the host because they are a negligible share of the work.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                members[a]
                    .conf
                    .fitness
                    .partial_cmp(&members[b].conf.fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let m_complexes = cfg.n_complexes;
            let mut complex_of = vec![0usize; n];
            let mut complex_scores: Vec<Vec<ScoreVector>> = vec![Vec::new(); m_complexes];
            for (pos, &idx) in order.iter().enumerate() {
                let c = pos % m_complexes;
                complex_of[idx] = c;
                complex_scores[c].push(members[idx].conf.scores);
            }
            let complex_scores = Arc::new(complex_scores);
            let complex_of = Arc::new(complex_of);
            component.other_us += other_start.elapsed().as_secs_f64() * 1e6;

            // Evolution kernel: reproduction, CCD, scoring, Metropolis — one
            // thread per conformation, against its complex's snapshot.
            // Every stage writes into the member's persistent buffers
            // (candidate torsions, loop structure, scoring scratch), so a
            // member-iteration performs no heap allocation.
            let evo_factory = factory.derive(1);
            let mode = cfg.objective_mode;
            let temperature_now = temperature;
            executor.for_each_indexed(&mut members, |i, m| {
                let mut rng = evo_factory.stream(i as u64, iter as u64);
                let ccd_start = self.mutator.mutate_into(
                    &m.conf.torsions,
                    &classes,
                    &mut rng,
                    &mut m.cand,
                    &mut m.mut_indices,
                );

                let t_ccd = Instant::now();
                let ccd = closer.close_with_scratch(
                    &self.target.frame,
                    &self.target.sequence,
                    &mut m.cand,
                    ccd_start,
                    &mut m.structure,
                );
                let ccd_us = t_ccd.elapsed().as_secs_f64() * 1e6;

                // CCD leaves `m.structure` built from the final candidate
                // torsions; score it directly (no rebuild).
                let t_score = Instant::now();
                let cand_scores =
                    self.scorer
                        .evaluate_with(&self.target, &m.structure, &m.cand, &mut m.scratch);
                let cand_rmsd = self.target.rmsd_to_native(&m.structure);
                let scoring_us = t_score.elapsed().as_secs_f64() * 1e6;

                // Numerical health: a non-finite candidate lane never
                // reaches the Metropolis draw (NaN compares false against
                // the closure bound, so the gate alone would let it
                // through), mirroring the staged pipeline's post-score
                // health sweep.
                let finite = crate::health::member_is_finite(
                    &cand_scores,
                    m.cand.as_slice(),
                    ccd.final_deviation,
                    cand_rmsd,
                );
                // The loop-closure condition: candidates that CCD could not
                // bring back to the anchor are rejected outright (an open
                // loop scores deceptively well by drifting off the protein).
                let accept = if !finite || ccd.final_deviation > max_closure {
                    false
                } else {
                    let reference = &complex_scores[complex_of[i]];
                    let cand_fit = candidate_fitness(mode, &cand_scores, reference);
                    let curr_fit = candidate_fitness(mode, &m.conf.scores, reference);
                    if cand_fit <= curr_fit {
                        true
                    } else {
                        let p = ((curr_fit - cand_fit) / temperature_now).exp();
                        rng.gen::<f64>() < p
                    }
                };

                m.conf.proposed_moves += 1;
                if accept {
                    std::mem::swap(&mut m.conf.torsions, &mut m.cand);
                    m.conf.scores = cand_scores;
                    m.conf.closure_deviation = ccd.final_deviation;
                    m.conf.rmsd_to_native = cand_rmsd;
                    m.conf.accepted_moves += 1;
                }
                m.accepted_last = accept;
                m.ccd_us = ccd_us;
                m.scoring_us = scoring_us;
                m.ccd_rotations = ccd.rotations_applied as f64;
                m.converged_last = ccd.converged;
                m.poison = if finite {
                    None
                } else {
                    crate::health::member_poison(
                        &cand_scores,
                        m.cand.as_slice(),
                        ccd.final_deviation,
                        cand_rmsd,
                    )
                };
            });
            // Numerical-health verdict and the closure stall guard, on the
            // flags the evolution kernel recorded.
            if members.iter().any(|m| m.poison.is_some()) {
                if let Err(e) = self.reference_poison_verdict(&members, iter) {
                    Self::return_scratches(&mut members, controls);
                    return Err(e);
                }
            }
            if let Some(limit) = limits.max_closure_stall {
                if members.iter().any(|m| m.converged_last) {
                    stall_streak = 0;
                } else {
                    stall_streak += 1;
                    if stall_streak >= limit {
                        Self::return_scratches(&mut members, controls);
                        return Err(Error::Stalled {
                            streak: stall_streak,
                            limit,
                            completed_iterations: iter - 1,
                        });
                    }
                }
            }
            self.account_population_kernels(
                &members,
                &work,
                launch,
                n,
                &profiler,
                &mut component,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );
            // Reproduction + Metropolis kernels (cheap; recorded for the
            // profiler's completeness).
            self.account_simple_kernel(
                KernelKind::Reproduction,
                launch,
                n,
                cfg.mutation.max_mutations as f64 * 5.0,
                &profiler,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );
            self.account_simple_kernel(
                KernelKind::Metropolis,
                launch,
                n,
                2.0,
                &profiler,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );
            // Fitness against the complex inside the evolution kernel.
            let complex_work = 2.0 * cfg.complex_size() as f64 * cfg.active_objectives() as f64;
            self.account_simple_kernel(
                KernelKind::FitAssgComplex,
                launch,
                n,
                complex_work,
                &profiler,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );

            // Acceptance statistics and adaptive temperature.
            let other_start = Instant::now();
            let accepted_now = members.iter().filter(|m| m.accepted_last).count();
            total_accepted += accepted_now;
            total_proposed += n;
            let rate = accepted_now as f64 / n as f64;
            temperature = temperature_controller.update(rate, &mut schedule_rng);

            // Per-complex mean VDW trace for convergence diagnostics.
            let mut sums = vec![(0.0f64, 0usize); cfg.n_complexes];
            for (i, m) in members.iter().enumerate() {
                let c = complex_of[i];
                sums[c].0 += m.conf.scores.vdw();
                sums[c].1 += 1;
            }
            for (c, (sum, count)) in sums.into_iter().enumerate() {
                complex_traces[c].push(if count == 0 { 0.0 } else { sum / count as f64 });
            }

            // Per-iteration host/device traffic mirroring the paper's
            // Table II memcpy pattern.
            let conf_bytes = n * 2 * n_res * 4;
            let score_bytes = n * cfg.active_objectives() * 4;
            for _ in 0..5 {
                profiler.record_transfer(spec, TransferKind::HtoD, 64);
            }
            profiler.record_transfer(spec, TransferKind::DtoA, conf_bytes);
            profiler.record_transfer(spec, TransferKind::DtoA, score_bytes);
            for _ in 0..7 {
                profiler.record_transfer(spec, TransferKind::DtoH, score_bytes);
            }
            for _ in 0..3 {
                profiler.record_transfer(spec, TransferKind::DtoD, score_bytes);
            }
            component.other_us += other_start.elapsed().as_secs_f64() * 1e6;

            // Population-wide fitness for the next iteration's sorting.
            let scores_snapshot: Vec<ScoreVector> = members.iter().map(|m| m.conf.scores).collect();
            let fitness = self.population_fitness(
                executor,
                &scores_snapshot,
                launch,
                &profiler,
                &mut component,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );
            for (m, f) in members.iter_mut().zip(fitness.iter()) {
                m.conf.fitness = *f;
            }

            if cfg.snapshot_iterations.contains(&iter) {
                snapshots.push(self.snapshot(iter, &members, temperature));
            }
            if let Some(report) = controls.progress {
                report(iter, cfg.iterations);
            }
        }

        // Include modeled transfer time in the GPU total.
        let transfer_us: f64 = profiler
            .transfer_stats()
            .values()
            .map(|t| t.device_us)
            .sum();
        modeled_gpu += transfer_us;

        Self::return_scratches(&mut members, controls);
        let population: Vec<Conformation> = members.into_iter().map(|m| m.conf).collect();
        Ok(TrajectoryResult {
            population,
            snapshots,
            component_times: component,
            modeled_gpu_us: modeled_gpu,
            modeled_cpu_us: modeled_cpu,
            host_wall: wall_start.elapsed(),
            final_temperature: temperature,
            acceptance_rate: if total_proposed == 0 {
                0.0
            } else {
                total_accepted as f64 / total_proposed as f64
            },
            profiler,
            complex_traces,
        })
    }

    /// Run one sampling trajectory under cooperative [`RunControls`]
    /// through the **staged population-batched kernel pipeline**: all member
    /// state lives in the flat SoA [`PopulationArena`] and every iteration
    /// issues one population-wide kernel launch per stage — `mutate`
    /// ([`KernelKind::Reproduction`]), `close` ([`KernelKind::Ccd`],
    /// lockstep blocks with batched optimal-rotation inner products),
    /// `rebuild` ([`KernelKind::Rebuild`], observable readback), `score`
    /// (one launch per objective kernel), `metropolis` and `select` — via
    /// [`Executor::launch`], exactly the paper's device execution shape.
    ///
    /// Because every conformation draws all randomness from its own
    /// `(member, iteration)` stream, the staged pipeline is
    /// **bit-identical** to the per-member reference implementation
    /// ([`MoscemSampler::run_reference_with_seed`]); the equivalence is
    /// property-tested across executors and objective modes in
    /// `tests/batched_equivalence.rs`.  With empty controls this is exactly
    /// [`MoscemSampler::run_with_seed`] — the controls never touch the
    /// random streams.
    ///
    /// After the first iteration warms the arena up, a whole staged
    /// iteration performs no heap allocation (`tests/zero_alloc.rs`).
    pub fn run_controlled(
        &self,
        executor: &Executor,
        seed: u64,
        controls: &RunControls,
    ) -> Result<TrajectoryResult, Error> {
        let cfg = &self.config;
        let n = cfg.population_size;
        let n_res = self.target.n_residues();
        let classes: Vec<RamaClass> = self
            .target
            .sequence
            .iter()
            .map(|aa| aa.rama_class())
            .collect();
        let factory = StreamRngFactory::new(seed);
        let launch_cfg = LaunchConfig::with_block_size(n, cfg.threads_per_block);
        let profiler = Arc::new(Profiler::new());
        let capabilities = executor.capabilities();
        profiler.set_executor(capabilities);
        let work = WorkModel::for_target(&self.target);
        // A backend reporting wide lanes gets the explicit wide-f64 CCD and
        // VDW kernels — bit-identical to the scalar loops, so this flips
        // only the instruction mix, never the trajectory.
        let wide = capabilities.lane_width > 1;
        let closer = CcdCloser::new(self.builder, cfg.ccd).with_wide_lanes(wide);
        let scorer = self.scorer.clone().with_wide_lanes(wide);
        let spec = &self.timing.device;

        let wall_start = Instant::now();
        let limits = cfg.limits;
        let deadline = limits.deadline.map(|d| (wall_start + d, d));
        let mut stall_streak = 0usize;
        let mut component = ComponentTimes::default();
        let mut modeled_gpu = 0.0f64;
        let mut modeled_cpu = 0.0f64;
        let mut snapshots = Vec::new();
        let mut total_proposed = 0usize;
        let mut total_accepted = 0usize;

        // --- Stage the pre-calculated data onto the device (texture /
        // constant memory), as the paper does at program start. ------------
        let kb_bytes = 27 * 36 * 36 * 4 + 16 * 3 * 32 * 4;
        for _ in 0..8 {
            profiler.record_transfer(spec, TransferKind::HtoA, kb_bytes / 8);
        }
        profiler.record_transfer(spec, TransferKind::HtoA, self.target.environment.len() * 16);
        profiler.record_transfer(spec, TransferKind::HtoA, n_res * 8);
        profiler.record_transfer(spec, TransferKind::HtoD, n * 2 * n_res * 4);

        if Self::cancelled(controls) {
            return Err(Error::Cancelled {
                completed_iterations: 0,
            });
        }
        if let Some((at, limit)) = deadline {
            if Instant::now() >= at {
                return Err(Error::DeadlineExceeded {
                    limit,
                    completed_iterations: 0,
                });
            }
        }
        // Warm the per-target environment-candidate cache on the host thread
        // before the population kernels fan out, then allocate the arena —
        // the only allocations of the whole trajectory.
        self.target.env_candidates();
        let mut arena = PopulationArena::new(
            n,
            n_res,
            cfg.mutation.max_mutations,
            cfg.n_complexes,
            controls.scratch_pool,
            executor.ccd_block_width(),
        );
        let stride = arena.stride();

        // --- Initialization: staged sample/close rounds over the whole
        // population, then the rebuild/score kernels. ----------------------
        let init_factory = factory.derive(0xC0);
        let rama = RamaLibrary::default();
        let init_mode = cfg.init_mode;
        let max_closure = cfg.max_closure_deviation;

        arena.block_ccd_us.iter_mut().for_each(|t| *t = 0.0);
        for round in 0..4usize {
            // The loop-closure condition gates everything downstream; a
            // member redraws (deterministically from its own stream) while
            // CCD stalls above the bound, up to three times — the same
            // retry discipline as the reference, expressed as masked
            // population-wide rounds.
            if round > 0 && arena.cand_closure_dev.iter().all(|&d| d <= max_closure) {
                break;
            }
            {
                let slots = SharedLanes::new(&mut arena.slots);
                let rngs = SharedLanes::new(&mut arena.rngs);
                let devs = &arena.cand_closure_dev;
                let sample = executor.launch(KernelKind::Reproduction, n, |i| {
                    if round > 0 && devs[i] <= max_closure {
                        return;
                    }
                    // SAFETY: kernel i touches only member i's slot/stream.
                    let slot = unsafe { slots.item_mut(i) };
                    let rng = unsafe { rngs.item_mut(i) };
                    if round == 0 {
                        *rng = init_factory.stream(i as u64, 0);
                    }
                    sample_initial_torsions(init_mode, &classes, &rama, &mut slot.cand, rng);
                    #[cfg(feature = "fault-injection")]
                    if lms_simt::fault::take_nan() {
                        slot.cand.set_angle(0, f64::NAN);
                    }
                });
                // The reference times redraw sampling inside its CCD span;
                // mirror that attribution.
                if round == 0 {
                    component.other_us += sample.host_us();
                } else {
                    component.ccd_us += sample.host_us();
                }
            }
            self.stage_close(
                executor,
                &mut arena,
                &closer,
                if round > 0 { Some(max_closure) } else { None },
                Some(cfg.ccd.start_index),
                true,
            );
        }
        let init_ccd_us: f64 = arena.block_ccd_us.iter().sum();
        component.ccd_us += init_ccd_us;
        let mean_rotations = arena.ccd_rotations.iter().sum::<f64>() / n.max(1) as f64;
        self.record_kernel_launch(
            KernelKind::Ccd,
            launch_cfg,
            n,
            (mean_rotations + 1.0) * work.ccd_per_rotation,
            init_ccd_us,
            &profiler,
            &mut modeled_gpu,
            &mut modeled_cpu,
        );
        self.stage_rebuild_and_score(
            executor,
            &mut arena,
            &scorer,
            &work,
            launch_cfg,
            &profiler,
            &mut component,
            &mut modeled_gpu,
            &mut modeled_cpu,
        );
        // Numerical health sweep over the freshly scored candidates before
        // they become the population.
        if let Err(e) = self.stage_health(executor, &mut arena, 0, &mut component) {
            arena.release_scratches(controls.scratch_pool);
            return Err(e);
        }
        // Initialization writes the population: the closed, scored
        // candidates become the members' current state.
        arena.torsions.copy_from_slice(&arena.cand_torsions);
        arena.scores.copy_from_slice(&arena.cand_scores);
        arena.closure_dev.copy_from_slice(&arena.cand_closure_dev);
        arena.rmsd.copy_from_slice(&arena.cand_rmsd);

        // --- Initial fitness + snapshot 0 ----------------------------------
        let mut temperature_controller = cfg.effective_temperature_schedule().controller();
        let mut temperature = temperature_controller.temperature();
        let mut schedule_rng = factory.derive(0xA7).stream(0, 0);
        // `vec![v; n]` clones would drop the reserved capacity — build each
        // trace buffer explicitly so steady-state pushes never reallocate.
        let mut complex_traces: Vec<Vec<f64>> = (0..cfg.n_complexes)
            .map(|_| Vec::with_capacity(cfg.iterations))
            .collect();
        self.stage_fitness(
            executor,
            &mut arena,
            launch_cfg,
            &profiler,
            &mut component,
            &mut modeled_gpu,
            &mut modeled_cpu,
        );
        if cfg.snapshot_iterations.contains(&0) {
            snapshots.push(self.snapshot_arena(0, &arena, temperature));
        }
        if let Some(report) = controls.progress {
            report(0, cfg.iterations);
        }

        // --- MCMC iterations: one kernel launch per stage per iteration ---
        let evo_factory = factory.derive(1);
        let mode = cfg.objective_mode;
        let m_complexes = cfg.n_complexes;
        let complex_work = 2.0 * cfg.complex_size() as f64 * cfg.active_objectives() as f64;
        for iter in 1..=cfg.iterations {
            if Self::cancelled(controls) {
                arena.release_scratches(controls.scratch_pool);
                return Err(Error::Cancelled {
                    completed_iterations: iter - 1,
                });
            }
            if let Some((at, limit)) = deadline {
                if Instant::now() >= at {
                    arena.release_scratches(controls.scratch_pool);
                    return Err(Error::DeadlineExceeded {
                        limit,
                        completed_iterations: iter - 1,
                    });
                }
            }
            let other_start = Instant::now();
            // Sorting (best fitness first) and stride partition into
            // complexes stay on the host, writing the arena's reusable
            // order / CSR-partition buffers.  The unstable sort breaks
            // fitness ties by member index, which reproduces the stable
            // reference sort's permutation exactly.
            {
                let (order, fitness) = (&mut arena.order, &arena.fitness);
                order.clear();
                order.extend(0..n);
                order.sort_unstable_by(|&a, &b| {
                    fitness[a]
                        .partial_cmp(&fitness[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            for (pos, &idx) in arena.order.iter().enumerate() {
                let c = pos % m_complexes;
                arena.complex_of[idx] = c;
                arena.complex_scores[arena.complex_offsets[c] + pos / m_complexes] =
                    arena.scores[idx];
            }
            component.other_us += other_start.elapsed().as_secs_f64() * 1e6;

            // Stage 1 — mutate: seed the (member, iteration) stream, load
            // the member's torsion lane and propose a candidate.
            {
                let slots = SharedLanes::new(&mut arena.slots);
                let rngs = SharedLanes::new(&mut arena.rngs);
                let starts = SharedLanes::new(&mut arena.ccd_start);
                let cur = &arena.torsions;
                let mutate = executor.launch(KernelKind::Reproduction, n, |i| {
                    // SAFETY: kernel i touches only member i's lanes.
                    let slot = unsafe { slots.item_mut(i) };
                    let rng = unsafe { rngs.item_mut(i) };
                    *rng = evo_factory.stream(i as u64, iter as u64);
                    slot.cand.copy_from_flat(&cur[i * stride..(i + 1) * stride]);
                    let start = self.mutator.mutate_in_place(
                        &mut slot.cand,
                        &classes,
                        rng,
                        &mut slot.mut_indices,
                    );
                    *unsafe { starts.item_mut(i) } = start;
                    #[cfg(feature = "fault-injection")]
                    if lms_simt::fault::take_nan() {
                        slot.cand.set_angle(0, f64::NAN);
                    }
                });
                component.other_us += mutate.host_us();
                self.record_kernel_launch(
                    KernelKind::Reproduction,
                    launch_cfg,
                    n,
                    cfg.mutation.max_mutations as f64 * 5.0,
                    mutate.host_us(),
                    &profiler,
                    &mut modeled_gpu,
                    &mut modeled_cpu,
                );
            }

            // Stage 2 — close: lockstep CCD blocks with batched
            // optimal-rotation inner products.
            self.stage_close(executor, &mut arena, &closer, None, None, false);
            let close_us: f64 = arena.block_ccd_us.iter().sum();
            component.ccd_us += close_us;
            let mean_rotations = arena.ccd_rotations.iter().sum::<f64>() / n.max(1) as f64;
            self.record_kernel_launch(
                KernelKind::Ccd,
                launch_cfg,
                n,
                (mean_rotations + 1.0) * work.ccd_per_rotation,
                close_us,
                &profiler,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );
            // Closure stall guard: a streak of iterations in which not a
            // single member's CCD converged means the sampler is burning
            // its budget without making progress.
            if let Some(limit) = limits.max_closure_stall {
                if arena.cand_converged.iter().any(|&c| c) {
                    stall_streak = 0;
                } else {
                    stall_streak += 1;
                    if stall_streak >= limit {
                        arena.release_scratches(controls.scratch_pool);
                        return Err(Error::Stalled {
                            streak: stall_streak,
                            limit,
                            completed_iterations: iter - 1,
                        });
                    }
                }
            }

            // Stages 3 + 4 — rebuild (observable readback) and the three
            // scoring kernels, one population-wide launch each.
            self.stage_rebuild_and_score(
                executor,
                &mut arena,
                &scorer,
                &work,
                launch_cfg,
                &profiler,
                &mut component,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );

            // Numerical health sweep: poisoned candidates are quarantined
            // (force-rejected without touching the member's stream) or fail
            // the job, per the configured guard policy — before the
            // Metropolis stage can let NaN into the population.
            if let Err(e) = self.stage_health(executor, &mut arena, iter, &mut component) {
                arena.release_scratches(controls.scratch_pool);
                return Err(e);
            }

            // Stage 5 — Metropolis against the member's complex snapshot,
            // on the stream the mutate stage advanced.
            {
                let rngs = SharedLanes::new(&mut arena.rngs);
                let accepted = SharedLanes::new(&mut arena.accepted);
                let scores = &arena.scores;
                let cand_scores = &arena.cand_scores;
                let cand_dev = &arena.cand_closure_dev;
                let complex_of = &arena.complex_of;
                let complex_scores = &arena.complex_scores;
                let offsets = &arena.complex_offsets;
                let temperature_now = temperature;
                let met = executor.launch(KernelKind::Metropolis, n, |i| {
                    // Candidates that CCD could not bring back to the anchor
                    // are rejected outright (an open loop scores deceptively
                    // well by drifting off the protein).
                    let accept = if cand_dev[i] > max_closure {
                        false
                    } else {
                        let c = complex_of[i];
                        let reference = &complex_scores[offsets[c]..offsets[c + 1]];
                        let cand_fit = candidate_fitness(mode, &cand_scores[i], reference);
                        let curr_fit = candidate_fitness(mode, &scores[i], reference);
                        if cand_fit <= curr_fit {
                            true
                        } else {
                            let p = ((curr_fit - cand_fit) / temperature_now).exp();
                            // SAFETY: kernel i touches only member i's stream.
                            unsafe { rngs.item_mut(i) }.gen::<f64>() < p
                        }
                    };
                    *unsafe { accepted.item_mut(i) } = accept;
                });
                component.other_us += met.host_us();
                self.record_kernel_launch(
                    KernelKind::Metropolis,
                    launch_cfg,
                    n,
                    2.0,
                    met.host_us(),
                    &profiler,
                    &mut modeled_gpu,
                    &mut modeled_cpu,
                );
                self.record_kernel_launch(
                    KernelKind::FitAssgComplex,
                    launch_cfg,
                    n,
                    complex_work,
                    0.0,
                    &profiler,
                    &mut modeled_gpu,
                    &mut modeled_cpu,
                );
            }

            // Stage 6 — select: accepted candidates overwrite their
            // members' lanes.
            {
                let cur = SharedLanes::new(&mut arena.torsions);
                let scores = SharedLanes::new(&mut arena.scores);
                let devs = SharedLanes::new(&mut arena.closure_dev);
                let rmsds = SharedLanes::new(&mut arena.rmsd);
                let proposed = SharedLanes::new(&mut arena.proposed_moves);
                let accepted_moves = SharedLanes::new(&mut arena.accepted_moves);
                let accepted = &arena.accepted;
                let cand = &arena.cand_torsions;
                let cand_scores = &arena.cand_scores;
                let cand_dev = &arena.cand_closure_dev;
                let cand_rmsd = &arena.cand_rmsd;
                let select = executor.launch(KernelKind::Select, n, |i| {
                    // SAFETY: kernel i touches only member i's lanes.
                    *unsafe { proposed.item_mut(i) } += 1;
                    if accepted[i] {
                        unsafe { cur.lane_mut(i * stride, stride) }
                            .copy_from_slice(&cand[i * stride..(i + 1) * stride]);
                        *unsafe { scores.item_mut(i) } = cand_scores[i];
                        *unsafe { devs.item_mut(i) } = cand_dev[i];
                        *unsafe { rmsds.item_mut(i) } = cand_rmsd[i];
                        *unsafe { accepted_moves.item_mut(i) } += 1;
                    }
                });
                component.other_us += select.host_us();
                self.record_kernel_launch(
                    KernelKind::Select,
                    launch_cfg,
                    n,
                    stride as f64,
                    select.host_us(),
                    &profiler,
                    &mut modeled_gpu,
                    &mut modeled_cpu,
                );
            }

            // Acceptance statistics and adaptive temperature.
            let other_start = Instant::now();
            let accepted_now = arena.accepted.iter().filter(|&&a| a).count();
            total_accepted += accepted_now;
            total_proposed += n;
            let rate = accepted_now as f64 / n as f64;
            temperature = temperature_controller.update(rate, &mut schedule_rng);

            // Per-complex mean VDW trace for convergence diagnostics.
            for s in arena.trace_sums.iter_mut() {
                *s = (0.0, 0);
            }
            for i in 0..n {
                let c = arena.complex_of[i];
                arena.trace_sums[c].0 += arena.scores[i].vdw();
                arena.trace_sums[c].1 += 1;
            }
            for (c, &(sum, count)) in arena.trace_sums.iter().enumerate() {
                complex_traces[c].push(if count == 0 { 0.0 } else { sum / count as f64 });
            }

            // Per-iteration host/device traffic mirroring the paper's
            // Table II memcpy pattern.
            let conf_bytes = n * 2 * n_res * 4;
            let score_bytes = n * cfg.active_objectives() * 4;
            for _ in 0..5 {
                profiler.record_transfer(spec, TransferKind::HtoD, 64);
            }
            profiler.record_transfer(spec, TransferKind::DtoA, conf_bytes);
            profiler.record_transfer(spec, TransferKind::DtoA, score_bytes);
            for _ in 0..7 {
                profiler.record_transfer(spec, TransferKind::DtoH, score_bytes);
            }
            for _ in 0..3 {
                profiler.record_transfer(spec, TransferKind::DtoD, score_bytes);
            }
            component.other_us += other_start.elapsed().as_secs_f64() * 1e6;

            // Population-wide fitness for the next iteration's sorting.
            self.stage_fitness(
                executor,
                &mut arena,
                launch_cfg,
                &profiler,
                &mut component,
                &mut modeled_gpu,
                &mut modeled_cpu,
            );

            if cfg.snapshot_iterations.contains(&iter) {
                snapshots.push(self.snapshot_arena(iter, &arena, temperature));
            }
            if let Some(report) = controls.progress {
                report(iter, cfg.iterations);
            }
        }

        // Include modeled transfer time in the GPU total.
        let transfer_us: f64 = profiler
            .transfer_stats()
            .values()
            .map(|t| t.device_us)
            .sum();
        modeled_gpu += transfer_us;

        arena.release_scratches(controls.scratch_pool);
        Ok(TrajectoryResult {
            population: arena.into_population(),
            snapshots,
            component_times: component,
            modeled_gpu_us: modeled_gpu,
            modeled_cpu_us: modeled_cpu,
            host_wall: wall_start.elapsed(),
            final_temperature: temperature,
            acceptance_rate: if total_proposed == 0 {
                0.0
            } else {
                total_accepted as f64 / total_proposed as f64
            },
            profiler,
            complex_traces,
        })
    }

    /// The staged `close` kernel: one launch over the arena's lockstep
    /// blocks, each block closing up to
    /// [`ccd_block_width`](PopulationArena::ccd_block_width) members
    /// together (the executor backend's reported width) with batched
    /// optimal-rotation inner products.
    ///
    /// `mask_above` restricts the launch to members whose candidate closure
    /// deviation still exceeds the bound (the init retry rounds);
    /// `start_override` forces one CCD start index for every lane (init)
    /// instead of the per-member mutated index; `accumulate` adds rotations
    /// and block times onto the arena's counters instead of overwriting
    /// them (init rounds share one recorded kernel).
    fn stage_close(
        &self,
        executor: &Executor,
        arena: &mut PopulationArena,
        closer: &CcdCloser,
        mask_above: Option<f64>,
        start_override: Option<usize>,
        accumulate: bool,
    ) {
        let n = arena.n_members();
        let n_blocks = arena.n_blocks();
        let width = arena.ccd_block_width();
        debug_assert!(width <= MAX_CCD_BLOCK_WIDTH);
        if !accumulate {
            arena.block_ccd_us.iter_mut().for_each(|t| *t = 0.0);
        }
        let slots = SharedLanes::new(&mut arena.slots);
        let blocks = SharedLanes::new(&mut arena.ccd_blocks);
        let block_us = SharedLanes::new(&mut arena.block_ccd_us);
        let devs = SharedLanes::new(&mut arena.cand_closure_dev);
        let rotations = SharedLanes::new(&mut arena.ccd_rotations);
        let converged = SharedLanes::new(&mut arena.cand_converged);
        let starts = &arena.ccd_start;
        let _ = executor.launch(KernelKind::Ccd, n_blocks, |b| {
            let t = Instant::now();
            let lo = b * width;
            let hi = (lo + width).min(n);
            // SAFETY: kernel b touches only block b's scratch and the
            // slots/lanes of members [lo, hi).
            let scratch = unsafe { blocks.item_mut(b) };
            // Stack staging is sized for the widest configurable block
            // (ExecutorConfig validation caps `width` at
            // MAX_CCD_BLOCK_WIDTH); only the first `hi - lo` entries are
            // ever touched.
            let mut store: [MaybeUninit<CcdLane>; MAX_CCD_BLOCK_WIDTH] =
                [const { MaybeUninit::uninit() }; MAX_CCD_BLOCK_WIDTH];
            let mut ids = [0usize; MAX_CCD_BLOCK_WIDTH];
            let mut count = 0usize;
            // Raw indexing is the deliberate kernel idiom here: `i` is the
            // device thread id addressing several parallel SoA buffers.
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                if let Some(bound) = mask_above {
                    if *unsafe { devs.item_mut(i) } <= bound {
                        continue;
                    }
                }
                let slot = unsafe { slots.item_mut(i) };
                let MemberSlot {
                    cand, structure, ..
                } = slot;
                store[count] = MaybeUninit::new(CcdLane {
                    torsions: cand,
                    structure,
                    start_index: start_override.unwrap_or(starts[i]),
                });
                ids[count] = i;
                count += 1;
            }
            // SAFETY: the first `count` entries are initialised, and
            // `CcdLane` holds only references (no Drop obligations).
            let lanes = unsafe {
                std::slice::from_raw_parts_mut(store.as_mut_ptr().cast::<CcdLane>(), count)
            };
            closer.close_batch(&self.target.frame, &self.target.sequence, lanes, scratch);
            for (j, &i) in ids[..count].iter().enumerate() {
                let res = scratch.results()[j];
                *unsafe { devs.item_mut(i) } = res.final_deviation;
                *unsafe { converged.item_mut(i) } = res.converged;
                let r = unsafe { rotations.item_mut(i) };
                if accumulate {
                    *r += res.rotations_applied as f64;
                } else {
                    *r = res.rotations_applied as f64;
                }
            }
            #[cfg(feature = "fault-injection")]
            if lms_simt::fault::take_nan() {
                *unsafe { devs.item_mut(lo) } = f64::NAN;
            }
            *unsafe { block_us.item_mut(b) } += t.elapsed().as_secs_f64() * 1e6;
        });
    }

    /// The staged `rebuild` and `score` kernels: observable readback (RMSD
    /// to native, candidate-lane writeback) followed by one population-wide
    /// launch per objective kernel, each recorded with its own measured
    /// host time.  The VDW kernel stages the shared Cα table (and, with the
    /// burial objective on, the contact counts) its successors consume from
    /// the member's scratch.
    #[allow(clippy::too_many_arguments)]
    fn stage_rebuild_and_score(
        &self,
        executor: &Executor,
        arena: &mut PopulationArena,
        scorer: &MultiScorer,
        work: &WorkModel,
        launch_cfg: LaunchConfig,
        profiler: &Profiler,
        component: &mut ComponentTimes,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) {
        let n = arena.n_members();
        let stride = arena.stride();
        // Rebuild: RMSD observable + candidate torsion lane readback.
        {
            let slots = SharedLanes::new(&mut arena.slots);
            let rmsds = SharedLanes::new(&mut arena.cand_rmsd);
            let cand_flat = SharedLanes::new(&mut arena.cand_torsions);
            let times = SharedLanes::new(&mut arena.stage_us);
            let _ = executor.launch(KernelKind::Rebuild, n, |i| {
                let t = Instant::now();
                // SAFETY: kernel i touches only member i's slot and lanes.
                let slot = unsafe { slots.item_mut(i) };
                *unsafe { rmsds.item_mut(i) } = self.target.rmsd_to_native(&slot.structure);
                unsafe { cand_flat.lane_mut(i * stride, stride) }
                    .copy_from_slice(slot.cand.as_slice());
                #[cfg(feature = "fault-injection")]
                if lms_simt::fault::take_nan() {
                    *unsafe { rmsds.item_mut(i) } = f64::NAN;
                }
                *unsafe { times.item_mut(i) } = t.elapsed().as_secs_f64() * 1e6;
            });
        }
        let rebuild_us: f64 = arena.stage_us.iter().sum();
        component.scoring_us += rebuild_us;
        self.record_kernel_launch(
            KernelKind::Rebuild,
            launch_cfg,
            n,
            (4 * self.target.n_residues()) as f64,
            rebuild_us,
            profiler,
            modeled_gpu,
            modeled_cpu,
        );

        // Score: one launch per objective kernel in canonical order.
        for (kind, per_thread_work) in [
            (KernelKind::EvalVdw, work.vdw_work),
            (KernelKind::EvalDist, work.dist_work),
            (KernelKind::EvalTrip, work.trip_work),
        ] {
            {
                let slots = SharedLanes::new(&mut arena.slots);
                let outs = SharedLanes::new(&mut arena.cand_scores);
                let times = SharedLanes::new(&mut arena.stage_us);
                let _ = executor.launch(kind, n, |i| {
                    let t = Instant::now();
                    // SAFETY: kernel i touches only member i's slot/lanes.
                    let slot = unsafe { slots.item_mut(i) };
                    let MemberSlot {
                        structure,
                        scratch,
                        cand,
                        ..
                    } = slot;
                    let sv = unsafe { outs.item_mut(i) };
                    let mut a = sv.as_array();
                    match kind {
                        KernelKind::EvalVdw => {
                            let (vdw, burial) = scorer.vdw_pass(&self.target, structure, scratch);
                            a[0] = vdw;
                            a[3] = burial;
                        }
                        KernelKind::EvalDist => {
                            a[1] = scorer.dist_pass(&self.target, structure, scratch);
                        }
                        KernelKind::EvalTrip => {
                            a[2] = scorer.triplet_pass(&self.target, structure, cand, scratch);
                        }
                        _ => unreachable!("score stage launches only Eval kernels"),
                    }
                    #[cfg(feature = "fault-injection")]
                    if lms_simt::fault::take_nan() {
                        match kind {
                            KernelKind::EvalVdw => a[0] = f64::NAN,
                            KernelKind::EvalDist => a[1] = f64::NAN,
                            _ => a[2] = f64::NAN,
                        }
                    }
                    *sv = ScoreVector::from_array(a);
                    *unsafe { times.item_mut(i) } = t.elapsed().as_secs_f64() * 1e6;
                });
            }
            let kernel_us: f64 = arena.stage_us.iter().sum();
            component.scoring_us += kernel_us;
            self.record_kernel_launch(
                kind,
                launch_cfg,
                n,
                per_thread_work,
                kernel_us,
                profiler,
                modeled_gpu,
                modeled_cpu,
            );
        }
    }

    /// Population-wide fitness assignment (Eq. 1) over the arena's score
    /// lanes, executed as two data-parallel passes of the
    /// `[FitAssg] within Population` kernel writing the arena's
    /// strength/front/fitness buffers in place.
    #[allow(clippy::too_many_arguments)]
    fn stage_fitness(
        &self,
        executor: &Executor,
        arena: &mut PopulationArena,
        launch_cfg: LaunchConfig,
        profiler: &Profiler,
        component: &mut ComponentTimes,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) {
        let n = arena.n_members();
        let start = Instant::now();
        match self.config.objective_mode {
            ObjectiveMode::MultiScoring => {
                // Pass 1: strength and non-dominated flag per member.
                {
                    let scores = &arena.scores;
                    let strength = SharedLanes::new(&mut arena.strength);
                    let front = SharedLanes::new(&mut arena.front);
                    let _ = executor.launch(KernelKind::FitAssgPopulation, n, |i| {
                        let si = &scores[i];
                        let dominated = scores.iter().filter(|sj| si.dominates(sj)).count();
                        let is_nd = !scores
                            .iter()
                            .enumerate()
                            .any(|(j, sj)| j != i && sj.dominates(si));
                        // SAFETY: kernel i touches only member i's slots.
                        *unsafe { strength.item_mut(i) } = dominated as f64 / n as f64;
                        *unsafe { front.item_mut(i) } = is_nd;
                    });
                }
                // Pass 2: Eq. 1.
                {
                    let scores = &arena.scores;
                    let strength = &arena.strength;
                    let front = &arena.front;
                    let fitness = SharedLanes::new(&mut arena.fitness);
                    let _ = executor.launch(KernelKind::FitAssgPopulation, n, |i| {
                        let si = &scores[i];
                        let value = if front[i] {
                            strength[i]
                        } else {
                            1.0 + scores
                                .iter()
                                .enumerate()
                                .filter(|(j, sj)| front[*j] && sj.dominates(si))
                                .map(|(j, _)| strength[j])
                                .sum::<f64>()
                        };
                        // SAFETY: kernel i touches only member i's slot.
                        *unsafe { fitness.item_mut(i) } = value;
                    });
                }
            }
            ObjectiveMode::Single(obj) => {
                let scores = &arena.scores;
                let fitness = SharedLanes::new(&mut arena.fitness);
                let _ = executor.launch(KernelKind::FitAssgPopulation, n, |i| {
                    *unsafe { fitness.item_mut(i) } = obj.value(&scores[i]);
                });
            }
            ObjectiveMode::WeightedSum(w) => {
                let scores = &arena.scores;
                let fitness = SharedLanes::new(&mut arena.fitness);
                let _ = executor.launch(KernelKind::FitAssgPopulation, n, |i| {
                    *unsafe { fitness.item_mut(i) } = weighted_sum(&w, &scores[i]);
                });
            }
        }
        let host_us = start.elapsed().as_secs_f64() * 1e6;
        component.fitness_us += host_us;
        let work_per_thread = 2.0 * n as f64 * self.config.active_objectives() as f64;
        self.record_kernel_launch(
            KernelKind::FitAssgPopulation,
            launch_cfg,
            n,
            work_per_thread,
            host_us,
            profiler,
            modeled_gpu,
            modeled_cpu,
        );
    }

    /// The staged `health` kernel: one population-wide `[HealthSweep]`
    /// launch classifying every member's candidate lanes as finite or
    /// poisoned, followed by the host-side [`NumericGuard`] policy verdict
    /// ([`MoscemSampler::quarantine_or_fail`]).
    ///
    /// The sweep is a robustness stage of this implementation, not a paper
    /// task: it is deliberately *not* recorded into the profiler or the
    /// modeled GPU/CPU totals, so the staged pipeline's modeled timings
    /// stay comparable to the fused reference's.  Its measured host time
    /// lands in [`ComponentTimes::other_us`], and the CI perf gate bounds
    /// it below 3% of a staged iteration.
    fn stage_health(
        &self,
        executor: &Executor,
        arena: &mut PopulationArena,
        iteration: usize,
        component: &mut ComponentTimes,
    ) -> Result<(), Error> {
        let n = arena.n_members();
        let stride = arena.stride();
        let start = Instant::now();
        {
            let healthy = SharedLanes::new(&mut arena.healthy);
            let scores = &arena.cand_scores;
            let torsions = &arena.cand_torsions;
            let devs = &arena.cand_closure_dev;
            let rmsds = &arena.cand_rmsd;
            let _ = executor.launch(KernelKind::HealthSweep, n, |i| {
                // SAFETY: kernel i touches only member i's verdict slot.
                *unsafe { healthy.item_mut(i) } = crate::health::member_is_finite(
                    &scores[i],
                    &torsions[i * stride..(i + 1) * stride],
                    devs[i],
                    rmsds[i],
                );
            });
        }
        component.other_us += start.elapsed().as_secs_f64() * 1e6;
        if arena.healthy.iter().all(|&h| h) {
            return Ok(());
        }
        self.quarantine_or_fail(arena, iteration)
    }

    /// The [`NumericGuard`] verdict on a health sweep that flagged at least
    /// one poisoned member: fail the job with a typed
    /// [`Error::NumericalFault`], or quarantine the poisoned members and
    /// keep sampling.  A fully poisoned population fails regardless of the
    /// policy — there is no sound state left to continue from.
    fn quarantine_or_fail(
        &self,
        arena: &mut PopulationArena,
        iteration: usize,
    ) -> Result<(), Error> {
        let first_bad = arena
            .healthy
            .iter()
            .position(|&h| !h)
            .expect("caller flagged at least one poisoned member");
        let donor = arena.healthy.iter().position(|&h| h);
        if matches!(self.config.numeric_guard, NumericGuard::Fail) || donor.is_none() {
            return Err(self.numeric_fault(arena, first_bad, iteration));
        }
        let stride = arena.stride();
        if iteration == 0 {
            // Initialisation has no current state to fall back on: re-seed
            // each poisoned member's candidate lanes from the first healthy
            // donor before the candidates become the population.
            let donor = donor.expect("guard handled the all-poisoned case");
            for i in 0..arena.n_members() {
                if arena.healthy[i] {
                    continue;
                }
                arena
                    .cand_torsions
                    .copy_within(donor * stride..(donor + 1) * stride, i * stride);
                arena.cand_scores[i] = arena.cand_scores[donor];
                arena.cand_closure_dev[i] = arena.cand_closure_dev[donor];
                arena.cand_rmsd[i] = arena.cand_rmsd[donor];
                arena.healthy[i] = true;
            }
        } else {
            // Mid-run, quarantine is one write: an infinite closure
            // deviation makes the Metropolis gate reject the candidate
            // *without drawing from the member's stream*, so the member
            // keeps its last sound state and the trajectory's random
            // streams — hence same-seed bit-identity — are untouched.
            for i in 0..arena.n_members() {
                if !arena.healthy[i] {
                    arena.cand_closure_dev[i] = f64::INFINITY;
                    arena.healthy[i] = true;
                }
            }
        }
        Ok(())
    }

    /// Build the typed [`Error::NumericalFault`] naming the poisoned
    /// member, the iteration and (when the poison sat in a score slot) the
    /// offending objective.
    fn numeric_fault(&self, arena: &PopulationArena, member: usize, iteration: usize) -> Error {
        let stride = arena.stride();
        let poison = crate::health::member_poison(
            &arena.cand_scores[member],
            &arena.cand_torsions[member * stride..(member + 1) * stride],
            arena.cand_closure_dev[member],
            arena.cand_rmsd[member],
        );
        Error::NumericalFault {
            member,
            iteration,
            objective: poison.and_then(|p| p.objective()),
        }
    }

    /// Initialisation-round health check of the per-member reference
    /// implementation: the same classification and [`NumericGuard`] verdict
    /// as the staged `[HealthSweep]` stage, applied to the members' freshly
    /// initialised state.
    fn reference_init_health(&self, members: &mut [Member]) -> Result<(), Error> {
        fn poison_of(m: &Member) -> Option<crate::health::PoisonedLane> {
            crate::health::member_poison(
                &m.conf.scores,
                m.conf.torsions.as_slice(),
                m.conf.closure_deviation,
                m.conf.rmsd_to_native,
            )
        }
        let Some(first_bad) = members.iter().position(|m| poison_of(m).is_some()) else {
            return Ok(());
        };
        let donor = members.iter().position(|m| poison_of(m).is_none());
        let Some(donor) =
            donor.filter(|_| matches!(self.config.numeric_guard, NumericGuard::Quarantine))
        else {
            return Err(Error::NumericalFault {
                member: first_bad,
                iteration: 0,
                objective: poison_of(&members[first_bad]).and_then(|p| p.objective()),
            });
        };
        let donor_conf = members[donor].conf.clone();
        for m in members.iter_mut() {
            if poison_of(m).is_some() {
                m.conf
                    .torsions
                    .copy_from_flat(donor_conf.torsions.as_slice());
                m.conf.scores = donor_conf.scores;
                m.conf.closure_deviation = donor_conf.closure_deviation;
                m.conf.rmsd_to_native = donor_conf.rmsd_to_native;
            }
        }
        Ok(())
    }

    /// Mid-run [`NumericGuard`] verdict of the per-member reference
    /// implementation.  The fused evolution kernel already force-rejected
    /// every poisoned candidate (the reference-path form of quarantine);
    /// what is left is failing the job when the policy is `Fail` or when
    /// the whole population proposed poison.
    fn reference_poison_verdict(&self, members: &[Member], iteration: usize) -> Result<(), Error> {
        let Some(first_bad) = members.iter().position(|m| m.poison.is_some()) else {
            return Ok(());
        };
        let all_poisoned = members.iter().all(|m| m.poison.is_some());
        if matches!(self.config.numeric_guard, NumericGuard::Fail) || all_poisoned {
            return Err(Error::NumericalFault {
                member: first_bad,
                iteration,
                objective: members[first_bad].poison.and_then(|p| p.objective()),
            });
        }
        Ok(())
    }

    /// Record one staged kernel launch: modeled device/CPU time from the
    /// work model plus the measured host time, keeping the per-kernel
    /// [`Profiler`] rows of the staged pipeline as honest as the fused
    /// reference's.
    #[allow(clippy::too_many_arguments)]
    fn record_kernel_launch(
        &self,
        kind: KernelKind,
        launch_cfg: LaunchConfig,
        population: usize,
        per_thread_work: f64,
        host_us: f64,
        profiler: &Profiler,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) {
        let occ = launch_cfg.occupancy(&self.timing.device, kind);
        let gpu_us = self
            .timing
            .kernel_time_us(kind, launch_cfg, per_thread_work);
        let cpu_us = self.timing.cpu_time_us(kind, population, per_thread_work);
        profiler.record_kernel(
            kind,
            gpu_us,
            host_us,
            per_thread_work * population as f64,
            occ,
        );
        *modeled_gpu += gpu_us;
        *modeled_cpu += cpu_us;
    }

    /// [`MoscemSampler::snapshot`] over the arena's SoA lanes.
    fn snapshot_arena(
        &self,
        iteration: usize,
        arena: &PopulationArena,
        temperature: f64,
    ) -> IterationSnapshot {
        let nd = non_dominated_indices(&arena.scores);
        let front: Vec<(ScoreVector, f64)> = nd
            .iter()
            .map(|&i| (arena.scores[i], arena.rmsd[i]))
            .collect();
        let best_rmsd = arena.rmsd.iter().copied().fold(f64::INFINITY, f64::min);
        IterationSnapshot {
            iteration,
            non_dominated_count: nd.len(),
            front,
            best_rmsd,
            temperature,
        }
    }

    /// Whether the controls' cancel flag is raised.
    fn cancelled(controls: &RunControls) -> bool {
        controls
            .cancel
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Hand every member's scoring scratch back to the controls' pool (a
    /// no-op without one); called on every exit path of a controlled run.
    fn return_scratches(members: &mut [Member], controls: &RunControls) {
        if let Some(pool) = controls.scratch_pool {
            pool.release_all(members.iter_mut().map(|m| std::mem::take(&mut m.scratch)));
        }
    }

    /// Run repeated trajectories (fresh seed each time) harvesting distinct
    /// non-dominated decoys until the set reaches `target_decoys` or
    /// `max_trajectories` have been run — the paper's decoy-production
    /// protocol.
    pub fn produce_decoys(
        &self,
        executor: &Executor,
        target_decoys: usize,
        max_trajectories: usize,
    ) -> DecoyProduction {
        let mut decoys = DecoySet::new(self.config.distinct_threshold_deg)
            .with_max_closure_deviation(self.config.max_closure_deviation);
        let mut trajectories = Vec::new();
        let mut t = 0usize;
        while decoys.len() < target_decoys && t < max_trajectories {
            let seed = StreamRngFactory::new(self.config.seed)
                .derive(t as u64 + 1)
                .master_seed();
            let result = self.run_with_seed(executor, seed);
            result.harvest_into(&mut decoys, t);
            trajectories.push(result);
            t += 1;
        }
        DecoyProduction {
            decoys,
            trajectories_run: t,
            trajectories,
        }
    }

    fn snapshot(
        &self,
        iteration: usize,
        members: &[Member],
        temperature: f64,
    ) -> IterationSnapshot {
        let scores: Vec<ScoreVector> = members.iter().map(|m| m.conf.scores).collect();
        let nd = non_dominated_indices(&scores);
        let front: Vec<(ScoreVector, f64)> = nd
            .iter()
            .map(|&i| (members[i].conf.scores, members[i].conf.rmsd_to_native))
            .collect();
        let best_rmsd = members
            .iter()
            .map(|m| m.conf.rmsd_to_native)
            .fold(f64::INFINITY, f64::min);
        IterationSnapshot {
            iteration,
            non_dominated_count: nd.len(),
            front,
            best_rmsd,
            temperature,
        }
    }

    /// Population-wide fitness assignment (Eq. 1), executed as two passes of
    /// a data-parallel kernel and recorded as the paper's
    /// `[FitAssg] within Population` kernel.
    #[allow(clippy::too_many_arguments)]
    fn population_fitness(
        &self,
        executor: &Executor,
        scores: &[ScoreVector],
        launch: LaunchConfig,
        profiler: &Profiler,
        component: &mut ComponentTimes,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) -> Vec<f64> {
        let n = scores.len();
        let mode = self.config.objective_mode;
        let start = Instant::now();
        let fitness = match mode {
            ObjectiveMode::MultiScoring => {
                // Pass 1: strength and non-dominated flag per member.
                let (pass1, _) = executor.map_indexed(scores, |i, si| {
                    let dominated = scores.iter().filter(|sj| si.dominates(sj)).count();
                    let is_nd = !scores
                        .iter()
                        .enumerate()
                        .any(|(j, sj)| j != i && sj.dominates(si));
                    (dominated as f64 / n as f64, is_nd)
                });
                // Pass 2: Eq. 1.
                let pass1 = Arc::new(pass1);
                let p1 = Arc::clone(&pass1);
                let (fitness, _) = executor.map_indexed(scores, move |i, si| {
                    if p1[i].1 {
                        p1[i].0
                    } else {
                        1.0 + scores
                            .iter()
                            .enumerate()
                            .filter(|(j, sj)| p1[*j].1 && sj.dominates(si))
                            .map(|(j, _)| p1[j].0)
                            .sum::<f64>()
                    }
                });
                fitness
            }
            ObjectiveMode::Single(obj) => scores.iter().map(|s| obj.value(s)).collect(),
            ObjectiveMode::WeightedSum(w) => scores.iter().map(|s| weighted_sum(&w, s)).collect(),
        };
        let host_us = start.elapsed().as_secs_f64() * 1e6;
        component.fitness_us += host_us;

        let work_per_thread = 2.0 * n as f64 * self.config.active_objectives() as f64;
        let occ = launch.occupancy(&self.timing.device, KernelKind::FitAssgPopulation);
        let gpu_us =
            self.timing
                .kernel_time_us(KernelKind::FitAssgPopulation, launch, work_per_thread);
        let cpu_us = self
            .timing
            .cpu_time_us(KernelKind::FitAssgPopulation, n, work_per_thread);
        profiler.record_kernel(
            KernelKind::FitAssgPopulation,
            gpu_us,
            host_us,
            work_per_thread * n as f64,
            occ,
        );
        *modeled_gpu += gpu_us;
        *modeled_cpu += cpu_us;
        fitness
    }

    /// Record the CCD and the three scoring kernels for one population-wide
    /// launch, using the members' measured times and the work model.
    #[allow(clippy::too_many_arguments)]
    fn account_population_kernels(
        &self,
        members: &[Member],
        work: &WorkModel,
        launch: LaunchConfig,
        population: usize,
        profiler: &Profiler,
        component: &mut ComponentTimes,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) {
        let n = population.max(1);
        let ccd_host_us: f64 = members.iter().map(|m| m.ccd_us).sum();
        let scoring_host_us: f64 = members.iter().map(|m| m.scoring_us).sum();
        component.ccd_us += ccd_host_us;
        component.scoring_us += scoring_host_us;

        let mean_rotations: f64 = members.iter().map(|m| m.ccd_rotations).sum::<f64>() / n as f64;
        let ccd_work = (mean_rotations + 1.0) * work.ccd_per_rotation;

        // Split the measured scoring time across the three evaluation
        // kernels in proportion to their modeled work so the host columns of
        // Table II stay meaningful.
        let eval_total_work = work.dist_work + work.vdw_work + work.trip_work;
        let kernels: [(KernelKind, f64); 4] = [
            (KernelKind::Ccd, ccd_work),
            (KernelKind::EvalDist, work.dist_work),
            (KernelKind::EvalVdw, work.vdw_work),
            (KernelKind::EvalTrip, work.trip_work),
        ];
        for (kind, per_thread_work) in kernels {
            let occ = launch.occupancy(&self.timing.device, kind);
            let gpu_us = self.timing.kernel_time_us(kind, launch, per_thread_work);
            let cpu_us = self.timing.cpu_time_us(kind, n, per_thread_work);
            let host_us = match kind {
                KernelKind::Ccd => ccd_host_us,
                _ => scoring_host_us * per_thread_work / eval_total_work.max(1e-12),
            };
            profiler.record_kernel(kind, gpu_us, host_us, per_thread_work * n as f64, occ);
            *modeled_gpu += gpu_us;
            *modeled_cpu += cpu_us;
        }
    }

    /// Record one lightweight kernel launch that has no separately measured
    /// host time.
    #[allow(clippy::too_many_arguments)]
    fn account_simple_kernel(
        &self,
        kind: KernelKind,
        launch: LaunchConfig,
        population: usize,
        work_per_thread: f64,
        profiler: &Profiler,
        modeled_gpu: &mut f64,
        modeled_cpu: &mut f64,
    ) {
        let occ = launch.occupancy(&self.timing.device, kind);
        let gpu_us = self.timing.kernel_time_us(kind, launch, work_per_thread);
        let cpu_us = self.timing.cpu_time_us(kind, population, work_per_thread);
        profiler.record_kernel(kind, gpu_us, 0.0, work_per_thread * population as f64, occ);
        *modeled_gpu += gpu_us;
        *modeled_cpu += cpu_us;
    }
}

/// Draw one member's initial torsions under the configured init mode.
/// Shared by the per-member reference and the staged pipeline's init
/// kernel: bit-identity between the two depends on identical draw
/// sequences, so there is exactly one sampling implementation to drift.
fn sample_initial_torsions<R: Rng + ?Sized>(
    init_mode: InitMode,
    classes: &[RamaClass],
    rama: &RamaLibrary,
    torsions: &mut Torsions,
    rng: &mut R,
) {
    match init_mode {
        InitMode::UniformRandom => {
            for k in 0..torsions.n_angles() {
                torsions.set_angle(k, random_torsion(rng));
            }
        }
        InitMode::Ramachandran => {
            for (r, &class) in classes.iter().enumerate() {
                let (phi, psi) = rama.model(class).sample(rng);
                torsions.set_phi(r, phi);
                torsions.set_psi(r, psi);
            }
        }
    }
}

/// Fixed weighted sum over all objective slots (left-to-right accumulation,
/// so the value is deterministic across call sites).
fn weighted_sum(w: &[f64; lms_scoring::NUM_OBJECTIVES], s: &ScoreVector) -> f64 {
    let a = s.as_array();
    let mut total = w[0] * a[0];
    for i in 1..lms_scoring::NUM_OBJECTIVES {
        total += w[i] * a[i];
    }
    total
}

/// Fitness of a candidate against a reference set under the configured
/// objective handling.
fn candidate_fitness(mode: ObjectiveMode, scores: &ScoreVector, reference: &[ScoreVector]) -> f64 {
    match mode {
        ObjectiveMode::MultiScoring => fitness_against(scores, reference),
        ObjectiveMode::Single(obj) => obj.value(scores),
        ObjectiveMode::WeightedSum(w) => weighted_sum(&w, scores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_protein::BenchmarkLibrary;
    use lms_scoring::{KnowledgeBaseConfig, Objective};

    fn fast_kb() -> Arc<KnowledgeBase> {
        KnowledgeBase::build(KnowledgeBaseConfig::fast())
    }

    fn scalar() -> Executor {
        lms_simt::ExecutorConfig::scalar()
            .build()
            .expect("valid config")
    }

    fn parallel() -> Executor {
        lms_simt::ExecutorConfig::parallel()
            .build()
            .expect("valid config")
    }

    fn small_sampler(name: &str, cfg: SamplerConfig) -> MoscemSampler {
        let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
        MoscemSampler::new(target, fast_kb(), cfg)
    }

    #[test]
    fn trajectory_produces_closed_scored_population() {
        let cfg = SamplerConfig {
            population_size: 24,
            n_complexes: 2,
            iterations: 3,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1cex", cfg);
        let result = sampler.run(&scalar());
        assert_eq!(result.population.len(), 24);
        for c in &result.population {
            assert!(c.scores.is_finite());
            assert!(c.closure_deviation.is_finite());
            assert!(
                c.closure_deviation <= 1.5,
                "population member far from closure: {}",
                c.closure_deviation
            );
            assert!(c.rmsd_to_native.is_finite());
            assert!(c.proposed_moves >= 3);
        }
        assert!(result.non_dominated_count() >= 1);
        assert!(result.best_rmsd().is_finite());
        assert!(result.acceptance_rate >= 0.0 && result.acceptance_rate <= 1.0);
    }

    #[test]
    fn scalar_and_parallel_executors_agree_exactly() {
        let cfg = SamplerConfig {
            population_size: 16,
            n_complexes: 2,
            iterations: 2,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("5pti", cfg);
        let a = sampler.run(&scalar());
        let b = sampler.run(&parallel());
        assert_eq!(a.population.len(), b.population.len());
        for (x, y) in a.population.iter().zip(b.population.iter()) {
            assert_eq!(
                x.torsions, y.torsions,
                "executor changed the sampled trajectory"
            );
            assert_eq!(x.scores, y.scores);
            assert_eq!(x.accepted_moves, y.accepted_moves);
        }
        assert_eq!(a.final_temperature, b.final_temperature);
        assert_eq!(a.acceptance_rate, b.acceptance_rate);
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let cfg = SamplerConfig {
            population_size: 12,
            n_complexes: 2,
            iterations: 2,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("3pte", cfg);
        let a = sampler.run_with_seed(&scalar(), 1);
        let b = sampler.run_with_seed(&scalar(), 2);
        assert_ne!(
            a.population.iter().map(|c| c.scores).collect::<Vec<_>>(),
            b.population.iter().map(|c| c.scores).collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshots_are_recorded_at_requested_iterations() {
        let cfg = SamplerConfig {
            population_size: 16,
            n_complexes: 2,
            iterations: 4,
            snapshot_iterations: vec![0, 2, 4],
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1akz", cfg);
        let result = sampler.run(&scalar());
        assert_eq!(result.snapshots.len(), 3);
        assert_eq!(result.snapshots[0].iteration, 0);
        assert_eq!(result.snapshots[1].iteration, 2);
        assert_eq!(result.snapshots[2].iteration, 4);
        for s in &result.snapshots {
            assert!(s.non_dominated_count >= 1);
            assert_eq!(s.front.len(), s.non_dominated_count);
            assert!(s.best_rmsd.is_finite());
        }
    }

    #[test]
    fn component_times_are_dominated_by_ccd_and_scoring() {
        // The paper's Figure 1: loop closure and scoring evaluation occupy
        // ~99% of the CPU-only run.
        let cfg = SamplerConfig {
            population_size: 24,
            n_complexes: 2,
            iterations: 3,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1cex", cfg);
        let result = sampler.run(&scalar());
        let f = result.component_times.fractions();
        let heavy = f[0] + f[1];
        assert!(
            heavy > 0.80,
            "CCD+scoring fraction {heavy} too small: {f:?}"
        );
        assert!(f[0] > f[1], "CCD should dominate scoring: {f:?}");
    }

    #[test]
    fn modeled_times_favor_the_device_at_large_population() {
        let cfg = SamplerConfig {
            population_size: 128,
            n_complexes: 2,
            iterations: 1,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1dim", cfg);
        let result = sampler.run(&parallel());
        assert!(result.modeled_cpu_us > 0.0);
        assert!(result.modeled_gpu_us > 0.0);
        assert!(result.modeled_speedup() > 1.0);
    }

    #[test]
    fn profiler_records_the_papers_kernels_and_transfers() {
        let cfg = SamplerConfig {
            population_size: 16,
            n_complexes: 2,
            iterations: 2,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1ixh", cfg);
        let result = sampler.run(&scalar());
        let kernels = result.profiler.kernel_stats();
        for kind in [
            KernelKind::Ccd,
            KernelKind::EvalDist,
            KernelKind::EvalVdw,
            KernelKind::EvalTrip,
            KernelKind::FitAssgPopulation,
            KernelKind::FitAssgComplex,
        ] {
            assert!(kernels.contains_key(&kind), "missing kernel {kind:?}");
        }
        // CCD dominates device time, TRIPLET is negligible — Table II shape.
        assert!(kernels[&KernelKind::Ccd].device_us > kernels[&KernelKind::EvalDist].device_us);
        assert!(
            kernels[&KernelKind::EvalDist].device_us > kernels[&KernelKind::EvalTrip].device_us
        );
        let transfers = result.profiler.transfer_stats();
        assert!(transfers.contains_key(&TransferKind::HtoA));
        assert!(transfers.contains_key(&TransferKind::DtoH));
        // Transfers are a small share of total device time.
        let transfer_us: f64 = transfers.values().map(|t| t.device_us).sum();
        assert!(transfer_us < 0.05 * result.profiler.total_device_us());
    }

    #[test]
    fn sampling_improves_the_population() {
        // After a few iterations the population should contain better
        // (lower) scores than the random initialisation on at least one
        // objective, and usually a better best-RMSD.
        let cfg = SamplerConfig {
            population_size: 32,
            n_complexes: 2,
            iterations: 8,
            snapshot_iterations: vec![0, 8],
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1cex", cfg);
        let result = sampler.run(&parallel());
        let first = &result.snapshots[0];
        let last = &result.snapshots[1];
        // The front should not collapse, and the best decoy should not get
        // substantially worse (Metropolis allows bounded uphill moves).
        assert!(last.non_dominated_count >= 1);
        assert!(
            last.non_dominated_count * 3 >= first.non_dominated_count,
            "front collapsed: {} -> {}",
            first.non_dominated_count,
            last.non_dominated_count
        );
        // RMSD is never part of the acceptance rule, so the single best
        // member is free to drift; only gross blow-up would indicate a bug.
        assert!(
            last.best_rmsd <= first.best_rmsd + 1.0,
            "best RMSD should not blow up"
        );
        // The median VDW of the population improves as clashes are resolved.
        let median_vdw = |snap: &IterationSnapshot| {
            let mut v: Vec<f64> = snap.front.iter().map(|(s, _)| s.vdw()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median_vdw(last) <= median_vdw(first) * 2.0 + 1e-9);
    }

    #[test]
    fn single_objective_mode_runs_and_differs_from_multi() {
        let base = SamplerConfig {
            population_size: 16,
            n_complexes: 2,
            iterations: 3,
            ..SamplerConfig::test_scale()
        };
        let multi = small_sampler("153l", base.clone());
        let single = small_sampler(
            "153l",
            SamplerConfig {
                objective_mode: ObjectiveMode::Single(Objective::Vdw),
                ..base
            },
        );
        let a = multi.run(&scalar());
        let b = single.run(&scalar());
        // Different acceptance dynamics ⇒ different trajectories.
        assert_ne!(
            a.population.iter().map(|c| c.scores).collect::<Vec<_>>(),
            b.population.iter().map(|c| c.scores).collect::<Vec<_>>()
        );
    }

    #[test]
    fn convergence_traces_and_schedule_override() {
        use crate::annealing::TemperatureSchedule;
        let base = SamplerConfig {
            population_size: 24,
            n_complexes: 3,
            iterations: 6,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1cex", base.clone());
        let result = sampler.run(&parallel());
        // One trace per complex, one point per iteration.
        assert_eq!(result.complex_traces.len(), 3);
        for trace in &result.complex_traces {
            assert_eq!(trace.len(), 6);
            assert!(trace.iter().all(|v| v.is_finite()));
        }
        assert!(result.gelman_rubin_vdw().is_some());

        // A geometric schedule ends colder than it starts and overrides the
        // adaptive default.
        let annealed_cfg = SamplerConfig {
            temperature_schedule: Some(TemperatureSchedule::Geometric {
                initial: 1.0,
                ratio: 0.5,
                min: 0.01,
            }),
            ..base
        };
        let annealed = small_sampler("1cex", annealed_cfg).run(&parallel());
        assert!(annealed.final_temperature < 0.1);
    }

    #[test]
    fn produce_decoys_accumulates_distinct_decoys() {
        let cfg = SamplerConfig {
            population_size: 16,
            n_complexes: 2,
            iterations: 2,
            ..SamplerConfig::test_scale()
        };
        let sampler = small_sampler("1bhe", cfg);
        let production = sampler.produce_decoys(&parallel(), 6, 4);
        assert!(production.trajectories_run >= 1);
        assert!(production.trajectories_run <= 4);
        assert!(!production.decoys.is_empty());
        assert_eq!(production.trajectories.len(), production.trajectories_run);
        // Every harvested decoy respects the 30-degree distinctness rule.
        let decoys = production.decoys.decoys();
        for (i, a) in decoys.iter().enumerate() {
            for b in &decoys[(i + 1)..] {
                assert!(a.torsions.max_deviation_deg(&b.torsions) >= 30.0 - 1e-9);
            }
        }
    }
}
