//! Pareto dominance, the MOSCEM strength-based fitness assignment, and
//! NSGA-II crowding distances.
//!
//! Everything here is generic over the objective set: the kernels operate
//! on whole [`ScoreVector`]s (dominance) or loop over
//! [`NUM_OBJECTIVES`] slots (crowding), so adding an objective changes no
//! code — and an objective that is constant across the population (e.g. the
//! disabled burial term, fixed at `0.0`) provably cannot change any result,
//! which is property-tested in `tests/objective_reduction.rs`.
//!
//! MOSCEM converts the multi-objective scoring space into a single fitness
//! value per conformation (paper Eq. 1):
//!
//! * every **non-dominated** conformation `Lᵢ` gets fitness `fᵢ = sᵢ`, where
//!   the *strength* `sᵢ` is the fraction of the population it dominates;
//! * every **dominated** conformation gets `fᵢ = 1 + Σ sⱼ` over the
//!   non-dominated conformations `Lⱼ` that dominate it.
//!
//! Lower fitness is better; conformations with `fᵢ < 1` are exactly the
//! current Pareto-optimal front.

use lms_scoring::{ScoreVector, NUM_OBJECTIVES};

/// Indices of the non-dominated members of a population of score vectors.
pub fn non_dominated_indices(scores: &[ScoreVector]) -> Vec<usize> {
    (0..scores.len())
        .filter(|&i| {
            !scores
                .iter()
                .enumerate()
                .any(|(j, s)| j != i && s.dominates(&scores[i]))
        })
        .collect()
}

/// The strength of each member: the fraction of the population it dominates.
pub fn strengths(scores: &[ScoreVector]) -> Vec<f64> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    scores
        .iter()
        .map(|si| {
            let dominated = scores.iter().filter(|sj| si.dominates(sj)).count();
            dominated as f64 / n as f64
        })
        .collect()
}

/// MOSCEM fitness assignment (paper Eq. 1) for a whole population.
/// Lower is better; values `< 1` mark the Pareto front.
pub fn fitness_assignment(scores: &[ScoreVector]) -> Vec<f64> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let s = strengths(scores);
    let non_dominated: Vec<bool> = {
        let nd = non_dominated_indices(scores);
        let mut mask = vec![false; n];
        for i in nd {
            mask[i] = true;
        }
        mask
    };
    (0..n)
        .map(|i| {
            if non_dominated[i] {
                s[i]
            } else {
                1.0 + scores
                    .iter()
                    .enumerate()
                    .filter(|(j, sj)| non_dominated[*j] && sj.dominates(&scores[i]))
                    .map(|(j, _)| s[j])
                    .sum::<f64>()
            }
        })
        .collect()
}

/// Fitness of one candidate score vector evaluated against a reference set
/// (used for the Metropolis test of an offspring against its complex).  The
/// candidate's fitness follows the same Eq. 1 rule with the reference set
/// playing the role of the population.
///
/// With the `simd` feature this dispatches to the wide reduction
/// ([`fitness_against`] keeps the same signature): the four objective
/// slots of each vector fill one 4-lane register, so every dominance test
/// collapses from a four-iteration scalar loop into two lane-wise
/// comparisons plus bitmask inspections.  Dominance is a boolean and the
/// dominated-count/strength arithmetic is untouched, so the result is
/// bit-identical to this scalar reference (unit-tested on randomized
/// vectors including NaN/∞ components).
pub fn fitness_against_scalar(candidate: &ScoreVector, reference: &[ScoreVector]) -> f64 {
    // The candidate is treated as a (prospective) member of the population,
    // so strengths are fractions of the reference-plus-candidate set.  This
    // keeps front-member fitness strictly below 1 even for a candidate that
    // dominates the entire reference set.
    // This runs twice per conformation per iteration inside the evolution
    // kernel, so it iterates the reference set directly instead of
    // collecting intermediate index vectors (no heap allocation).
    let n = reference.len() + 1;
    let dominated_by_candidate =
        reference.iter().filter(|r| candidate.dominates(r)).count() as f64 / n as f64;
    let has_dominator = reference.iter().any(|r| r.dominates(candidate));
    if !has_dominator {
        dominated_by_candidate
    } else {
        // Eq. 1 sums the strengths of the *non-dominated* members that
        // dominate the candidate, with strengths measured within the
        // reference set.
        1.0 + (0..reference.len())
            .filter(|&j| reference[j].dominates(candidate))
            .filter(|&j| {
                !reference
                    .iter()
                    .enumerate()
                    .any(|(k, rk)| k != j && rk.dominates(&reference[j]))
            })
            .map(|j| {
                reference
                    .iter()
                    .filter(|r| reference[j].dominates(r))
                    .count() as f64
                    / n as f64
            })
            .sum::<f64>()
    }
}

/// Production entry point of the Metropolis fitness reduction: the wide
/// (4-lane) evaluation when the `simd` feature is on.  See
/// [`fitness_against_scalar`] for the semantics and the bit-identity
/// argument.
#[cfg(feature = "simd")]
pub fn fitness_against(candidate: &ScoreVector, reference: &[ScoreVector]) -> f64 {
    use wide_dominance::WideScores;
    let n = reference.len() + 1;
    let c = WideScores::pack(candidate);
    let dominated_by_candidate = reference
        .iter()
        .filter(|r| c.dominates(WideScores::pack(r)))
        .count() as f64
        / n as f64;
    let has_dominator = reference.iter().any(|r| WideScores::pack(r).dominates(c));
    if !has_dominator {
        dominated_by_candidate
    } else {
        1.0 + (0..reference.len())
            .filter(|&j| WideScores::pack(&reference[j]).dominates(c))
            .filter(|&j| {
                let rj = WideScores::pack(&reference[j]);
                !reference
                    .iter()
                    .enumerate()
                    .any(|(k, rk)| k != j && WideScores::pack(rk).dominates(rj))
            })
            .map(|j| {
                let rj = WideScores::pack(&reference[j]);
                reference
                    .iter()
                    .filter(|r| rj.dominates(WideScores::pack(r)))
                    .count() as f64
                    / n as f64
            })
            .sum::<f64>()
    }
}

/// Production entry point of the Metropolis fitness reduction: without the
/// `simd` feature this is the scalar evaluation,
/// [`fitness_against_scalar`].
#[cfg(not(feature = "simd"))]
pub fn fitness_against(candidate: &ScoreVector, reference: &[ScoreVector]) -> f64 {
    fitness_against_scalar(candidate, reference)
}

/// Whole-vector Pareto dominance in one 4-lane register.
#[cfg(feature = "simd")]
mod wide_dominance {
    use super::*;
    use wide::f64x4;

    // The packing below is only a transposition-free register load because
    // the objective count matches the lane width exactly.
    const _: () = assert!(NUM_OBJECTIVES == wide::f64x4::LANES);

    /// One [`ScoreVector`] packed into a single wide register, objective
    /// slots in canonical order as lanes.
    #[derive(Clone, Copy)]
    pub(super) struct WideScores(f64x4);

    impl WideScores {
        #[inline(always)]
        pub(super) fn pack(s: &ScoreVector) -> Self {
            WideScores(f64x4::from_array(s.as_array()))
        }

        /// [`ScoreVector::dominates`] as two lane-wise comparisons: no
        /// lane strictly worse, at least one lane strictly better.  The
        /// ordered-quiet wide comparisons return false on NaN lanes
        /// exactly like the scalar `>`/`<`, so a NaN component neither
        /// vetoes nor establishes dominance on either path.
        #[inline(always)]
        pub(super) fn dominates(self, other: WideScores) -> bool {
            self.0.gt_bitmask(other.0) == 0 && self.0.lt_bitmask(other.0) != 0
        }
    }
}

/// Count the distinct non-dominated score vectors (used by Figure 3/5
/// statistics: structurally distinct counting is done at the torsion level
/// by the decoy set; this is the score-space count).
pub fn count_non_dominated(scores: &[ScoreVector]) -> usize {
    non_dominated_indices(scores).len()
}

/// NSGA-II crowding distance of every member of a population: per
/// objective, the population is sorted and each member accumulates the
/// span-normalised gap between its two neighbours; the extremes of every
/// objective get `+∞`.  Larger means less crowded — front-diversity
/// diagnostics prefer keeping high-crowding members.
///
/// An objective with zero spread over the population (all members equal —
/// e.g. the disabled burial slot, fixed at `0.0`) contributes nothing to
/// any member, so the result reduces exactly to the crowding over the
/// remaining objectives.  Ties within an objective are broken by the
/// (stable) original index order, which keeps the assignment deterministic
/// and independent of objective count.
pub fn crowding_distances(scores: &[ScoreVector]) -> Vec<f64> {
    let n = scores.len();
    let mut distances = vec![0.0f64; n];
    if n == 0 {
        return distances;
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for k in 0..NUM_OBJECTIVES {
        order.clear();
        order.extend(0..n);
        order.sort_by(|&a, &b| {
            scores[a]
                .component(k)
                .partial_cmp(&scores[b].component(k))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = scores[order[0]].component(k);
        let hi = scores[order[n - 1]].component(k);
        let span = hi - lo;
        if span <= 0.0 || !span.is_finite() {
            // Degenerate objective: no information, no contribution.
            continue;
        }
        distances[order[0]] = f64::INFINITY;
        distances[order[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            let below = scores[order[w - 1]].component(k);
            let above = scores[order[w + 1]].component(k);
            distances[order[w]] += (above - below) / span;
        }
    }
    distances
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(a: f64, b: f64, c: f64) -> ScoreVector {
        ScoreVector::new(a, b, c)
    }

    #[test]
    fn empty_population() {
        assert!(non_dominated_indices(&[]).is_empty());
        assert!(strengths(&[]).is_empty());
        assert!(fitness_assignment(&[]).is_empty());
    }

    #[test]
    fn single_member_is_non_dominated_with_zero_strength() {
        let pop = vec![sv(1.0, 2.0, 3.0)];
        assert_eq!(non_dominated_indices(&pop), vec![0]);
        assert_eq!(strengths(&pop), vec![0.0]);
        assert_eq!(fitness_assignment(&pop), vec![0.0]);
    }

    #[test]
    fn clear_dominance_chain() {
        // p0 dominates p1 dominates p2.
        let pop = vec![sv(1.0, 1.0, 1.0), sv(2.0, 2.0, 2.0), sv(3.0, 3.0, 3.0)];
        assert_eq!(non_dominated_indices(&pop), vec![0]);
        let s = strengths(&pop);
        assert!((s[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((s[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[2], 0.0);
        let f = fitness_assignment(&pop);
        // Non-dominated front: fitness < 1.
        assert!(f[0] < 1.0);
        // Dominated members: 1 + sum of the strengths of their non-dominated
        // dominators (only p0 is non-dominated).
        assert!((f[1] - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert!((f[2] - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn incomparable_members_are_all_non_dominated() {
        let pop = vec![sv(1.0, 3.0, 2.0), sv(3.0, 1.0, 2.0), sv(2.0, 2.0, 1.0)];
        assert_eq!(non_dominated_indices(&pop), vec![0, 1, 2]);
        let f = fitness_assignment(&pop);
        assert!(f.iter().all(|&x| x < 1.0), "all on the front: {f:?}");
        assert_eq!(count_non_dominated(&pop), 3);
    }

    #[test]
    fn mixed_front_and_dominated() {
        let pop = vec![
            sv(1.0, 5.0, 1.0), // front
            sv(5.0, 1.0, 1.0), // front
            sv(6.0, 6.0, 6.0), // dominated by both
            sv(1.5, 5.5, 1.5), // dominated by 0 only
        ];
        let nd = non_dominated_indices(&pop);
        assert_eq!(nd, vec![0, 1]);
        let f = fitness_assignment(&pop);
        let s = strengths(&pop);
        assert!(f[0] < 1.0 && f[1] < 1.0);
        assert!((f[2] - (1.0 + s[0] + s[1])).abs() < 1e-12);
        assert!((f[3] - (1.0 + s[0])).abs() < 1e-12);
        // Fitness of a dominated member exceeds every front member's.
        assert!(f[2] > f[0] && f[2] > f[1]);
    }

    #[test]
    fn front_members_have_fitness_below_one() {
        // Paper: "solutions with fitness fi < 1.0 correspond to the ones at
        // the Pareto optimal front".
        let pop: Vec<ScoreVector> = (0..20)
            .map(|i| {
                let x = i as f64;
                sv(x, 19.0 - x, 10.0 + (x - 9.5).abs())
            })
            .collect();
        let f = fitness_assignment(&pop);
        let nd = non_dominated_indices(&pop);
        #[allow(clippy::needless_range_loop)] // index drives both fitness and front lookups
        for i in 0..pop.len() {
            if nd.contains(&i) {
                assert!(f[i] < 1.0, "front member {i} has fitness {}", f[i]);
            } else {
                assert!(f[i] >= 1.0, "dominated member {i} has fitness {}", f[i]);
            }
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_fitness_against_is_bit_identical_to_scalar() {
        use lms_geometry::StreamRngFactory;
        use rand::Rng;
        let mut rng = StreamRngFactory::new(0x5eed_fa11).stream(0, 0);
        // Coarse value grid (ties and dominance are common) spiked with
        // non-finite components, exercising every branch of Eq. 1.
        let component = |rng: &mut rand_chacha::ChaCha8Rng| -> f64 {
            match rng.gen_range(0..12) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.gen_range(-3..4) as f64,
            }
        };
        for _ in 0..200 {
            let len = rng.gen_range(0..8);
            let reference: Vec<ScoreVector> = (0..len)
                .map(|_| {
                    ScoreVector::from_array([
                        component(&mut rng),
                        component(&mut rng),
                        component(&mut rng),
                        component(&mut rng),
                    ])
                })
                .collect();
            let candidate = ScoreVector::from_array([
                component(&mut rng),
                component(&mut rng),
                component(&mut rng),
                component(&mut rng),
            ]);
            let wide = fitness_against(&candidate, &reference);
            let scalar = fitness_against_scalar(&candidate, &reference);
            assert_eq!(wide.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn fitness_against_matches_population_fitness_semantics() {
        let reference = vec![sv(1.0, 5.0, 1.0), sv(5.0, 1.0, 1.0), sv(6.0, 6.0, 6.0)];
        // A candidate that dominates everything.
        let champion = sv(0.5, 0.5, 0.5);
        assert!(fitness_against(&champion, &reference) < 1.0);
        assert!((fitness_against(&champion, &reference) - 1.0).abs() > 1e-9);
        // A candidate dominated by the first member.
        let loser = sv(1.5, 5.5, 1.5);
        let f = fitness_against(&loser, &reference);
        assert!(f >= 1.0);
        // A candidate incomparable to all front members.
        let incomparable = sv(0.5, 10.0, 2.0);
        assert!(fitness_against(&incomparable, &reference) < 1.0);
    }

    #[test]
    fn crowding_extremes_are_infinite_and_interior_accumulates() {
        let pop = vec![
            sv(0.0, 4.0, 0.0),
            sv(1.0, 3.0, 0.0),
            sv(2.0, 2.0, 0.0),
            sv(4.0, 0.0, 0.0),
        ];
        let d = crowding_distances(&pop);
        // Boundary members of any objective get infinity.
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        // Interior members: sum over the two informative objectives of the
        // neighbour-gap / span.  TRIPLET and BURIAL are constant → ignored.
        assert!((d[1] - (2.0 / 4.0 + 2.0 / 4.0)).abs() < 1e-12);
        assert!((d[2] - (3.0 / 4.0 + 3.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn crowding_of_degenerate_population_is_zero() {
        let pop = vec![sv(1.0, 1.0, 1.0); 3];
        assert_eq!(crowding_distances(&pop), vec![0.0, 0.0, 0.0]);
        assert!(crowding_distances(&[]).is_empty());
        // A single member has no neighbours on any informative objective.
        assert_eq!(crowding_distances(&[sv(1.0, 2.0, 3.0)]), vec![0.0]);
    }

    #[test]
    fn constant_burial_component_does_not_change_crowding() {
        let base = [sv(0.0, 4.0, 1.0), sv(1.0, 3.0, 5.0), sv(2.0, 2.0, 3.0)];
        let with_burial: Vec<ScoreVector> = base.iter().map(|s| s.with_burial(7.25)).collect();
        assert_eq!(crowding_distances(&base), crowding_distances(&with_burial));
    }

    #[test]
    fn duplicate_scores_do_not_dominate_each_other() {
        let pop = vec![sv(1.0, 1.0, 1.0), sv(1.0, 1.0, 1.0)];
        assert_eq!(non_dominated_indices(&pop), vec![0, 1]);
        let f = fitness_assignment(&pop);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[1], 0.0);
    }
}
