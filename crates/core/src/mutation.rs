//! The torsion mutation move set (`[Reproduction]` in the paper's
//! pseudo-code).
//!
//! "A new conformation is generated from an old conformation by mutating
//! randomly selected torsion angles."  Each move picks a small number of
//! torsions and either perturbs them with a wrapped-normal step or resamples
//! them from the Ramachandran distribution of the residue class (a larger
//! jump that keeps the proposal in physically plausible territory).  The
//! move reports the smallest mutated flat index so the caller can start CCD
//! "from the immediate torsion angle after the mutated ones".

use lms_geometry::wrapped_normal;
use lms_protein::{RamaClass, RamaLibrary, Torsions};
use rand::Rng;

/// Configuration of the mutation move.
///
/// `#[non_exhaustive]`: construct via [`MutationConfig::new`] (or
/// `default()`) and the `with_*` setters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MutationConfig {
    /// Maximum number of torsion angles mutated per move (at least 1 is
    /// always mutated).
    pub max_mutations: usize,
    /// Standard deviation (radians) of the local perturbation move.
    pub perturbation_sigma: f64,
    /// Probability that a selected torsion is *resampled* from the
    /// Ramachandran model instead of locally perturbed.
    pub resample_probability: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            max_mutations: 3,
            perturbation_sigma: 30f64.to_radians(),
            resample_probability: 0.25,
        }
    }
}

impl MutationConfig {
    /// The default configuration, as a starting point for the `with_*`
    /// setters.
    pub fn new() -> Self {
        MutationConfig::default()
    }

    /// Set the maximum number of torsion angles mutated per move.
    #[must_use]
    pub fn with_max_mutations(mut self, max_mutations: usize) -> Self {
        self.max_mutations = max_mutations;
        self
    }

    /// Set the standard deviation (radians) of the local perturbation move.
    #[must_use]
    pub fn with_perturbation_sigma(mut self, sigma: f64) -> Self {
        self.perturbation_sigma = sigma;
        self
    }

    /// Set the probability that a selected torsion is resampled from the
    /// Ramachandran model instead of locally perturbed.
    #[must_use]
    pub fn with_resample_probability(mut self, p: f64) -> Self {
        self.resample_probability = p;
        self
    }
}

/// Outcome of one mutation move.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// The mutated torsion vector.
    pub torsions: Torsions,
    /// Flat indices that were mutated, sorted ascending.
    pub mutated_indices: Vec<usize>,
    /// The flat index from which CCD should start repairing closure (the
    /// smallest mutated index — the paper starts "from the immediate
    /// torsion angle after the mutated ones", and every torsion from the
    /// first mutation onward may need adjustment).
    pub ccd_start_index: usize,
}

/// The mutation operator.
#[derive(Debug, Clone)]
pub struct Mutator {
    config: MutationConfig,
    rama: RamaLibrary,
}

impl Mutator {
    /// Create a mutator.
    pub fn new(config: MutationConfig) -> Self {
        Mutator {
            config,
            rama: RamaLibrary::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MutationConfig {
        &self.config
    }

    /// Produce a mutated copy of `torsions` for a loop whose residues have
    /// the given Ramachandran classes.
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        torsions: &Torsions,
        classes: &[RamaClass],
        rng: &mut R,
    ) -> MutationOutcome {
        let mut out = torsions.clone();
        let mut mutated_indices = Vec::new();
        let ccd_start_index =
            self.mutate_into(torsions, classes, rng, &mut out, &mut mutated_indices);
        MutationOutcome {
            torsions: out,
            mutated_indices,
            ccd_start_index,
        }
    }

    /// [`Mutator::mutate`] writing into caller-owned buffers: `out` receives
    /// the mutated torsions (its storage is reused) and `indices` the sorted
    /// mutated flat indices.  Returns the CCD start index.  Performs no heap
    /// allocation once the buffers have warmed up, which makes it safe to
    /// call from the sampler's zero-allocation evolution kernel.
    pub fn mutate_into<R: Rng + ?Sized>(
        &self,
        torsions: &Torsions,
        classes: &[RamaClass],
        rng: &mut R,
        out: &mut Torsions,
        indices: &mut Vec<usize>,
    ) -> usize {
        out.copy_from(torsions);
        self.mutate_in_place(out, classes, rng, indices)
    }

    /// Mutate `out` in place (it already holds the current torsions): the
    /// population-batched pipeline copies a member's torsion lane out of the
    /// SoA arena and mutates the copy directly, skipping the extra source
    /// vector [`Mutator::mutate_into`] needs.  Draws exactly the same
    /// random sequence as `mutate_into`, so the two entry points are
    /// bit-identical.
    pub fn mutate_in_place<R: Rng + ?Sized>(
        &self,
        out: &mut Torsions,
        classes: &[RamaClass],
        rng: &mut R,
        indices: &mut Vec<usize>,
    ) -> usize {
        assert_eq!(classes.len(), out.n_residues());
        let n_angles = out.n_angles();
        let n_mut = rng
            .gen_range(1..=self.config.max_mutations.max(1))
            .min(n_angles);

        indices.clear();
        while indices.len() < n_mut {
            let k = rng.gen_range(0..n_angles);
            if !indices.contains(&k) {
                indices.push(k);
            }
        }
        indices.sort_unstable();

        for &k in indices.iter() {
            let (residue, kind) = Torsions::describe_angle(k);
            if rng.gen::<f64>() < self.config.resample_probability {
                // Large move: resample this residue's pair from the
                // Ramachandran model, but only overwrite the selected angle
                // so the move stays local in torsion space.
                let (phi, psi) = self.rama.model(classes[residue]).sample(rng);
                let value = match kind {
                    lms_protein::TorsionKind::Phi => phi,
                    lms_protein::TorsionKind::Psi => psi,
                };
                out.set_angle(k, value);
            } else {
                let current = out.angle(k);
                out.set_angle(
                    k,
                    wrapped_normal(rng, current, self.config.perturbation_sigma),
                );
            }
        }

        *indices.first().expect("at least one mutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::StreamRngFactory;

    fn classes(n: usize) -> Vec<RamaClass> {
        (0..n)
            .map(|i| match i % 5 {
                0 => RamaClass::Glycine,
                1 => RamaClass::Proline,
                _ => RamaClass::General,
            })
            .collect()
    }

    fn base_torsions(n: usize) -> Torsions {
        Torsions::from_pairs(&vec![(-1.1, -0.75); n])
    }

    #[test]
    fn mutation_changes_only_selected_indices() {
        let mutator = Mutator::new(MutationConfig::default());
        let t0 = base_torsions(12);
        let cls = classes(12);
        let mut rng = StreamRngFactory::new(5).stream(0, 0);
        for _ in 0..100 {
            let out = mutator.mutate(&t0, &cls, &mut rng);
            assert!(!out.mutated_indices.is_empty());
            assert!(out.mutated_indices.len() <= mutator.config().max_mutations);
            for k in 0..t0.n_angles() {
                if out.mutated_indices.contains(&k) {
                    // A mutation may, with vanishing probability, leave the
                    // angle numerically unchanged; do not assert change here.
                } else {
                    assert_eq!(
                        out.torsions.angle(k),
                        t0.angle(k),
                        "index {k} must not move"
                    );
                }
            }
        }
    }

    #[test]
    fn ccd_start_is_the_smallest_mutated_index() {
        let mutator = Mutator::new(MutationConfig {
            max_mutations: 4,
            ..Default::default()
        });
        let t0 = base_torsions(10);
        let cls = classes(10);
        let mut rng = StreamRngFactory::new(9).stream(1, 0);
        for _ in 0..50 {
            let out = mutator.mutate(&t0, &cls, &mut rng);
            assert_eq!(
                out.ccd_start_index,
                *out.mutated_indices.iter().min().unwrap()
            );
            // Indices are sorted and unique.
            let mut sorted = out.mutated_indices.clone();
            sorted.dedup();
            assert_eq!(sorted, out.mutated_indices);
        }
    }

    #[test]
    fn mutation_is_deterministic_per_stream() {
        let mutator = Mutator::new(MutationConfig::default());
        let t0 = base_torsions(11);
        let cls = classes(11);
        let f = StreamRngFactory::new(77);
        let a = mutator.mutate(&t0, &cls, &mut f.stream(3, 9));
        let b = mutator.mutate(&t0, &cls, &mut f.stream(3, 9));
        assert_eq!(a, b);
        let c = mutator.mutate(&t0, &cls, &mut f.stream(4, 9));
        assert_ne!(a.torsions, c.torsions);
    }

    #[test]
    fn mutated_angles_stay_in_canonical_range() {
        let mutator = Mutator::new(MutationConfig {
            perturbation_sigma: 2.0,
            resample_probability: 0.5,
            max_mutations: 5,
        });
        let t0 = base_torsions(12);
        let cls = classes(12);
        let mut rng = StreamRngFactory::new(3).stream(0, 0);
        for _ in 0..200 {
            let out = mutator.mutate(&t0, &cls, &mut rng);
            for k in 0..out.torsions.n_angles() {
                let a = out.torsions.angle(k);
                assert!(a > -std::f64::consts::PI - 1e-9 && a <= std::f64::consts::PI + 1e-9);
            }
        }
    }

    #[test]
    fn single_angle_loop_is_handled() {
        let mutator = Mutator::new(MutationConfig {
            max_mutations: 8,
            ..Default::default()
        });
        let t0 = base_torsions(1);
        let cls = classes(1);
        let mut rng = StreamRngFactory::new(1).stream(0, 0);
        let out = mutator.mutate(&t0, &cls, &mut rng);
        assert!(out.mutated_indices.len() <= 2);
        assert!(out.ccd_start_index < 2);
    }

    #[test]
    #[should_panic]
    fn class_length_mismatch_panics() {
        let mutator = Mutator::new(MutationConfig::default());
        let t0 = base_torsions(5);
        let cls = classes(4);
        let mut rng = StreamRngFactory::new(1).stream(0, 0);
        let _ = mutator.mutate(&t0, &cls, &mut rng);
    }
}
