//! Typed errors for the loop-modeling workspace.
//!
//! Configuration problems surface as [`ConfigError`] (one variant per
//! invariant a config can violate), and everything that can go wrong while
//! running jobs through the engine surfaces as [`Error`].  Both implement
//! [`std::error::Error`], so they compose with `?` and `Box<dyn Error>`
//! in downstream applications — no stringly-typed failures and no panicking
//! constructors on the public API.

use lms_scoring::Objective;
use std::error::Error as StdError;
use std::fmt;
use std::time::Duration;

/// A sampler or engine configuration violates one of its invariants.
///
/// Produced by [`SamplerConfig::validate`](crate::SamplerConfig::validate),
/// the config builders' `build()` methods, and
/// [`EngineBuilder::build`](crate::EngineBuilder::build).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `population_size` must be positive.
    ZeroPopulation,
    /// `n_complexes` must be positive.
    ZeroComplexes,
    /// The population cannot be partitioned into more complexes than it has
    /// members.
    ComplexesExceedPopulation {
        /// Requested number of complexes.
        n_complexes: usize,
        /// Configured population size.
        population_size: usize,
    },
    /// `threads_per_block` must be positive.
    ZeroThreadsPerBlock,
    /// `initial_temperature` must be positive and not NaN.
    NonPositiveTemperature {
        /// The rejected temperature.
        value: f64,
    },
    /// The acceptance band must satisfy `low < high`.
    InvalidAcceptanceBand {
        /// Lower edge of the rejected band.
        low: f64,
        /// Upper edge of the rejected band.
        high: f64,
    },
    /// The multiplicative temperature adjustment must exceed 1.
    TemperatureAdjustNotAboveOne {
        /// The rejected factor.
        factor: f64,
    },
    /// `max_closure_deviation` must be positive and not NaN.
    NonPositiveClosureDeviation {
        /// The rejected deviation.
        value: f64,
    },
    /// The loop-closure condition cannot be tighter than the CCD tolerance
    /// (which bounds the deviation of a *converged* closure).
    ClosureBelowCcdTolerance {
        /// Configured maximum closure deviation (Å).
        max_closure_deviation: f64,
        /// Configured CCD convergence tolerance (Å).
        ccd_tolerance: f64,
    },
    /// The engine must be allowed at least one concurrent job.
    ZeroConcurrency,
    /// The objective mode depends on the burial objective, which is
    /// disabled: with `burial_objective` off the BURIAL slot is constant
    /// `0.0`, so optimizing it alone would degenerate into an unguided
    /// random walk.
    BurialObjectiveDisabled,
    /// A wall-clock deadline in [`JobLimits`](crate::JobLimits) must be
    /// positive.
    ZeroDeadline,
    /// The configured `iterations` exceed the job's iteration budget: the
    /// budget is enforced at validation time because the trajectory length
    /// is fixed up front (truncating mid-run would silently change the
    /// sampled ensemble).
    IterationBudgetExceeded {
        /// Configured number of MCMC iterations.
        iterations: usize,
        /// The `max_iterations` budget in [`JobLimits`](crate::JobLimits).
        budget: usize,
    },
    /// A closure-stall streak limit in [`JobLimits`](crate::JobLimits)
    /// must be positive (a zero streak would fail every job at its first
    /// iteration boundary).
    ZeroStallLimit,
    /// The engine's [`ExecutorConfig`](lms_simt::ExecutorConfig) failed
    /// validation (e.g. a zero or oversized CCD block width, or a backend
    /// whose cargo feature is not compiled in).
    InvalidExecutor(lms_simt::ExecutorConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPopulation => write!(f, "population_size must be positive"),
            ConfigError::ZeroComplexes => write!(f, "n_complexes must be positive"),
            ConfigError::ComplexesExceedPopulation {
                n_complexes,
                population_size,
            } => write!(
                f,
                "n_complexes ({n_complexes}) cannot exceed population_size ({population_size})"
            ),
            ConfigError::ZeroThreadsPerBlock => write!(f, "threads_per_block must be positive"),
            ConfigError::NonPositiveTemperature { value } => {
                write!(f, "initial_temperature must be positive (got {value})")
            }
            ConfigError::InvalidAcceptanceBand { low, high } => write!(
                f,
                "acceptance band must satisfy low < high (got {low} >= {high})"
            ),
            ConfigError::TemperatureAdjustNotAboveOne { factor } => {
                write!(f, "temperature_adjust must exceed 1 (got {factor})")
            }
            ConfigError::NonPositiveClosureDeviation { value } => {
                write!(f, "max_closure_deviation must be positive (got {value})")
            }
            ConfigError::ClosureBelowCcdTolerance {
                max_closure_deviation,
                ccd_tolerance,
            } => write!(
                f,
                "max_closure_deviation ({max_closure_deviation}) must be at least the CCD \
                 tolerance ({ccd_tolerance})"
            ),
            ConfigError::ZeroConcurrency => {
                write!(f, "engine concurrency must be at least 1")
            }
            ConfigError::BurialObjectiveDisabled => write!(
                f,
                "objective_mode depends on the BURIAL objective, but burial_objective is \
                 false; enable it with SamplerConfig::builder().burial_objective(true)"
            ),
            ConfigError::ZeroDeadline => {
                write!(f, "JobLimits deadline must be positive")
            }
            ConfigError::IterationBudgetExceeded { iterations, budget } => write!(
                f,
                "iterations ({iterations}) exceed the JobLimits max_iterations budget ({budget})"
            ),
            ConfigError::ZeroStallLimit => {
                write!(f, "JobLimits max_closure_stall must be positive")
            }
            ConfigError::InvalidExecutor(e) => {
                write!(f, "invalid executor configuration: {e}")
            }
        }
    }
}

impl StdError for ConfigError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ConfigError::InvalidExecutor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lms_simt::ExecutorConfigError> for ConfigError {
    fn from(e: lms_simt::ExecutorConfigError) -> Self {
        ConfigError::InvalidExecutor(e)
    }
}

/// Anything that can go wrong while running a sampling job.
///
/// ## Failure taxonomy
///
/// The engine's supervisor classifies every variant as **retryable** (a
/// transient fault — a same-seed rerun is sound because trajectories are
/// deterministic, and may succeed because the fault was environmental) or
/// **terminal** (deterministic or deliberate — a rerun would fail the same
/// way or waste the budget); see [`Error::is_retryable`].
///
/// | variant | class | why |
/// |---|---|---|
/// | [`Error::Config`] | terminal | the same config fails validation again |
/// | [`Error::Cancelled`] | terminal | the caller asked for it |
/// | [`Error::DeadlineExceeded`] | terminal | the wall-clock budget is already spent |
/// | [`Error::JobPanicked`] | retryable | panics are treated as transient worker faults |
/// | [`Error::Stalled`] | retryable | stalls can be environmental (e.g. injected or scheduling) |
/// | [`Error::NumericalFault`] | retryable | poison can enter through transient corruption |
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The job's configuration was invalid.
    Config(ConfigError),
    /// The job was cancelled cooperatively; the trajectory stopped at the
    /// recorded iteration and its partial state was discarded.
    Cancelled {
        /// Number of MCMC iterations that had fully completed when the
        /// cancellation was observed.
        completed_iterations: usize,
    },
    /// The job's worker panicked; the batch's remaining jobs are unaffected.
    JobPanicked {
        /// Label of the job whose worker panicked (empty for direct
        /// sampler runs).
        label: String,
        /// Best-effort panic payload rendered as text.
        detail: String,
    },
    /// The job's wall-clock deadline
    /// ([`JobLimits`](crate::config::JobLimits) `deadline`) elapsed;
    /// enforced at iteration boundaries, so the run stopped at the
    /// recorded iteration.
    DeadlineExceeded {
        /// The configured deadline.
        limit: Duration,
        /// Iterations that had fully completed when the deadline fired.
        completed_iterations: usize,
    },
    /// The sampler stalled: for `streak` consecutive iterations not a
    /// single member's CCD closure converged, exceeding the configured
    /// [`JobLimits::max_closure_stall`](crate::JobLimits) limit.
    Stalled {
        /// Consecutive all-members non-convergence iterations observed.
        streak: usize,
        /// The configured streak limit.
        limit: usize,
        /// Iterations that had fully completed when the guard fired.
        completed_iterations: usize,
    },
    /// The numerical health sweep found a non-finite value in a member's
    /// candidate lanes and the config's
    /// [`NumericGuard`](crate::NumericGuard) policy was `Fail` (or the
    /// whole population was poisoned).
    NumericalFault {
        /// Population member whose lanes were poisoned.
        member: usize,
        /// Iteration at which the sweep caught the poison (0 = the
        /// initialisation round).
        iteration: usize,
        /// The poisoned scoring objective, or `None` when the poison sat
        /// in a torsion / closure-deviation / observable lane instead.
        objective: Option<Objective>,
    },
}

impl Error {
    /// Whether the engine's supervisor may re-run the job with the same
    /// seed under its [`RetryPolicy`](crate::RetryPolicy) (see the
    /// failure-taxonomy table on [`Error`]).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::JobPanicked { .. } | Error::Stalled { .. } | Error::NumericalFault { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid configuration: {e}"),
            Error::Cancelled {
                completed_iterations,
            } => write!(f, "job cancelled after {completed_iterations} iterations"),
            Error::JobPanicked { label, detail } => {
                if label.is_empty() {
                    write!(f, "job panicked: {detail}")
                } else {
                    write!(f, "job '{label}' panicked: {detail}")
                }
            }
            Error::DeadlineExceeded {
                limit,
                completed_iterations,
            } => write!(
                f,
                "job exceeded its {limit:?} deadline after {completed_iterations} iterations"
            ),
            Error::Stalled {
                streak,
                limit,
                completed_iterations,
            } => write!(
                f,
                "job stalled: {streak} consecutive iterations without a converged closure \
                 (limit {limit}) after {completed_iterations} iterations"
            ),
            Error::NumericalFault {
                member,
                iteration,
                objective,
            } => match objective {
                Some(o) => write!(
                    f,
                    "non-finite {} score for member {member} at iteration {iteration}",
                    o.name()
                ),
                None => write!(
                    f,
                    "non-finite torsion/closure lane for member {member} at iteration {iteration}"
                ),
            },
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offending_values() {
        let e = ConfigError::ComplexesExceedPopulation {
            n_complexes: 9,
            population_size: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let c = Error::Cancelled {
            completed_iterations: 3,
        };
        assert!(c.to_string().contains('3'));
    }

    #[test]
    fn config_errors_nest_as_error_sources() {
        let e: Error = ConfigError::ZeroPopulation.into();
        assert!(matches!(e, Error::Config(ConfigError::ZeroPopulation)));
        assert!(e.source().is_some());
    }

    #[test]
    fn executor_config_errors_nest_with_their_source() {
        let e: ConfigError = lms_simt::ExecutorConfigError::ZeroCcdBlockWidth.into();
        assert!(matches!(
            e,
            ConfigError::InvalidExecutor(lms_simt::ExecutorConfigError::ZeroCcdBlockWidth)
        ));
        assert!(e.to_string().contains("executor"));
        assert!(e.source().is_some());
    }

    #[test]
    fn retryable_classification_matches_the_taxonomy_table() {
        assert!(!Error::Config(ConfigError::ZeroPopulation).is_retryable());
        assert!(!Error::Cancelled {
            completed_iterations: 1
        }
        .is_retryable());
        assert!(!Error::DeadlineExceeded {
            limit: Duration::from_secs(1),
            completed_iterations: 2
        }
        .is_retryable());
        assert!(Error::JobPanicked {
            label: "job".into(),
            detail: "boom".into()
        }
        .is_retryable());
        assert!(Error::Stalled {
            streak: 4,
            limit: 3,
            completed_iterations: 5
        }
        .is_retryable());
        assert!(Error::NumericalFault {
            member: 0,
            iteration: 1,
            objective: Some(Objective::Vdw)
        }
        .is_retryable());
    }

    #[test]
    fn fault_displays_name_the_site() {
        let e = Error::NumericalFault {
            member: 7,
            iteration: 3,
            objective: Some(Objective::Dist),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("DIST") && msg.contains('7') && msg.contains('3'),
            "{msg}"
        );
        let p = Error::JobPanicked {
            label: "1cex#2".into(),
            detail: "injected".into(),
        };
        assert!(p.to_string().contains("1cex#2"));
        let d = Error::DeadlineExceeded {
            limit: Duration::from_millis(5),
            completed_iterations: 2,
        };
        assert!(d.to_string().contains("deadline"));
        let s = Error::Stalled {
            streak: 4,
            limit: 3,
            completed_iterations: 9,
        };
        assert!(s.to_string().contains("stalled"));
    }
}
