//! Typed errors for the loop-modeling workspace.
//!
//! Configuration problems surface as [`ConfigError`] (one variant per
//! invariant a config can violate), and everything that can go wrong while
//! running jobs through the engine surfaces as [`Error`].  Both implement
//! [`std::error::Error`], so they compose with `?` and `Box<dyn Error>`
//! in downstream applications — no stringly-typed failures and no panicking
//! constructors on the public API.

use std::error::Error as StdError;
use std::fmt;

/// A sampler or engine configuration violates one of its invariants.
///
/// Produced by [`SamplerConfig::validate`](crate::SamplerConfig::validate),
/// the config builders' `build()` methods, and
/// [`EngineBuilder::build`](crate::EngineBuilder::build).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `population_size` must be positive.
    ZeroPopulation,
    /// `n_complexes` must be positive.
    ZeroComplexes,
    /// The population cannot be partitioned into more complexes than it has
    /// members.
    ComplexesExceedPopulation {
        /// Requested number of complexes.
        n_complexes: usize,
        /// Configured population size.
        population_size: usize,
    },
    /// `threads_per_block` must be positive.
    ZeroThreadsPerBlock,
    /// `initial_temperature` must be positive and not NaN.
    NonPositiveTemperature {
        /// The rejected temperature.
        value: f64,
    },
    /// The acceptance band must satisfy `low < high`.
    InvalidAcceptanceBand {
        /// Lower edge of the rejected band.
        low: f64,
        /// Upper edge of the rejected band.
        high: f64,
    },
    /// The multiplicative temperature adjustment must exceed 1.
    TemperatureAdjustNotAboveOne {
        /// The rejected factor.
        factor: f64,
    },
    /// `max_closure_deviation` must be positive and not NaN.
    NonPositiveClosureDeviation {
        /// The rejected deviation.
        value: f64,
    },
    /// The loop-closure condition cannot be tighter than the CCD tolerance
    /// (which bounds the deviation of a *converged* closure).
    ClosureBelowCcdTolerance {
        /// Configured maximum closure deviation (Å).
        max_closure_deviation: f64,
        /// Configured CCD convergence tolerance (Å).
        ccd_tolerance: f64,
    },
    /// The engine must be allowed at least one concurrent job.
    ZeroConcurrency,
    /// The objective mode depends on the burial objective, which is
    /// disabled: with `burial_objective` off the BURIAL slot is constant
    /// `0.0`, so optimizing it alone would degenerate into an unguided
    /// random walk.
    BurialObjectiveDisabled,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPopulation => write!(f, "population_size must be positive"),
            ConfigError::ZeroComplexes => write!(f, "n_complexes must be positive"),
            ConfigError::ComplexesExceedPopulation {
                n_complexes,
                population_size,
            } => write!(
                f,
                "n_complexes ({n_complexes}) cannot exceed population_size ({population_size})"
            ),
            ConfigError::ZeroThreadsPerBlock => write!(f, "threads_per_block must be positive"),
            ConfigError::NonPositiveTemperature { value } => {
                write!(f, "initial_temperature must be positive (got {value})")
            }
            ConfigError::InvalidAcceptanceBand { low, high } => write!(
                f,
                "acceptance band must satisfy low < high (got {low} >= {high})"
            ),
            ConfigError::TemperatureAdjustNotAboveOne { factor } => {
                write!(f, "temperature_adjust must exceed 1 (got {factor})")
            }
            ConfigError::NonPositiveClosureDeviation { value } => {
                write!(f, "max_closure_deviation must be positive (got {value})")
            }
            ConfigError::ClosureBelowCcdTolerance {
                max_closure_deviation,
                ccd_tolerance,
            } => write!(
                f,
                "max_closure_deviation ({max_closure_deviation}) must be at least the CCD \
                 tolerance ({ccd_tolerance})"
            ),
            ConfigError::ZeroConcurrency => {
                write!(f, "engine concurrency must be at least 1")
            }
            ConfigError::BurialObjectiveDisabled => write!(
                f,
                "objective_mode depends on the BURIAL objective, but burial_objective is \
                 false; enable it with SamplerConfig::builder().burial_objective(true)"
            ),
        }
    }
}

impl StdError for ConfigError {}

/// Anything that can go wrong while running a sampling job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The job's configuration was invalid.
    Config(ConfigError),
    /// The job was cancelled cooperatively; the trajectory stopped at the
    /// recorded iteration and its partial state was discarded.
    Cancelled {
        /// Number of MCMC iterations that had fully completed when the
        /// cancellation was observed.
        completed_iterations: usize,
    },
    /// The job's worker panicked; the batch's remaining jobs are unaffected.
    JobPanicked {
        /// Best-effort panic payload rendered as text.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid configuration: {e}"),
            Error::Cancelled {
                completed_iterations,
            } => write!(f, "job cancelled after {completed_iterations} iterations"),
            Error::JobPanicked { detail } => write!(f, "job panicked: {detail}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offending_values() {
        let e = ConfigError::ComplexesExceedPopulation {
            n_complexes: 9,
            population_size: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let c = Error::Cancelled {
            completed_iterations: 3,
        };
        assert!(c.to_string().contains('3'));
    }

    #[test]
    fn config_errors_nest_as_error_sources() {
        let e: Error = ConfigError::ZeroPopulation.into();
        assert!(matches!(e, Error::Config(ConfigError::ZeroPopulation)));
        assert!(e.source().is_some());
    }
}
