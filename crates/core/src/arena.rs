//! The population-wide SoA member arena behind the staged kernel pipeline.
//!
//! The paper's device layout keeps the whole population in flat
//! structure-of-arrays global memory — per-member torsions, score slots and
//! flags addressed by thread id — and every pipeline stage is a
//! population-wide kernel launch over those buffers.  [`PopulationArena`]
//! is that layout on the host: the per-`Member` owned buffers of the
//! sequential reference implementation are replaced by
//!
//! * flat member-major SoA buffers for everything cross-member stages read
//!   (current/candidate torsion lanes, [`ScoreVector`] slots, closure and
//!   acceptance flags, RNG stream handles, fitness), and
//! * a `MemberSlot` per member holding the heavyweight reusable
//!   workspaces that existing kernels consume by reference (the CCD/scoring
//!   structure buffer, the scoring scratch, the candidate torsion view the
//!   flat lane is loaded into, the mutation-index scratch),
//!
//! plus the reusable host-side iteration buffers (sort order, complex
//! partition in CSR form, trace accumulators) and one
//! [`CcdBatchScratch`] per closure block.  Everything is allocated once at
//! trajectory start and reused for every iteration: after the first
//! iteration warms the buffers up, a whole staged iteration performs no
//! heap allocation (proved by `tests/zero_alloc.rs`).

use lms_closure::CcdBatchScratch;
use lms_geometry::StreamRngFactory;
use lms_protein::{LoopStructure, Torsions};
use lms_scoring::{ScoreScratch, ScoreVector, ScratchPool};
use rand_chacha::ChaCha8Rng;

/// The historical fixed CCD lockstep block width.  The block width is now a
/// backend-reported parameter of the executor
/// ([`lms_simt::Executor::ccd_block_width`]) and flows into the population
/// arena at trajectory start; this constant survives only
/// as the default ([`lms_simt::DEFAULT_CCD_BLOCK_WIDTH`]).
#[deprecated(
    since = "0.1.0",
    note = "the CCD block width is runtime-configured via ExecutorConfig::ccd_block_width; \
            use lms_simt::DEFAULT_CCD_BLOCK_WIDTH for the default"
)]
pub const CCD_BLOCK_WIDTH: usize = lms_simt::DEFAULT_CCD_BLOCK_WIDTH;

/// One member's heavyweight reusable workspaces: the buffers the
/// per-conformation kernels mutate through references, exactly as the
/// per-`Member` reference implementation holds them.
#[derive(Debug)]
pub(crate) struct MemberSlot {
    /// Reused structure buffer: holds the most recently built candidate.
    pub(crate) structure: LoopStructure,
    /// Reused scoring workspace (member-major SoA slices inside).
    pub(crate) scratch: ScoreScratch,
    /// The member's working torsion view: loaded from the flat candidate
    /// lane at the start of a stage chain, stored back when CCD finishes.
    pub(crate) cand: Torsions,
    /// Reused mutated-index buffer for the mutation move.
    pub(crate) mut_indices: Vec<usize>,
}

/// The population-wide SoA arena of one staged trajectory run.
///
/// All buffers are member-major; `stride` (= `2 × n_residues`) elements per
/// member for the torsion lanes, one slot per member for everything else.
/// See the module docs for the layout rationale.
#[derive(Debug)]
pub struct PopulationArena {
    pub(crate) n_members: usize,
    pub(crate) stride: usize,
    pub(crate) n_blocks: usize,
    pub(crate) ccd_block_width: usize,
    // --- flat SoA population state ("device global memory") -------------
    pub(crate) torsions: Vec<f64>,
    pub(crate) cand_torsions: Vec<f64>,
    pub(crate) scores: Vec<ScoreVector>,
    pub(crate) cand_scores: Vec<ScoreVector>,
    pub(crate) fitness: Vec<f64>,
    pub(crate) strength: Vec<f64>,
    pub(crate) front: Vec<bool>,
    pub(crate) closure_dev: Vec<f64>,
    pub(crate) cand_closure_dev: Vec<f64>,
    pub(crate) rmsd: Vec<f64>,
    pub(crate) cand_rmsd: Vec<f64>,
    pub(crate) accepted: Vec<bool>,
    /// Per-member convergence flag of the most recent close stage (the
    /// CCD non-convergence readback behind the stall guard).
    pub(crate) cand_converged: Vec<bool>,
    /// Per-member verdict of the most recent numerical health sweep.
    pub(crate) healthy: Vec<bool>,
    pub(crate) proposed_moves: Vec<usize>,
    pub(crate) accepted_moves: Vec<usize>,
    pub(crate) ccd_start: Vec<usize>,
    pub(crate) rngs: Vec<ChaCha8Rng>,
    pub(crate) ccd_rotations: Vec<f64>,
    // --- per-stage measurement buffers ----------------------------------
    pub(crate) stage_us: Vec<f64>,
    pub(crate) block_ccd_us: Vec<f64>,
    // --- reusable host-side iteration buffers ---------------------------
    pub(crate) order: Vec<usize>,
    pub(crate) complex_of: Vec<usize>,
    pub(crate) complex_scores: Vec<ScoreVector>,
    pub(crate) complex_offsets: Vec<usize>,
    pub(crate) trace_sums: Vec<(f64, usize)>,
    // --- heavyweight member and block workspaces ------------------------
    pub(crate) slots: Vec<MemberSlot>,
    pub(crate) ccd_blocks: Vec<CcdBatchScratch>,
}

impl PopulationArena {
    /// Allocate the arena for one trajectory: `n_members` members over a
    /// loop of `n_residues`, partitioned into `n_complexes` for the
    /// Metropolis reference sets.  Scoring scratches are leased from `pool`
    /// when one is provided (the engine's warm workspaces), otherwise
    /// freshly pre-sized.  `ccd_block_width` — how many members one CCD
    /// lockstep block closes together — is the executor backend's reported
    /// parameter ([`lms_simt::Executor::ccd_block_width`]), not a constant.
    pub(crate) fn new(
        n_members: usize,
        n_residues: usize,
        max_mutations: usize,
        n_complexes: usize,
        pool: Option<&ScratchPool>,
        ccd_block_width: usize,
    ) -> Self {
        assert!(ccd_block_width > 0, "CCD block width must be non-zero");
        let stride = 2 * n_residues;
        let n_blocks = n_members.div_ceil(ccd_block_width);
        let slots = (0..n_members)
            .map(|_| MemberSlot {
                structure: LoopStructure::with_capacity(n_residues),
                scratch: match pool {
                    Some(pool) => pool.acquire(n_residues),
                    None => ScoreScratch::for_loop_len(n_residues),
                },
                cand: Torsions::zeros(n_residues),
                mut_indices: Vec::with_capacity(max_mutations.max(1)),
            })
            .collect();
        // Stride partition sizes are fixed by (n, m): complex `c` holds the
        // sorted positions `c, c + m, c + 2m, …` — offsets computed once.
        let m = n_complexes.max(1);
        let mut complex_offsets = Vec::with_capacity(m + 1);
        complex_offsets.push(0usize);
        for c in 0..m {
            let count = n_members / m + usize::from(c < n_members % m);
            complex_offsets.push(complex_offsets[c] + count);
        }
        // RNG handles get a placeholder stream; every pipeline phase
        // overwrites its members' handles from its own derived factory
        // before drawing.
        let placeholder = StreamRngFactory::new(0).stream(0, 0);
        PopulationArena {
            n_members,
            stride,
            n_blocks,
            ccd_block_width,
            torsions: vec![0.0; n_members * stride],
            cand_torsions: vec![0.0; n_members * stride],
            scores: vec![ScoreVector::default(); n_members],
            cand_scores: vec![ScoreVector::default(); n_members],
            fitness: vec![f64::INFINITY; n_members],
            strength: vec![0.0; n_members],
            front: vec![false; n_members],
            closure_dev: vec![f64::INFINITY; n_members],
            cand_closure_dev: vec![f64::INFINITY; n_members],
            rmsd: vec![f64::INFINITY; n_members],
            cand_rmsd: vec![f64::INFINITY; n_members],
            accepted: vec![false; n_members],
            cand_converged: vec![false; n_members],
            healthy: vec![true; n_members],
            proposed_moves: vec![0; n_members],
            accepted_moves: vec![0; n_members],
            ccd_start: vec![0; n_members],
            rngs: vec![placeholder; n_members],
            ccd_rotations: vec![0.0; n_members],
            stage_us: vec![0.0; n_members],
            block_ccd_us: vec![0.0; n_blocks],
            order: Vec::with_capacity(n_members),
            complex_of: vec![0; n_members],
            complex_scores: vec![ScoreVector::default(); n_members],
            complex_offsets,
            trace_sums: vec![(0.0, 0); m],
            slots,
            ccd_blocks: vec![CcdBatchScratch::new(); n_blocks],
        }
    }

    /// Population size.
    pub fn n_members(&self) -> usize {
        self.n_members
    }

    /// Torsion-lane stride (`2 × n_residues`).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of CCD lockstep blocks ([`PopulationArena::ccd_block_width`]
    /// members each, the final block possibly smaller).
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Members per CCD lockstep block, as reported by the executor backend
    /// this arena was allocated for.
    pub fn ccd_block_width(&self) -> usize {
        self.ccd_block_width
    }

    /// The member range of one closure block.
    #[cfg(test)]
    fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        let lo = block * self.ccd_block_width;
        lo..((lo + self.ccd_block_width).min(self.n_members))
    }

    /// Hand every member's scoring scratch back to `pool` (used on every
    /// exit path of a controlled run, including cancellation).
    pub(crate) fn release_scratches(&mut self, pool: Option<&ScratchPool>) {
        if let Some(pool) = pool {
            pool.release_all(
                self.slots
                    .iter_mut()
                    .map(|s| std::mem::take(&mut s.scratch)),
            );
        }
    }

    /// Drain the arena into the final population, one [`Conformation`] per
    /// member, mirroring the reference implementation's `Member → Conformation`
    /// harvest.
    pub(crate) fn into_population(self) -> Vec<crate::conformation::Conformation> {
        (0..self.n_members)
            .map(|i| crate::conformation::Conformation {
                torsions: Torsions::from_flat(
                    self.torsions[i * self.stride..(i + 1) * self.stride].to_vec(),
                ),
                scores: self.scores[i],
                closure_deviation: self.closure_dev[i],
                fitness: self.fitness[i],
                rmsd_to_native: self.rmsd[i],
                accepted_moves: self.accepted_moves[i],
                proposed_moves: self.proposed_moves[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_layout_and_block_partition() {
        let arena = PopulationArena::new(20, 12, 3, 3, None, 8);
        assert_eq!(arena.n_members(), 20);
        assert_eq!(arena.stride(), 24);
        assert_eq!(arena.torsions.len(), 20 * 24);
        assert_eq!(arena.n_blocks(), 3);
        assert_eq!(arena.ccd_block_width(), 8);
        assert_eq!(arena.block_range(0), 0..8);
        assert_eq!(arena.block_range(2), 16..20);
        // CSR complex partition: stride partition of 20 over 3 complexes is
        // 7 + 7 + 6 sorted positions.
        assert_eq!(arena.complex_offsets, vec![0, 7, 14, 20]);
    }

    #[test]
    fn arena_block_partition_follows_runtime_width() {
        let arena = PopulationArena::new(20, 12, 3, 3, None, 6);
        assert_eq!(arena.ccd_block_width(), 6);
        assert_eq!(arena.n_blocks(), 4);
        assert_eq!(arena.block_range(0), 0..6);
        assert_eq!(arena.block_range(3), 18..20);
        assert_eq!(arena.block_ccd_us.len(), 4);
        assert_eq!(arena.ccd_blocks.len(), 4);
    }

    #[test]
    fn into_population_round_trips_member_state() {
        let mut arena = PopulationArena::new(3, 2, 2, 1, None, 8);
        for i in 0..3 {
            for k in 0..4 {
                arena.torsions[i * 4 + k] = (i * 4 + k) as f64 * 0.25;
            }
            arena.scores[i] = ScoreVector::new(i as f64, 1.0, 2.0);
            arena.fitness[i] = i as f64;
            arena.closure_dev[i] = 0.1 * i as f64;
            arena.rmsd[i] = 1.0 + i as f64;
            arena.proposed_moves[i] = 5;
            arena.accepted_moves[i] = i;
        }
        let population = arena.into_population();
        assert_eq!(population.len(), 3);
        assert_eq!(population[1].torsions.as_slice(), &[1.0, 1.25, 1.5, 1.75]);
        assert_eq!(population[2].scores.vdw(), 2.0);
        assert_eq!(population[2].accepted_moves, 2);
        assert_eq!(population[0].proposed_moves, 5);
    }
}
