//! Temperature schedules for the Metropolis sampler.
//!
//! The paper notes that "temperature annealing techniques can be used to
//! achieve fast barrier crossing" (citing accelerated simulated tempering)
//! and that MOSCEM adjusts the temperature "according to acceptance rate".
//! This module packages the supported schedules behind one type so the
//! sampler, the ablation benches and downstream users can swap them:
//!
//! * [`TemperatureSchedule::Adaptive`] — the paper's acceptance-band
//!   controller (the sampler's default);
//! * [`TemperatureSchedule::Geometric`] — classic simulated annealing
//!   `T_k = T_0 · r^k`;
//! * [`TemperatureSchedule::Tempering`] — accelerated simulated tempering:
//!   a ladder of temperatures with stochastic up/down moves, biased upward
//!   when the chain stops accepting (fast barrier crossing).
//! * [`TemperatureSchedule::Fixed`] — constant temperature (baseline).

use rand::Rng;

/// A temperature schedule for the fitness-landscape Metropolis test.
#[derive(Debug, Clone, PartialEq)]
pub enum TemperatureSchedule {
    /// Constant temperature.
    Fixed {
        /// The temperature.
        temperature: f64,
    },
    /// Geometric cooling `T_k = T_0 · ratio^k`, clamped at `min`.
    Geometric {
        /// Starting temperature.
        initial: f64,
        /// Cooling ratio per iteration (0 < ratio < 1).
        ratio: f64,
        /// Temperature floor.
        min: f64,
    },
    /// Acceptance-band adaptive control (the paper's scheme): multiply the
    /// temperature when acceptance drops below the band, divide when it
    /// rises above it.
    Adaptive {
        /// Starting temperature.
        initial: f64,
        /// Acceptance band (low, high).
        band: (f64, f64),
        /// Adjustment factor (> 1).
        factor: f64,
        /// Temperature floor.
        min: f64,
        /// Temperature ceiling.
        max: f64,
    },
    /// Accelerated simulated tempering over a discrete ladder.
    Tempering {
        /// The temperature ladder, ordered from coldest to hottest.
        ladder: Vec<f64>,
        /// Probability of proposing a rung change each iteration.
        move_probability: f64,
    },
}

impl TemperatureSchedule {
    /// The paper's default: adaptive control in the `[0.2, 0.5]` band.
    pub fn paper_default(initial: f64) -> TemperatureSchedule {
        TemperatureSchedule::Adaptive {
            initial,
            band: (0.2, 0.5),
            factor: 1.15,
            min: 1e-3,
            max: 10.0,
        }
    }

    /// Initial temperature of the schedule.
    pub fn initial_temperature(&self) -> f64 {
        match self {
            TemperatureSchedule::Fixed { temperature } => *temperature,
            TemperatureSchedule::Geometric { initial, .. } => *initial,
            TemperatureSchedule::Adaptive { initial, .. } => *initial,
            TemperatureSchedule::Tempering { ladder, .. } => {
                *ladder.first().expect("tempering ladder must not be empty")
            }
        }
    }

    /// Create the mutable controller that tracks the schedule during a run.
    pub fn controller(&self) -> TemperatureController {
        TemperatureController {
            schedule: self.clone(),
            temperature: self.initial_temperature(),
            iteration: 0,
            rung: 0,
        }
    }
}

/// Run-time state of a temperature schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureController {
    schedule: TemperatureSchedule,
    temperature: f64,
    iteration: usize,
    rung: usize,
}

impl TemperatureController {
    /// The current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// The number of updates applied so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Advance the schedule by one iteration given the iteration's
    /// acceptance rate.  `rng` is only used by the tempering schedule.
    pub fn update<R: Rng + ?Sized>(&mut self, acceptance_rate: f64, rng: &mut R) -> f64 {
        self.iteration += 1;
        match &self.schedule {
            TemperatureSchedule::Fixed { temperature } => {
                self.temperature = *temperature;
            }
            TemperatureSchedule::Geometric {
                initial,
                ratio,
                min,
            } => {
                self.temperature = (initial * ratio.powi(self.iteration as i32)).max(*min);
            }
            TemperatureSchedule::Adaptive {
                band,
                factor,
                min,
                max,
                ..
            } => {
                if acceptance_rate < band.0 {
                    self.temperature = (self.temperature * factor).min(*max);
                } else if acceptance_rate > band.1 {
                    self.temperature = (self.temperature / factor).max(*min);
                }
            }
            TemperatureSchedule::Tempering {
                ladder,
                move_probability,
            } => {
                if rng.gen::<f64>() < *move_probability {
                    // Bias upward (hotter) when the chain is frozen, downward
                    // when it accepts freely — the "accelerated" part.
                    let go_up = if acceptance_rate < 0.1 {
                        true
                    } else if acceptance_rate > 0.6 {
                        false
                    } else {
                        rng.gen::<bool>()
                    };
                    if go_up && self.rung + 1 < ladder.len() {
                        self.rung += 1;
                    } else if !go_up && self.rung > 0 {
                        self.rung -= 1;
                    }
                }
                self.temperature = ladder[self.rung];
            }
        }
        self.temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::StreamRngFactory;

    fn rng() -> rand_chacha::ChaCha8Rng {
        StreamRngFactory::new(1).stream(0, 0)
    }

    #[test]
    fn fixed_schedule_never_moves() {
        let mut c = TemperatureSchedule::Fixed { temperature: 0.7 }.controller();
        let mut r = rng();
        for rate in [0.0, 0.5, 1.0] {
            assert_eq!(c.update(rate, &mut r), 0.7);
        }
        assert_eq!(c.iteration(), 3);
    }

    #[test]
    fn geometric_schedule_cools_monotonically_to_floor() {
        let mut c = TemperatureSchedule::Geometric {
            initial: 1.0,
            ratio: 0.5,
            min: 0.05,
        }
        .controller();
        let mut r = rng();
        let mut last = c.temperature();
        for _ in 0..10 {
            let t = c.update(0.3, &mut r);
            assert!(t <= last + 1e-12);
            last = t;
        }
        assert!((last - 0.05).abs() < 1e-12, "cooled past the floor: {last}");
    }

    #[test]
    fn adaptive_schedule_tracks_the_band() {
        let mut c = TemperatureSchedule::paper_default(0.25).controller();
        let mut r = rng();
        // Starved acceptance -> temperature rises.
        let t_up = c.update(0.05, &mut r);
        assert!(t_up > 0.25);
        // Too-easy acceptance -> temperature falls.
        let t_down_start = c.temperature();
        let t_down = c.update(0.9, &mut r);
        assert!(t_down < t_down_start);
        // Inside the band -> unchanged.
        let t_hold = c.temperature();
        assert_eq!(c.update(0.35, &mut r), t_hold);
    }

    #[test]
    fn adaptive_schedule_respects_bounds() {
        let mut c = TemperatureSchedule::Adaptive {
            initial: 1.0,
            band: (0.2, 0.5),
            factor: 3.0,
            min: 0.5,
            max: 2.0,
        }
        .controller();
        let mut r = rng();
        for _ in 0..10 {
            c.update(0.0, &mut r);
        }
        assert!(c.temperature() <= 2.0 + 1e-12);
        for _ in 0..10 {
            c.update(1.0, &mut r);
        }
        assert!(c.temperature() >= 0.5 - 1e-12);
    }

    #[test]
    fn tempering_walks_the_ladder_and_heats_when_frozen() {
        let ladder = vec![0.1, 0.2, 0.4, 0.8];
        let mut c = TemperatureSchedule::Tempering {
            ladder: ladder.clone(),
            move_probability: 1.0,
        }
        .controller();
        let mut r = rng();
        assert_eq!(c.temperature(), 0.1);
        // Frozen chain: always moves up until the top rung.
        for _ in 0..10 {
            c.update(0.0, &mut r);
        }
        assert_eq!(c.temperature(), 0.8);
        // Freely accepting chain: cools back down.
        for _ in 0..10 {
            c.update(0.9, &mut r);
        }
        assert_eq!(c.temperature(), 0.1);
        // Temperatures always come from the ladder.
        for _ in 0..20 {
            let t = c.update(0.3, &mut r);
            assert!(ladder.contains(&t));
        }
    }

    #[test]
    #[should_panic]
    fn empty_tempering_ladder_panics() {
        let _ = TemperatureSchedule::Tempering {
            ladder: vec![],
            move_probability: 0.5,
        }
        .initial_temperature();
    }
}
