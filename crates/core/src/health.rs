//! Numerical health guards: the post-score finite sweep.
//!
//! A NaN that enters the Pareto ranking is worse than a crash: dominance
//! comparisons against NaN are all-false, so a poisoned member silently
//! floats to the non-dominated front and the job "succeeds" with garbage.
//! (The Metropolis closure gate has the same blind spot: `NaN > bound` is
//! false, so a NaN closure deviation *passes* the gate.)  The staged
//! pipeline therefore runs a cheap population-wide sweep right after the
//! scoring stage — one `[HealthSweep]` kernel launch over the SoA arena,
//! zero-alloc like every other stage — classifying each member's candidate
//! lanes as finite or poisoned.  What happens to a poisoned member is the
//! config's [`NumericGuard`](crate::NumericGuard) policy: fail the job
//! with a typed [`Error::NumericalFault`](crate::Error), or quarantine the
//! member and keep sampling.
//!
//! The per-member classification lives here as free functions over plain
//! slices so the perf harness can measure the sweep in isolation (the CI
//! gate bounds its overhead at 3% of a staged iteration).

use lms_scoring::{Objective, ScoreVector};

/// Which candidate lane of a member carried the first non-finite value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonedLane {
    /// A scoring-function output slot.
    Objective(Objective),
    /// A torsion angle (flat index within the member's lane).
    Torsion(usize),
    /// The closure deviation was NaN.  (An *infinite* deviation is a
    /// legitimate "closure failed / member quarantined" sentinel and is
    /// force-rejected by the Metropolis gate, so only NaN is poison here.)
    ClosureDeviation,
    /// The RMSD-to-native observable.
    Rmsd,
}

impl PoisonedLane {
    /// The poisoned scoring objective, when the poison was a score slot.
    pub fn objective(&self) -> Option<Objective> {
        match self {
            PoisonedLane::Objective(o) => Some(*o),
            _ => None,
        }
    }
}

/// The hot path of the `[HealthSweep]` kernel: whether every candidate
/// lane of one member is numerically sound.  Branch-free early-out over
/// the score slots first (the most likely poison entry point), then the
/// torsion lane, then the closure/observable scalars.
#[inline]
pub fn member_is_finite(
    score: &ScoreVector,
    torsion_lane: &[f64],
    closure_dev: f64,
    rmsd: f64,
) -> bool {
    score.is_finite()
        && torsion_lane.iter().all(|t| t.is_finite())
        && !closure_dev.is_nan()
        && !rmsd.is_nan()
}

/// The diagnostic path: name the first poisoned lane of a member (in the
/// same order `member_is_finite` checks them), or `None` when the member
/// is sound.  Only runs on members the sweep already flagged, so it is
/// off the hot path.
pub fn member_poison(
    score: &ScoreVector,
    torsion_lane: &[f64],
    closure_dev: f64,
    rmsd: f64,
) -> Option<PoisonedLane> {
    if let Some(objective) = score.first_non_finite() {
        return Some(PoisonedLane::Objective(objective));
    }
    if let Some(k) = torsion_lane.iter().position(|t| !t.is_finite()) {
        return Some(PoisonedLane::Torsion(k));
    }
    if closure_dev.is_nan() {
        return Some(PoisonedLane::ClosureDeviation);
    }
    if rmsd.is_nan() {
        return Some(PoisonedLane::Rmsd);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_members_pass_the_sweep() {
        let s = ScoreVector::new(1.0, 2.0, 3.0);
        assert!(member_is_finite(&s, &[0.1, -0.2], 0.3, 1.5));
        assert_eq!(member_poison(&s, &[0.1, -0.2], 0.3, 1.5), None);
        // Infinite closure deviation is the quarantine/unclosed sentinel,
        // not poison.
        assert!(member_is_finite(&s, &[0.1], f64::INFINITY, 1.5));
        // Infinite RMSD is the "not yet measured" initial value.
        assert!(member_is_finite(&s, &[0.1], 0.3, f64::INFINITY));
    }

    #[test]
    fn poison_is_caught_and_named_in_check_order() {
        let bad_score = ScoreVector::new(1.0, f64::NAN, 3.0);
        let good = ScoreVector::new(1.0, 2.0, 3.0);
        assert!(!member_is_finite(&bad_score, &[0.1], 0.3, 1.5));
        assert_eq!(
            member_poison(&bad_score, &[0.1], 0.3, 1.5),
            Some(PoisonedLane::Objective(Objective::Dist))
        );
        assert_eq!(
            member_poison(&bad_score, &[0.1], 0.3, 1.5)
                .unwrap()
                .objective(),
            Some(Objective::Dist)
        );
        assert!(!member_is_finite(
            &good,
            &[0.1, f64::NEG_INFINITY],
            0.3,
            1.5
        ));
        assert_eq!(
            member_poison(&good, &[0.1, f64::NEG_INFINITY], 0.3, 1.5),
            Some(PoisonedLane::Torsion(1))
        );
        assert!(!member_is_finite(&good, &[0.1], f64::NAN, 1.5));
        assert_eq!(
            member_poison(&good, &[0.1], f64::NAN, 1.5),
            Some(PoisonedLane::ClosureDeviation)
        );
        assert!(!member_is_finite(&good, &[0.1], 0.3, f64::NAN));
        assert_eq!(
            member_poison(&good, &[0.1], 0.3, f64::NAN),
            Some(PoisonedLane::Rmsd)
        );
        assert_eq!(
            member_poison(&good, &[0.1], 0.3, f64::NAN)
                .unwrap()
                .objective(),
            None
        );
    }
}
