//! The batch job engine: many concurrent loop-modeling jobs over shared
//! resources.
//!
//! The paper's premise is throughput — populations of conformations scored
//! in parallel — and a production deployment faces the same shape one level
//! up: many *jobs* (different loops, configs, seeds) competing for one
//! machine.  [`LoopModelingEngine`] owns what jobs share — the
//! [`KnowledgeBase`], the [`Executor`], and a [`ScratchPool`] of warm
//! scoring workspaces — and schedules submitted [`Job`]s across worker
//! threads, splitting the executor's thread budget so a batch saturates the
//! machine instead of oversubscribing it (and so small jobs no longer leave
//! cores idle while one job's population kernel winds down).
//!
//! Lifecycle: **build → submit → stream → harvest**.
//!
//! ```text
//! let engine = LoopModelingEngine::builder(kb).build()?;   // build
//! let batch  = engine.submit(jobs);                        // submit
//! for result in batch { … }                                // stream
//! ```
//!
//! Results stream back in completion order through the [`BatchHandle`]
//! iterator; each job can be observed ([`BatchHandle::progress`]) and
//! cancelled ([`BatchHandle::cancel`]) while the rest of the batch keeps
//! running.  Because every trajectory derives all randomness from its own
//! seed (never from scheduling), an N-job batch is **bit-identical** to N
//! sequential [`MoscemSampler::run_with_seed`] calls — property-tested in
//! `tests/batch_engine.rs`.

use crate::config::SamplerConfig;
use crate::error::{ConfigError, Error};
use crate::sampler::{MoscemSampler, RunControls, TrajectoryResult};
use lms_protein::LoopTarget;
use lms_scoring::{KnowledgeBase, ScratchPool};
use lms_simt::{Capabilities, Executor, ExecutorConfig, TimingModel};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// The supervisor's bounded-retry policy for failures the
/// [failure taxonomy](Error) classifies as retryable (panics, stalls,
/// numerical faults).  Because every trajectory derives all randomness from
/// its seed, a retry re-runs the job with the **same seed**: a transient
/// fault (an injected one, a scheduling hiccup) yields a result
/// bit-identical to an unfaulted run, while a deterministic fault fails the
/// same way until the attempt budget is spent.
///
/// The default policy performs no retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (minimum 1).
    pub max_attempts: usize,
    /// Backoff slept before the first retry; doubled per further retry.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::no_retries()
    }
}

impl RetryPolicy {
    /// No retries: every failure is final (the default).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Retry retryable failures up to `max_attempts` total attempts with a
    /// small default backoff (10 ms doubling, capped at 250 ms).
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
        }
    }

    /// Override the backoff schedule: `base` before the first retry,
    /// doubling per further retry, capped at `max`.
    #[must_use]
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }

    /// The backoff slept after the `attempt`-th failed attempt (1-based):
    /// `base_backoff × 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: usize) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16) as u32;
        self.base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }
}

/// One failed attempt in a job's supervisor trace (see
/// [`JobResult::attempts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptFailure {
    /// Which attempt failed (1-based; attempt 1 is the initial run).
    pub attempt: usize,
    /// The typed error that ended the attempt.
    pub error: Error,
    /// Backoff slept before the retry that followed, or zero when no
    /// retry followed (the failure was terminal or the budget was spent).
    pub backoff: Duration,
}

/// Engine-unique identifier of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The raw id (monotonically increasing per engine).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One unit of work for the engine: a target, a sampling configuration and
/// a seed.  Build with [`Job::builder`], which validates the configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Job {
    /// Human-readable label carried through to the [`JobResult`] (defaults
    /// to the target's `name(start:end)` label).
    pub label: String,
    /// The loop to model.
    pub target: LoopTarget,
    /// The trajectory configuration.
    pub config: SamplerConfig,
    /// The trajectory seed (defaults to `config.seed`).
    pub seed: u64,
    /// Deterministic fault plan injected into this job's kernel launches
    /// (robustness testing only).  One session spans the whole job,
    /// **including retries**: launch counters keep advancing across
    /// attempts, so a fault keyed to an early launch index behaves like a
    /// transient and a same-seed retry runs past it cleanly.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<lms_simt::FaultPlan>,
}

impl Job {
    /// Start building a job for `target` with the default configuration.
    pub fn builder(target: LoopTarget) -> JobBuilder {
        JobBuilder {
            label: None,
            seed: None,
            config: SamplerConfig::default(),
            target,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

/// Builder for [`Job`]; validates the configuration on
/// [`JobBuilder::build`].
#[derive(Debug, Clone)]
#[must_use = "a job builder does nothing until .build() is called"]
pub struct JobBuilder {
    label: Option<String>,
    seed: Option<u64>,
    config: SamplerConfig,
    target: LoopTarget,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<lms_simt::FaultPlan>,
}

impl JobBuilder {
    /// Set the sampling configuration (defaults to
    /// `SamplerConfig::default()`).
    pub fn config(mut self, config: SamplerConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the trajectory seed (defaults to the configuration's seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Set the job label (defaults to the target's label).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Arm a deterministic fault plan on this job's kernel launches (see
    /// [`Job::fault_plan`]).
    #[cfg(feature = "fault-injection")]
    pub fn fault_plan(mut self, plan: lms_simt::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validate the configuration and return the finished job.
    pub fn build(self) -> Result<Job, ConfigError> {
        self.config.validate()?;
        Ok(Job {
            label: self.label.unwrap_or_else(|| self.target.label()),
            seed: self.seed.unwrap_or(self.config.seed),
            config: self.config,
            target: self.target,
            #[cfg(feature = "fault-injection")]
            fault_plan: self.fault_plan,
        })
    }
}

/// Lifecycle state of one job in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is running its trajectory.
    Running,
    /// Finished with a [`TrajectoryResult`].
    Completed,
    /// Finished with an error other than cancellation.
    Failed,
    /// Stopped by [`BatchHandle::cancel`] (before or during its run).
    Cancelled,
}

impl JobStatus {
    fn as_u8(self) -> u8 {
        match self {
            JobStatus::Queued => 0,
            JobStatus::Running => 1,
            JobStatus::Completed => 2,
            JobStatus::Failed => 3,
            JobStatus::Cancelled => 4,
        }
    }

    fn from_u8(v: u8) -> JobStatus {
        match v {
            0 => JobStatus::Queued,
            1 => JobStatus::Running,
            2 => JobStatus::Completed,
            3 => JobStatus::Failed,
            _ => JobStatus::Cancelled,
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// Point-in-time view of one job's progress (from
/// [`BatchHandle::progress`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    /// The job's id.
    pub id: JobId,
    /// The job's label.
    pub label: String,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// MCMC iterations fully completed so far.
    pub iterations_done: usize,
    /// Total MCMC iterations the job was configured for.
    pub total_iterations: usize,
}

/// The terminal outcome of one job, delivered through the batch's stream.
#[derive(Debug)]
#[must_use]
pub struct JobResult {
    /// The job's id (ids follow submission order, results arrive in
    /// completion order).
    pub id: JobId,
    /// The job's label.
    pub label: String,
    /// The seed the trajectory ran with.
    pub seed: u64,
    /// The trajectory, or the typed error that ended the job.
    pub outcome: Result<TrajectoryResult, Error>,
    /// The supervisor's attempt trace: one entry per **failed** attempt,
    /// in order.  Empty when the job succeeded first try; when the job
    /// succeeded after retries, these are the transient failures the
    /// same-seed reruns recovered from; when `outcome` is an error, the
    /// last entry is that final failure (with zero backoff).
    pub attempts: Vec<AttemptFailure>,
    /// Capabilities of the (split) executor this job's kernels ran on —
    /// backend, lane width, thread budget, CCD block width — so every
    /// result is attributable to a backend.
    pub capabilities: Capabilities,
}

impl JobResult {
    /// Whether the job ended via cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self.outcome, Err(Error::Cancelled { .. }))
    }
}

/// The scheduler's shared work queue: jobs paired with their tickets,
/// popped by worker threads in submission order.
type JobQueue = Arc<Mutex<VecDeque<(Arc<Ticket>, Job)>>>;

/// Shared per-job state between the scheduler, its worker, and the handle.
#[derive(Debug)]
struct Ticket {
    id: JobId,
    label: String,
    total_iterations: usize,
    iterations_done: AtomicUsize,
    status: AtomicU8,
    cancel: AtomicBool,
}

impl Ticket {
    fn set_status(&self, status: JobStatus) {
        self.status.store(status.as_u8(), Ordering::Relaxed);
    }

    fn status(&self) -> JobStatus {
        JobStatus::from_u8(self.status.load(Ordering::Relaxed))
    }
}

/// What every job shares: the knowledge base, the executor, the timing
/// model, and the warm scratch pool.
#[derive(Debug)]
struct EngineInner {
    kb: Arc<KnowledgeBase>,
    executor: Executor,
    timing: TimingModel,
    scratch: ScratchPool,
    concurrency: usize,
    retry: RetryPolicy,
    next_id: AtomicU64,
}

/// Builder for [`LoopModelingEngine`].
#[derive(Debug)]
#[must_use = "an engine builder does nothing until .build() is called"]
pub struct EngineBuilder {
    kb: Arc<KnowledgeBase>,
    executor: ExecutorConfig,
    timing: TimingModel,
    concurrency: usize,
    retry: RetryPolicy,
}

impl EngineBuilder {
    /// Set the executor configuration jobs run their population kernels on
    /// (default: [`ExecutorConfig::parallel`]).  Accepts an
    /// [`ExecutorConfig`] directly or an already-built [`Executor`] (whose
    /// configuration is re-captured), and validates it in
    /// [`EngineBuilder::build`].  Concurrent jobs split the built
    /// executor's thread budget via [`Executor::split`].
    ///
    /// ```
    /// # use lms_core::LoopModelingEngine;
    /// # use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
    /// # use lms_simt::ExecutorConfig;
    /// # fn main() -> Result<(), lms_core::ConfigError> {
    /// let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    /// let engine = LoopModelingEngine::builder(kb)
    ///     .executor(ExecutorConfig::parallel().threads(4).ccd_block_width(16))
    ///     .build()?;
    /// assert_eq!(engine.executor().ccd_block_width(), 16);
    /// # Ok(())
    /// # }
    /// ```
    pub fn executor(mut self, executor: impl Into<ExecutorConfig>) -> Self {
        self.executor = executor.into();
        self
    }

    /// Set the device timing model applied to every job's trajectory.
    pub fn timing_model(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Set the maximum number of jobs running at once (default: one per
    /// available core).  Must be at least 1.
    pub fn concurrency(mut self, jobs: usize) -> Self {
        self.concurrency = jobs;
        self
    }

    /// Set the supervisor's [`RetryPolicy`] for retryable failures
    /// (default: no retries).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Validate and build the engine.  The executor configuration is
    /// validated here; a rejected one (zero/oversized CCD block width, a
    /// backend missing its cargo feature) surfaces as
    /// [`ConfigError::InvalidExecutor`].
    pub fn build(self) -> Result<LoopModelingEngine, ConfigError> {
        if self.concurrency == 0 {
            return Err(ConfigError::ZeroConcurrency);
        }
        let executor = self.executor.build()?;
        Ok(LoopModelingEngine {
            inner: Arc::new(EngineInner {
                kb: self.kb,
                executor,
                timing: self.timing,
                scratch: ScratchPool::new(),
                concurrency: self.concurrency,
                retry: self.retry,
                next_id: AtomicU64::new(0),
            }),
        })
    }
}

/// The batch loop-modeling engine.
///
/// Cheap to clone (clones share the knowledge base, executor and scratch
/// pool).  See the [module docs](self) for the lifecycle and an example.
#[derive(Debug, Clone)]
pub struct LoopModelingEngine {
    inner: Arc<EngineInner>,
}

impl LoopModelingEngine {
    /// Start building an engine over a pre-built knowledge base.
    pub fn builder(kb: Arc<KnowledgeBase>) -> EngineBuilder {
        EngineBuilder {
            kb,
            executor: ExecutorConfig::parallel(),
            timing: TimingModel::default(),
            concurrency: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            retry: RetryPolicy::no_retries(),
        }
    }

    /// The knowledge base every job scores against.
    pub fn knowledge_base(&self) -> &Arc<KnowledgeBase> {
        &self.inner.kb
    }

    /// The executor jobs run on (before per-batch splitting).
    pub fn executor(&self) -> &Executor {
        &self.inner.executor
    }

    /// Maximum number of jobs running at once.
    pub fn concurrency(&self) -> usize {
        self.inner.concurrency
    }

    /// The supervisor's retry policy for retryable failures.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry
    }

    /// The engine-owned pool of scoring workspaces jobs lease from.
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.inner.scratch
    }

    /// Run one job to completion on the calling thread, using the engine's
    /// full executor and shared scratch pool.
    pub fn run(&self, job: Job) -> Result<TrajectoryResult, Error> {
        let sampler = MoscemSampler::try_new(job.target, Arc::clone(&self.inner.kb), job.config)?
            .with_timing_model(self.inner.timing.clone());
        let controls = RunControls::new().scratch_pool(&self.inner.scratch);
        sampler.run_controlled(&self.inner.executor, job.seed, &controls)
    }

    /// Submit a batch of jobs and return immediately with a streaming
    /// handle.  Up to [`concurrency`](LoopModelingEngine::concurrency)
    /// worker threads pull jobs from the queue, each running its population
    /// kernels on a `1/workers` split of the engine's executor; results are
    /// delivered through the handle in completion order.
    ///
    /// **Drain semantics**: dropping the handle cancels jobs still queued
    /// (workers skip them) while jobs already running finish undisturbed —
    /// their results are discarded.  Use [`BatchHandle::cancel_all`] first
    /// to also stop running jobs at their next iteration boundary, or
    /// [`BatchHandle::join`] to wait for everything.
    pub fn submit(&self, jobs: impl IntoIterator<Item = Job>) -> BatchHandle {
        let jobs: Vec<Job> = jobs.into_iter().collect();
        let tickets: Vec<Arc<Ticket>> = jobs
            .iter()
            .map(|job| {
                Arc::new(Ticket {
                    id: JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed)),
                    label: job.label.clone(),
                    total_iterations: job.config.iterations,
                    iterations_done: AtomicUsize::new(0),
                    status: AtomicU8::new(JobStatus::Queued.as_u8()),
                    cancel: AtomicBool::new(false),
                })
            })
            .collect();

        let (tx, rx) = mpsc::channel();
        let pending = jobs.len();
        let workers = self.inner.concurrency.min(pending);
        let queue: JobQueue = Arc::new(Mutex::new(
            tickets.iter().map(Arc::clone).zip(jobs).collect(),
        ));

        for _ in 0..workers {
            let inner = Arc::clone(&self.inner);
            let queue = Arc::clone(&queue);
            // Each worker gets its OWN split of the executor: `split` builds
            // a fresh lazily-initialised pool per call, whereas cloning one
            // split executor would share a single `threads/workers`-sized
            // pool across every concurrent job and serialize the batch onto
            // it.
            let executor = self.inner.executor.split(workers);
            let tx: Sender<JobResult> = tx.clone();
            std::thread::spawn(move || loop {
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                let Some((ticket, job)) = next else { break };
                let result = run_one(&inner, &executor, &ticket, job);
                // A dropped handle discards results (its `Drop` cancelled
                // the still-queued jobs, which workers observe through the
                // tickets before starting them).
                let _ = tx.send(result);
            });
        }

        BatchHandle {
            rx,
            tickets,
            pending,
        }
    }
}

/// Run one job on a worker under the engine's supervisor: honour
/// cancellation, report progress through the ticket, classify failures via
/// the [failure taxonomy](Error) and re-run retryable ones with the **same
/// seed** under the engine's bounded [`RetryPolicy`], recording an attempt
/// trace in the [`JobResult`].
fn run_one(
    inner: &Arc<EngineInner>,
    executor: &Executor,
    ticket: &Arc<Ticket>,
    job: Job,
) -> JobResult {
    let seed = job.seed;
    if ticket.cancel.load(Ordering::Relaxed) {
        ticket.set_status(JobStatus::Cancelled);
        return JobResult {
            id: ticket.id,
            label: ticket.label.clone(),
            seed,
            outcome: Err(Error::Cancelled {
                completed_iterations: 0,
            }),
            attempts: Vec::new(),
            capabilities: executor.capabilities(),
        };
    }
    ticket.set_status(JobStatus::Running);

    // One fault session spans the whole job *including retries*: launch
    // counters keep advancing across attempts, so an injected fault at an
    // early launch index behaves like a transient.
    #[cfg(feature = "fault-injection")]
    let _fault_guard = job
        .fault_plan
        .clone()
        .map(|plan| lms_simt::fault::install(lms_simt::fault::FaultSession::begin(plan)));

    let policy = inner.retry;
    let mut attempts: Vec<AttemptFailure> = Vec::new();
    let outcome = loop {
        let attempt_outcome = match MoscemSampler::try_new(
            job.target.clone(),
            Arc::clone(&inner.kb),
            job.config.clone(),
        ) {
            Err(e) => Err(Error::Config(e)),
            Ok(sampler) => {
                let sampler = sampler.with_timing_model(inner.timing.clone());
                let report = |done: usize, _total: usize| {
                    ticket.iterations_done.store(done, Ordering::Relaxed);
                };
                let controls = RunControls::new()
                    .cancel_flag(&ticket.cancel)
                    .progress(&report)
                    .scratch_pool(&inner.scratch);
                // A panicking job must not take the whole batch down; its
                // leased scratches are lost, which the pool absorbs.
                match catch_unwind(AssertUnwindSafe(|| {
                    sampler.run_controlled(executor, seed, &controls)
                })) {
                    Ok(res) => res,
                    Err(payload) => Err(Error::JobPanicked {
                        label: ticket.label.clone(),
                        detail: panic_detail(payload),
                    }),
                }
            }
        };
        match attempt_outcome {
            Ok(res) => break Ok(res),
            Err(e) => {
                let attempt = attempts.len() + 1;
                let retry = e.is_retryable()
                    && attempt < policy.max_attempts.max(1)
                    && !ticket.cancel.load(Ordering::Relaxed);
                if !retry {
                    attempts.push(AttemptFailure {
                        attempt,
                        error: e.clone(),
                        backoff: Duration::ZERO,
                    });
                    break Err(e);
                }
                let backoff = policy.backoff_for(attempt);
                attempts.push(AttemptFailure {
                    attempt,
                    error: e,
                    backoff,
                });
                ticket.iterations_done.store(0, Ordering::Relaxed);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    };

    ticket.set_status(match &outcome {
        Ok(_) => JobStatus::Completed,
        Err(Error::Cancelled { .. }) => JobStatus::Cancelled,
        Err(_) => JobStatus::Failed,
    });
    JobResult {
        id: ticket.id,
        label: ticket.label.clone(),
        seed,
        outcome,
        attempts,
        capabilities: executor.capabilities(),
    }
}

/// Render a panic payload as text.  `panic!` carries `&str` or `String`;
/// `std::panic::panic_any` callers sometimes box, so `Box<String>` is
/// unwrapped too before giving up on the payload.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<Box<String>>() {
        (**s).clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Streaming handle to a submitted batch.
///
/// Iterate it (or call [`BatchHandle::next_result`]) to receive
/// [`JobResult`]s in completion order; [`BatchHandle::join`] drains
/// everything and restores submission order.
///
/// Dropping the handle performs a **graceful drain**: jobs still queued
/// are cancelled (their workers skip them), jobs already running finish
/// their trajectories undisturbed and their results are discarded.  Use
/// [`BatchHandle::cancel_all`] before dropping to also stop running jobs
/// at their next iteration boundary.
#[derive(Debug)]
#[must_use = "dropping the handle discards the batch's results"]
pub struct BatchHandle {
    rx: Receiver<JobResult>,
    tickets: Vec<Arc<Ticket>>,
    pending: usize,
}

impl BatchHandle {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether the batch was empty at submission.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Ids of the batch's jobs, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.tickets.iter().map(|t| t.id).collect()
    }

    /// Request cancellation of one job.  Its worker observes the flag at
    /// the next iteration boundary (or before starting, if still queued)
    /// and delivers an [`Error::Cancelled`] result; the rest of the batch
    /// is unaffected.  Returns `false` when the id is not in this batch or
    /// the job already reached a terminal state.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.tickets.iter().find(|t| t.id == id) {
            Some(ticket) if !ticket.status().is_terminal() => {
                ticket.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Request cancellation of every job still queued or running.
    pub fn cancel_all(&self) {
        for ticket in &self.tickets {
            if !ticket.status().is_terminal() {
                ticket.cancel.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of every job's progress, in submission order.
    pub fn progress(&self) -> Vec<JobProgress> {
        self.tickets
            .iter()
            .map(|t| JobProgress {
                id: t.id,
                label: t.label.clone(),
                status: t.status(),
                iterations_done: t.iterations_done.load(Ordering::Relaxed),
                total_iterations: t.total_iterations,
            })
            .collect()
    }

    /// Block for the next finished job; `None` once every result has been
    /// delivered.
    pub fn next_result(&mut self) -> Option<JobResult> {
        if self.pending == 0 {
            return None;
        }
        match self.rx.recv() {
            Ok(result) => {
                self.pending -= 1;
                Some(result)
            }
            Err(_) => {
                self.pending = 0;
                None
            }
        }
    }

    /// Drain the whole batch and return its results in submission order.
    pub fn join(mut self) -> Vec<JobResult> {
        let mut results = Vec::with_capacity(self.pending);
        while let Some(r) = self.next_result() {
            results.push(r);
        }
        results.sort_by_key(|r| r.id);
        results
    }
}

impl Iterator for BatchHandle {
    type Item = JobResult;

    /// Streams results in completion order.
    fn next(&mut self) -> Option<JobResult> {
        self.next_result()
    }
}

impl Drop for BatchHandle {
    /// Graceful drain: nobody will look at this batch's results any more,
    /// so jobs still queued are cancelled and their workers skip them.
    /// Jobs already running are left to finish undisturbed (cancelling
    /// them mid-flight is [`BatchHandle::cancel_all`]'s job, an explicit
    /// decision).  After [`BatchHandle::join`] this is a no-op — every
    /// ticket is terminal by then.
    fn drop(&mut self) {
        for ticket in &self.tickets {
            if ticket.status() == JobStatus::Queued {
                ticket.cancel.store(true, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_protein::BenchmarkLibrary;
    use lms_scoring::KnowledgeBaseConfig;

    fn fast_kb() -> Arc<KnowledgeBase> {
        KnowledgeBase::build(KnowledgeBaseConfig::fast())
    }

    fn tiny_config(seed: u64) -> SamplerConfig {
        SamplerConfig::test_scale()
            .to_builder()
            .population_size(12)
            .n_complexes(2)
            .iterations(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn job_for(name: &str, seed: u64) -> Job {
        let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
        Job::builder(target)
            .config(tiny_config(seed))
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn job_builder_defaults_label_and_seed() {
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        let job = Job::builder(target.clone()).build().unwrap();
        assert_eq!(job.label, target.label());
        assert_eq!(job.seed, SamplerConfig::default().seed);
        let named = Job::builder(target)
            .label("my-loop")
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(named.label, "my-loop");
        assert_eq!(named.seed, 9);
    }

    #[test]
    fn job_builder_rejects_invalid_configs() {
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        let err = Job::builder(target)
            .config(SamplerConfig {
                population_size: 0,
                ..SamplerConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPopulation);
    }

    #[test]
    fn engine_builder_rejects_zero_concurrency() {
        let err = LoopModelingEngine::builder(fast_kb())
            .concurrency(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroConcurrency);
    }

    #[test]
    fn batch_results_match_sequential_runs_and_stream_through() {
        let kb = fast_kb();
        let engine = LoopModelingEngine::builder(Arc::clone(&kb))
            .concurrency(2)
            .build()
            .unwrap();
        let names = ["1cex", "5pti", "3pte"];
        let jobs: Vec<Job> = names
            .iter()
            .enumerate()
            .map(|(i, name)| job_for(name, 100 + i as u64))
            .collect();
        let handle = engine.submit(jobs);
        assert_eq!(handle.len(), 3);
        let results = handle.join();
        assert_eq!(results.len(), 3);
        for (i, (result, name)) in results.iter().zip(names.iter()).enumerate() {
            let trajectory = result.outcome.as_ref().expect("job should succeed");
            let target = BenchmarkLibrary::standard().target_by_name(name).unwrap();
            let sampler = MoscemSampler::new(target, Arc::clone(&kb), tiny_config(100 + i as u64));
            let reference =
                sampler.run_with_seed(&ExecutorConfig::scalar().build().unwrap(), 100 + i as u64);
            for (a, b) in trajectory
                .population
                .iter()
                .zip(reference.population.iter())
            {
                assert_eq!(a.torsions, b.torsions);
                assert_eq!(a.scores, b.scores);
            }
        }
        // The engine's pool now holds the populations' scratches.
        assert!(engine.scratch_pool().idle_count() > 0);
    }

    #[test]
    fn progress_reaches_terminal_states() {
        let engine = LoopModelingEngine::builder(fast_kb()).build().unwrap();
        let handle = engine.submit(vec![job_for("1cex", 1), job_for("5pti", 2)]);
        let ids = handle.job_ids();
        assert_eq!(ids.len(), 2);
        assert!(ids[0] < ids[1]);
        let results: Vec<JobResult> = handle.collect();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        // A clean first-try success carries an empty attempt trace.
        assert!(results.iter().all(|r| r.attempts.is_empty()));
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy::with_max_attempts(5)
            .backoff(Duration::from_millis(10), Duration::from_millis(60));
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
        assert_eq!(p.backoff_for(4), Duration::from_millis(60));
        assert_eq!(p.backoff_for(60), Duration::from_millis(60));
        let none = RetryPolicy::no_retries();
        assert_eq!(none.max_attempts, 1);
        assert_eq!(none.backoff_for(1), Duration::ZERO);
        assert_eq!(RetryPolicy::default(), none);
        // `backoff` keeps the cap at least the base.
        let swapped =
            RetryPolicy::with_max_attempts(2).backoff(Duration::from_millis(50), Duration::ZERO);
        assert_eq!(swapped.max_backoff, Duration::from_millis(50));
    }

    #[test]
    fn dropping_the_handle_cancels_queued_jobs_but_not_running_ones() {
        let engine = LoopModelingEngine::builder(fast_kb())
            .concurrency(1)
            .build()
            .unwrap();
        // A first job heavy enough that the worker is still inside it when
        // the handle is dropped below — a tiny job can finish (and let the
        // worker dequeue the second) before this thread reaches the drop.
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        let slow = Job::builder(target)
            .config(
                SamplerConfig::test_scale()
                    .to_builder()
                    .population_size(16)
                    .n_complexes(2)
                    .iterations(40)
                    .seed(1)
                    .build()
                    .unwrap(),
            )
            .seed(1)
            .build()
            .unwrap();
        let handle = engine.submit(vec![slow, job_for("5pti", 2)]);
        let first = Arc::clone(&handle.tickets[0]);
        let second = Arc::clone(&handle.tickets[1]);
        // Wait for the single worker to pick the first job up — the second
        // is then necessarily still queued behind it — and drop the handle
        // while the first is running.
        while first.status() == JobStatus::Queued {
            std::thread::yield_now();
        }
        drop(handle);
        // The worker drains the queue: the first job runs to completion
        // (drop does not shoot down running jobs), the second is skipped.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while !(first.status().is_terminal() && second.status().is_terminal()) {
            assert!(
                std::time::Instant::now() < deadline,
                "workers did not drain the batch"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(first.status(), JobStatus::Completed);
        assert_eq!(second.status(), JobStatus::Cancelled);
    }

    #[test]
    fn cancelling_a_queued_job_skips_it() {
        let engine = LoopModelingEngine::builder(fast_kb())
            .concurrency(1)
            .build()
            .unwrap();
        // With one worker, the second job is still queued while the first
        // runs; cancel it before submission even reaches it by cancelling
        // immediately.
        let handle = engine.submit(vec![job_for("1cex", 1), job_for("5pti", 2)]);
        let second = handle.job_ids()[1];
        assert!(handle.cancel(second));
        let results = handle.join();
        assert!(results[0].outcome.is_ok());
        assert!(results[1].is_cancelled());
    }

    #[test]
    fn empty_batch_terminates_without_spawning_workers() {
        let engine = LoopModelingEngine::builder(fast_kb()).build().unwrap();
        let mut handle = engine.submit(Vec::new());
        assert!(handle.is_empty());
        assert!(handle.progress().is_empty());
        assert!(handle.next_result().is_none());
        assert!(handle.join().is_empty());
    }

    #[test]
    fn workers_get_independent_executor_splits() {
        // Regression guard for the shared-pool bug: two workers must not
        // end up on the same lazily-built pool.  `split` builds a fresh
        // pool per call, so consecutive splits are independent executors.
        let exec = ExecutorConfig::parallel().threads(4).build().unwrap();
        let a = exec.split(2);
        let b = exec.split(2);
        assert!(a.is_parallel() && b.is_parallel());
        assert!(
            !a.shares_pool_with(&b),
            "independent splits must not share a thread pool"
        );
        // Clones DO share, which is exactly what split must avoid.
        assert!(a.shares_pool_with(&a.clone()));
    }

    #[test]
    fn engine_builder_rejects_invalid_executor_configs() {
        let err = LoopModelingEngine::builder(fast_kb())
            .executor(ExecutorConfig::parallel().ccd_block_width(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidExecutor(_)));
    }

    #[test]
    fn job_results_report_executor_capabilities() {
        let engine = LoopModelingEngine::builder(fast_kb())
            .executor(ExecutorConfig::scalar().ccd_block_width(4))
            .build()
            .unwrap();
        assert_eq!(engine.executor().ccd_block_width(), 4);
        let results = engine.submit(vec![job_for("1cex", 5)]).join();
        let caps = results[0].capabilities;
        assert_eq!(caps.backend, lms_simt::Backend::Scalar);
        assert_eq!(caps.ccd_block_width, 4);
        assert_eq!(caps.lane_width, 1);
    }

    #[test]
    fn engine_run_matches_sampler_run() {
        let kb = fast_kb();
        let engine = LoopModelingEngine::builder(Arc::clone(&kb))
            .build()
            .unwrap();
        let job = job_for("1dim", 7);
        let target = job.target.clone();
        let config = job.config.clone();
        let via_engine = engine.run(job).unwrap();
        let reference = MoscemSampler::new(target, kb, config)
            .run_with_seed(&ExecutorConfig::scalar().build().unwrap(), 7);
        for (a, b) in via_engine
            .population
            .iter()
            .zip(reference.population.iter())
        {
            assert_eq!(a.torsions, b.torsions);
            assert_eq!(a.scores, b.scores);
        }
    }
}
