//! Sampler configuration.

use crate::annealing::TemperatureSchedule;
use crate::mutation::MutationConfig;
use lms_closure::CcdConfig;
use lms_scoring::Objective;

/// How the initial population's torsions are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Torsions drawn uniformly from `(-π, π]` — the paper's literal
    /// "initialize N conformations randomly".
    UniformRandom,
    /// Torsions drawn from the per-residue Ramachandran mixture.  This is
    /// the default: it preserves the algorithm (random, independent
    /// initialisation followed by CCD closure) while letting the scaled-down
    /// populations used on a CPU-only host reach the paper's decoy quality;
    /// switch to [`InitMode::UniformRandom`] to match the paper exactly.
    Ramachandran,
}

/// How the sampler turns the three scoring functions into the quantity the
/// Metropolis test acts on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveMode {
    /// The paper's approach: Pareto-strength fitness over all three scoring
    /// functions (MOSCEM).
    MultiScoring,
    /// Global optimisation of a single scoring function — the baseline the
    /// paper argues against (Section II); used by the ablation benches.
    Single(Objective),
    /// Global optimisation of a fixed weighted sum of the three scoring
    /// functions — the "single complicated scoring function" alternative.
    WeightedSum([f64; 3]),
}

/// Full configuration of one sampling trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Population size (the paper's headline configuration is 15,360).
    pub population_size: usize,
    /// Number of complexes the population is partitioned into (the paper
    /// uses 120 at population 15,360, i.e. 128 members per complex).
    pub n_complexes: usize,
    /// Number of MCMC iterations.
    pub iterations: usize,
    /// Threads per block for the device model (the paper uses 128).
    pub threads_per_block: usize,
    /// Master random seed; every conformation derives its own stream.
    pub seed: u64,
    /// Initial Metropolis temperature on the fitness landscape.
    pub initial_temperature: f64,
    /// Lower bound for the adaptive temperature.
    pub min_temperature: f64,
    /// Upper bound for the adaptive temperature.
    pub max_temperature: f64,
    /// Acceptance-rate band (low, high); outside it the temperature is
    /// adjusted by `temperature_adjust`.
    pub acceptance_band: (f64, f64),
    /// Multiplicative temperature adjustment factor (> 1).
    pub temperature_adjust: f64,
    /// Optional explicit temperature schedule.  When set it overrides the
    /// adaptive parameters above (which remain as the default behaviour and
    /// match the paper's acceptance-rate adjustment).
    pub temperature_schedule: Option<TemperatureSchedule>,
    /// Mutation (reproduction) move configuration.
    pub mutation: MutationConfig,
    /// CCD loop-closure configuration used inside the sampling loop.
    pub ccd: CcdConfig,
    /// Maximum loop-closure deviation (Å) a proposed conformation may have
    /// and still enter the Metropolis test: the paper's "loop closure
    /// condition".  Candidates whose CCD run finishes above this are
    /// rejected outright, and members above it are never harvested as
    /// decoys.  Should be at least the CCD tolerance (which bounds the
    /// deviation of a *converged* closure).
    pub max_closure_deviation: f64,
    /// Objective handling (multi-scoring Pareto sampling vs. baselines).
    pub objective_mode: ObjectiveMode,
    /// How the initial population is drawn.
    pub init_mode: InitMode,
    /// Iterations at which to record a population snapshot (Figure 5 uses
    /// 0, 20 and 100).  Iteration 0 is the initial population.
    pub snapshot_iterations: Vec<usize>,
    /// Decoy structural-distinctness threshold in degrees (the paper uses
    /// a maximum torsion deviation of at least 30°).
    pub distinct_threshold_deg: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            population_size: 256,
            n_complexes: 2,
            iterations: 30,
            threads_per_block: 128,
            seed: 2010,
            initial_temperature: 0.25,
            min_temperature: 1e-3,
            max_temperature: 10.0,
            acceptance_band: (0.2, 0.5),
            temperature_adjust: 1.15,
            temperature_schedule: None,
            mutation: MutationConfig::default(),
            ccd: CcdConfig {
                max_sweeps: 24,
                tolerance: 0.25,
                start_index: 0,
            },
            max_closure_deviation: 0.75,
            objective_mode: ObjectiveMode::MultiScoring,
            init_mode: InitMode::Ramachandran,
            snapshot_iterations: Vec::new(),
            distinct_threshold_deg: 30.0,
        }
    }
}

impl SamplerConfig {
    /// The paper's headline configuration: population 15,360 in 120
    /// complexes, 100 iterations, 128 threads per block.
    pub fn paper_scale() -> Self {
        SamplerConfig {
            population_size: 15_360,
            n_complexes: 120,
            iterations: 100,
            ..Default::default()
        }
    }

    /// A configuration scaled for quick tests.
    pub fn test_scale() -> Self {
        SamplerConfig {
            population_size: 48,
            n_complexes: 2,
            iterations: 6,
            ..Default::default()
        }
    }

    /// Number of population members per complex (rounded up; the final
    /// complex may be smaller when the population does not divide evenly).
    pub fn complex_size(&self) -> usize {
        self.population_size.div_ceil(self.n_complexes.max(1))
    }

    /// The effective temperature schedule: the explicit one when set,
    /// otherwise the paper's adaptive scheme built from the scalar fields.
    pub fn effective_temperature_schedule(&self) -> TemperatureSchedule {
        self.temperature_schedule
            .clone()
            .unwrap_or(TemperatureSchedule::Adaptive {
                initial: self.initial_temperature,
                band: self.acceptance_band,
                factor: self.temperature_adjust,
                min: self.min_temperature,
                max: self.max_temperature,
            })
    }

    /// Basic sanity checks; returns a human-readable error for impossible
    /// configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size == 0 {
            return Err("population_size must be positive".into());
        }
        if self.n_complexes == 0 {
            return Err("n_complexes must be positive".into());
        }
        if self.n_complexes > self.population_size {
            return Err(format!(
                "n_complexes ({}) cannot exceed population_size ({})",
                self.n_complexes, self.population_size
            ));
        }
        if self.threads_per_block == 0 {
            return Err("threads_per_block must be positive".into());
        }
        if self.initial_temperature <= 0.0 || self.initial_temperature.is_nan() {
            return Err("initial_temperature must be positive".into());
        }
        if self.acceptance_band.0 >= self.acceptance_band.1 {
            return Err("acceptance band must satisfy low < high".into());
        }
        if self.temperature_adjust <= 1.0 {
            return Err("temperature_adjust must exceed 1".into());
        }
        if self.max_closure_deviation <= 0.0 || self.max_closure_deviation.is_nan() {
            return Err("max_closure_deviation must be positive".into());
        }
        if self.max_closure_deviation < self.ccd.tolerance {
            return Err(format!(
                "max_closure_deviation ({}) must be at least the CCD tolerance ({})",
                self.max_closure_deviation, self.ccd.tolerance
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SamplerConfig::default().validate().is_ok());
        assert!(SamplerConfig::test_scale().validate().is_ok());
    }

    #[test]
    fn paper_scale_matches_headline_numbers() {
        let c = SamplerConfig::paper_scale();
        assert_eq!(c.population_size, 15_360);
        assert_eq!(c.n_complexes, 120);
        assert_eq!(c.iterations, 100);
        assert_eq!(c.threads_per_block, 128);
        assert_eq!(c.complex_size(), 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cases = [
            SamplerConfig {
                population_size: 0,
                ..Default::default()
            },
            SamplerConfig {
                n_complexes: 0,
                ..Default::default()
            },
            SamplerConfig {
                n_complexes: SamplerConfig::default().population_size + 1,
                ..Default::default()
            },
            SamplerConfig {
                acceptance_band: (0.5, 0.2),
                ..Default::default()
            },
            SamplerConfig {
                temperature_adjust: 0.9,
                ..Default::default()
            },
            SamplerConfig {
                initial_temperature: 0.0,
                ..Default::default()
            },
            SamplerConfig {
                max_closure_deviation: 0.0,
                ..Default::default()
            },
            SamplerConfig {
                max_closure_deviation: 0.1,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "config should be rejected: {c:?}");
        }
    }

    #[test]
    fn complex_size_rounds_up() {
        let c = SamplerConfig {
            population_size: 10,
            n_complexes: 3,
            ..Default::default()
        };
        assert_eq!(c.complex_size(), 4);
    }
}
