//! Sampler configuration.
//!
//! [`SamplerConfig`] is `#[non_exhaustive]`: downstream code constructs or
//! tweaks it through [`SamplerConfig::builder`] / [`SamplerConfig::to_builder`],
//! which validate on [`SamplerConfigBuilder::build`] and leave the struct
//! free to grow fields without breaking callers.

use crate::annealing::TemperatureSchedule;
use crate::error::ConfigError;
use crate::mutation::MutationConfig;
use lms_closure::CcdConfig;
use lms_scoring::{Objective, NUM_OBJECTIVES};
use std::time::Duration;

/// Per-job execution budgets, enforced at iteration boundaries (the same
/// checkpoints as cooperative cancellation through
/// [`RunControls`](crate::RunControls)).
///
/// All limits default to `None` (unlimited), so existing configurations
/// are unchanged.  Violations surface as typed errors:
/// [`Error::DeadlineExceeded`](crate::Error) for the wall-clock deadline,
/// [`Error::Stalled`](crate::Error) for the closure-stall streak, and
/// [`ConfigError::IterationBudgetExceeded`](crate::ConfigError) at
/// validation time for the iteration budget (trajectory length is fixed up
/// front, so an over-budget config is a config error, not a runtime one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct JobLimits {
    /// Wall-clock budget for the whole run (initialisation included);
    /// checked at iteration boundaries, so one iteration may overshoot it.
    pub deadline: Option<Duration>,
    /// Upper bound on `iterations`, enforced by
    /// [`SamplerConfig::validate`].
    pub max_iterations: Option<usize>,
    /// Maximum tolerated streak of consecutive iterations in which *no*
    /// member's CCD closure converged (the sampler is burning its budget
    /// without producing candidate loops).
    pub max_closure_stall: Option<usize>,
}

impl JobLimits {
    /// No limits — the default.
    pub fn none() -> JobLimits {
        JobLimits::default()
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> JobLimits {
        self.deadline = Some(deadline);
        self
    }

    /// Set the iteration budget.
    pub fn with_max_iterations(mut self, budget: usize) -> JobLimits {
        self.max_iterations = Some(budget);
        self
    }

    /// Set the closure-stall streak limit.
    pub fn with_max_closure_stall(mut self, streak: usize) -> JobLimits {
        self.max_closure_stall = Some(streak);
        self
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_iterations.is_some() || self.max_closure_stall.is_some()
    }
}

/// What the numerical health sweep does when it finds a non-finite value
/// in a member's candidate lanes (scores, torsions, closure deviation or
/// observables) after the scoring stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericGuard {
    /// Fail the job with [`Error::NumericalFault`](crate::Error) naming
    /// the member and objective — the default: poison never propagates
    /// silently, and the supervisor may retry the job.
    #[default]
    Fail,
    /// Quarantine the poisoned member and keep sampling: during the run
    /// the candidate is force-rejected (the member re-seeds from its own
    /// archived conformation — its slot in the Pareto-ranked population),
    /// and a poisoned *initial* member is re-seeded from the first healthy
    /// member of the initial front.  A fully-poisoned population still
    /// fails the job.
    Quarantine,
}

/// How the initial population's torsions are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Torsions drawn uniformly from `(-π, π]` — the paper's literal
    /// "initialize N conformations randomly".
    UniformRandom,
    /// Torsions drawn from the per-residue Ramachandran mixture.  This is
    /// the default: it preserves the algorithm (random, independent
    /// initialisation followed by CCD closure) while letting the scaled-down
    /// populations used on a CPU-only host reach the paper's decoy quality;
    /// switch to [`InitMode::UniformRandom`] to match the paper exactly.
    Ramachandran,
}

/// How the sampler turns the enabled scoring functions into the quantity
/// the Metropolis test acts on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveMode {
    /// The paper's approach: Pareto-strength fitness over all enabled
    /// scoring functions (MOSCEM).
    MultiScoring,
    /// Global optimisation of a single scoring function — the baseline the
    /// paper argues against (Section II); used by the ablation benches.
    Single(Objective),
    /// Global optimisation of a fixed weighted sum of the scoring
    /// functions — the "single complicated scoring function" alternative.
    /// One weight per objective slot in canonical order; a disabled
    /// objective's slot is always `0.0`, so its weight is inert.
    WeightedSum([f64; NUM_OBJECTIVES]),
}

/// Full configuration of one sampling trajectory.
///
/// Construct with [`SamplerConfig::builder`] (or tweak a preset via
/// [`SamplerConfig::to_builder`]); the fields stay public for reading, but
/// the struct is `#[non_exhaustive]` so it can grow without breaking
/// downstream constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SamplerConfig {
    /// Population size (the paper's headline configuration is 15,360).
    pub population_size: usize,
    /// Number of complexes the population is partitioned into (the paper
    /// uses 120 at population 15,360, i.e. 128 members per complex).
    pub n_complexes: usize,
    /// Number of MCMC iterations.
    pub iterations: usize,
    /// Threads per block for the device model (the paper uses 128).
    pub threads_per_block: usize,
    /// Master random seed; every conformation derives its own stream.
    pub seed: u64,
    /// Initial Metropolis temperature on the fitness landscape.
    pub initial_temperature: f64,
    /// Lower bound for the adaptive temperature.
    pub min_temperature: f64,
    /// Upper bound for the adaptive temperature.
    pub max_temperature: f64,
    /// Acceptance-rate band (low, high); outside it the temperature is
    /// adjusted by `temperature_adjust`.
    pub acceptance_band: (f64, f64),
    /// Multiplicative temperature adjustment factor (> 1).
    pub temperature_adjust: f64,
    /// Optional explicit temperature schedule.  When set it overrides the
    /// adaptive parameters above (which remain as the default behaviour and
    /// match the paper's acceptance-rate adjustment).
    pub temperature_schedule: Option<TemperatureSchedule>,
    /// Mutation (reproduction) move configuration.
    pub mutation: MutationConfig,
    /// CCD loop-closure configuration used inside the sampling loop.
    pub ccd: CcdConfig,
    /// Maximum loop-closure deviation (Å) a proposed conformation may have
    /// and still enter the Metropolis test: the paper's "loop closure
    /// condition".  Candidates whose CCD run finishes above this are
    /// rejected outright, and members above it are never harvested as
    /// decoys.  Should be at least the CCD tolerance (which bounds the
    /// deviation of a *converged* closure).
    pub max_closure_deviation: f64,
    /// Objective handling (multi-scoring Pareto sampling vs. baselines).
    pub objective_mode: ObjectiveMode,
    /// Whether the fourth (solvation/burial) objective is evaluated.  Off by
    /// default: a disabled run is bit-identical to the three-objective
    /// pipeline (the BURIAL slot of every score vector stays exactly `0.0`,
    /// which cannot influence dominance, fitness or acceptance).
    pub burial_objective: bool,
    /// How the initial population is drawn.
    pub init_mode: InitMode,
    /// Iterations at which to record a population snapshot (Figure 5 uses
    /// 0, 20 and 100).  Iteration 0 is the initial population.
    pub snapshot_iterations: Vec<usize>,
    /// Decoy structural-distinctness threshold in degrees (the paper uses
    /// a maximum torsion deviation of at least 30°).
    pub distinct_threshold_deg: f64,
    /// Per-job execution budgets (deadline, iteration budget, closure
    /// stall streak); unlimited by default.
    pub limits: JobLimits,
    /// Policy of the post-score numerical health sweep; fail-fast by
    /// default.
    pub numeric_guard: NumericGuard,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            population_size: 256,
            n_complexes: 2,
            iterations: 30,
            threads_per_block: 128,
            seed: 2010,
            initial_temperature: 0.25,
            min_temperature: 1e-3,
            max_temperature: 10.0,
            acceptance_band: (0.2, 0.5),
            temperature_adjust: 1.15,
            temperature_schedule: None,
            mutation: MutationConfig::default(),
            ccd: CcdConfig::new()
                .with_max_sweeps(24)
                .with_tolerance(0.25)
                .with_start_index(0),
            max_closure_deviation: 0.75,
            objective_mode: ObjectiveMode::MultiScoring,
            burial_objective: false,
            init_mode: InitMode::Ramachandran,
            snapshot_iterations: Vec::new(),
            distinct_threshold_deg: 30.0,
            limits: JobLimits::none(),
            numeric_guard: NumericGuard::Fail,
        }
    }
}

impl SamplerConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> SamplerConfigBuilder {
        SamplerConfigBuilder {
            cfg: SamplerConfig::default(),
        }
    }

    /// Turn this configuration back into a builder (e.g. to tweak a preset:
    /// `SamplerConfig::test_scale().to_builder().seed(7).build()?`).
    pub fn to_builder(&self) -> SamplerConfigBuilder {
        SamplerConfigBuilder { cfg: self.clone() }
    }

    /// The paper's headline configuration: population 15,360 in 120
    /// complexes, 100 iterations, 128 threads per block.
    pub fn paper_scale() -> Self {
        SamplerConfig {
            population_size: 15_360,
            n_complexes: 120,
            iterations: 100,
            ..Default::default()
        }
    }

    /// A configuration scaled for quick tests.
    pub fn test_scale() -> Self {
        SamplerConfig {
            population_size: 48,
            n_complexes: 2,
            iterations: 6,
            ..Default::default()
        }
    }

    /// Number of population members per complex (rounded up; the final
    /// complex may be smaller when the population does not divide evenly).
    pub fn complex_size(&self) -> usize {
        self.population_size.div_ceil(self.n_complexes.max(1))
    }

    /// Number of objectives the sampler actually evaluates under this
    /// configuration (3 core objectives, +1 when the burial term is on).
    /// Drives the device-model work and transfer accounting.
    pub fn active_objectives(&self) -> usize {
        if self.burial_objective {
            NUM_OBJECTIVES
        } else {
            NUM_OBJECTIVES - 1
        }
    }

    /// The effective temperature schedule: the explicit one when set,
    /// otherwise the paper's adaptive scheme built from the scalar fields.
    pub fn effective_temperature_schedule(&self) -> TemperatureSchedule {
        self.temperature_schedule
            .clone()
            .unwrap_or(TemperatureSchedule::Adaptive {
                initial: self.initial_temperature,
                band: self.acceptance_band,
                factor: self.temperature_adjust,
                min: self.min_temperature,
                max: self.max_temperature,
            })
    }

    /// Basic sanity checks; returns the violated invariant for impossible
    /// configurations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.population_size == 0 {
            return Err(ConfigError::ZeroPopulation);
        }
        if self.n_complexes == 0 {
            return Err(ConfigError::ZeroComplexes);
        }
        if self.n_complexes > self.population_size {
            return Err(ConfigError::ComplexesExceedPopulation {
                n_complexes: self.n_complexes,
                population_size: self.population_size,
            });
        }
        if self.threads_per_block == 0 {
            return Err(ConfigError::ZeroThreadsPerBlock);
        }
        if self.initial_temperature <= 0.0 || self.initial_temperature.is_nan() {
            return Err(ConfigError::NonPositiveTemperature {
                value: self.initial_temperature,
            });
        }
        if self.acceptance_band.0 >= self.acceptance_band.1 {
            return Err(ConfigError::InvalidAcceptanceBand {
                low: self.acceptance_band.0,
                high: self.acceptance_band.1,
            });
        }
        if self.temperature_adjust <= 1.0 {
            return Err(ConfigError::TemperatureAdjustNotAboveOne {
                factor: self.temperature_adjust,
            });
        }
        if self.max_closure_deviation <= 0.0 || self.max_closure_deviation.is_nan() {
            return Err(ConfigError::NonPositiveClosureDeviation {
                value: self.max_closure_deviation,
            });
        }
        if self.max_closure_deviation < self.ccd.tolerance {
            return Err(ConfigError::ClosureBelowCcdTolerance {
                max_closure_deviation: self.max_closure_deviation,
                ccd_tolerance: self.ccd.tolerance,
            });
        }
        if !self.burial_objective {
            // With the burial objective off, its slot is constant 0.0 — an
            // objective mode that optimizes only that slot would make every
            // move's Metropolis delta zero (an unguided random walk).
            let depends_on_burial = match self.objective_mode {
                ObjectiveMode::Single(obj) => obj == Objective::Burial,
                ObjectiveMode::WeightedSum(w) => {
                    w[Objective::Burial.index()] != 0.0
                        && w.iter()
                            .enumerate()
                            .all(|(i, &wi)| i == Objective::Burial.index() || wi == 0.0)
                }
                ObjectiveMode::MultiScoring => false,
            };
            if depends_on_burial {
                return Err(ConfigError::BurialObjectiveDisabled);
            }
        }
        if let Some(deadline) = self.limits.deadline {
            if deadline.is_zero() {
                return Err(ConfigError::ZeroDeadline);
            }
        }
        if let Some(budget) = self.limits.max_iterations {
            if self.iterations > budget {
                return Err(ConfigError::IterationBudgetExceeded {
                    iterations: self.iterations,
                    budget,
                });
            }
        }
        if self.limits.max_closure_stall == Some(0) {
            return Err(ConfigError::ZeroStallLimit);
        }
        Ok(())
    }
}

/// Builder for [`SamplerConfig`]; validates the assembled configuration on
/// [`SamplerConfigBuilder::build`].
#[derive(Debug, Clone)]
#[must_use = "a config builder does nothing until .build() is called"]
pub struct SamplerConfigBuilder {
    cfg: SamplerConfig,
}

impl Default for SamplerConfigBuilder {
    fn default() -> Self {
        SamplerConfig::builder()
    }
}

impl From<SamplerConfig> for SamplerConfigBuilder {
    fn from(cfg: SamplerConfig) -> Self {
        SamplerConfigBuilder { cfg }
    }
}

impl SamplerConfigBuilder {
    /// Population size.
    pub fn population_size(mut self, n: usize) -> Self {
        self.cfg.population_size = n;
        self
    }

    /// Number of complexes the population is partitioned into.
    pub fn n_complexes(mut self, n: usize) -> Self {
        self.cfg.n_complexes = n;
        self
    }

    /// Number of MCMC iterations.
    pub fn iterations(mut self, n: usize) -> Self {
        self.cfg.iterations = n;
        self
    }

    /// Threads per block for the device model.
    pub fn threads_per_block(mut self, n: usize) -> Self {
        self.cfg.threads_per_block = n;
        self
    }

    /// Master random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Initial Metropolis temperature.
    pub fn initial_temperature(mut self, t: f64) -> Self {
        self.cfg.initial_temperature = t;
        self
    }

    /// Lower bound for the adaptive temperature.
    pub fn min_temperature(mut self, t: f64) -> Self {
        self.cfg.min_temperature = t;
        self
    }

    /// Upper bound for the adaptive temperature.
    pub fn max_temperature(mut self, t: f64) -> Self {
        self.cfg.max_temperature = t;
        self
    }

    /// Acceptance-rate band `(low, high)`.
    pub fn acceptance_band(mut self, low: f64, high: f64) -> Self {
        self.cfg.acceptance_band = (low, high);
        self
    }

    /// Multiplicative temperature adjustment factor (> 1).
    pub fn temperature_adjust(mut self, factor: f64) -> Self {
        self.cfg.temperature_adjust = factor;
        self
    }

    /// Explicit temperature schedule overriding the adaptive default.
    pub fn temperature_schedule(mut self, schedule: TemperatureSchedule) -> Self {
        self.cfg.temperature_schedule = Some(schedule);
        self
    }

    /// Remove any explicit temperature schedule, restoring the adaptive
    /// default (needed when tweaking a preset that carries one).
    pub fn no_temperature_schedule(mut self) -> Self {
        self.cfg.temperature_schedule = None;
        self
    }

    /// Mutation (reproduction) move configuration.
    pub fn mutation(mut self, mutation: MutationConfig) -> Self {
        self.cfg.mutation = mutation;
        self
    }

    /// CCD loop-closure configuration.
    pub fn ccd(mut self, ccd: CcdConfig) -> Self {
        self.cfg.ccd = ccd;
        self
    }

    /// Maximum loop-closure deviation (Å) admitted to the Metropolis test.
    pub fn max_closure_deviation(mut self, deviation: f64) -> Self {
        self.cfg.max_closure_deviation = deviation;
        self
    }

    /// Objective handling (multi-scoring Pareto sampling vs. baselines).
    pub fn objective_mode(mut self, mode: ObjectiveMode) -> Self {
        self.cfg.objective_mode = mode;
        self
    }

    /// Enable (or disable) the fourth, solvation/burial objective.  With it
    /// off — the default — sampling is bit-identical to the three-objective
    /// pipeline.
    pub fn burial_objective(mut self, enabled: bool) -> Self {
        self.cfg.burial_objective = enabled;
        self
    }

    /// How the initial population is drawn.
    pub fn init_mode(mut self, mode: InitMode) -> Self {
        self.cfg.init_mode = mode;
        self
    }

    /// Iterations at which to record a population snapshot.
    pub fn snapshot_iterations(mut self, iterations: Vec<usize>) -> Self {
        self.cfg.snapshot_iterations = iterations;
        self
    }

    /// Decoy structural-distinctness threshold in degrees.
    pub fn distinct_threshold_deg(mut self, deg: f64) -> Self {
        self.cfg.distinct_threshold_deg = deg;
        self
    }

    /// Per-job execution budgets (deadline / iteration budget / closure
    /// stall streak).
    pub fn limits(mut self, limits: JobLimits) -> Self {
        self.cfg.limits = limits;
        self
    }

    /// Policy of the post-score numerical health sweep.
    pub fn numeric_guard(mut self, guard: NumericGuard) -> Self {
        self.cfg.numeric_guard = guard;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<SamplerConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SamplerConfig::default().validate().is_ok());
        assert!(SamplerConfig::test_scale().validate().is_ok());
    }

    #[test]
    fn paper_scale_matches_headline_numbers() {
        let c = SamplerConfig::paper_scale();
        assert_eq!(c.population_size, 15_360);
        assert_eq!(c.n_complexes, 120);
        assert_eq!(c.iterations, 100);
        assert_eq!(c.threads_per_block, 128);
        assert_eq!(c.complex_size(), 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_roundtrips_and_validates() {
        let built = SamplerConfig::builder()
            .population_size(64)
            .n_complexes(4)
            .iterations(9)
            .seed(101)
            .snapshot_iterations(vec![0, 9])
            .build()
            .unwrap();
        assert_eq!(built.population_size, 64);
        assert_eq!(built.n_complexes, 4);
        assert_eq!(built.seed, 101);
        // to_builder preserves everything it does not touch.
        let tweaked = built.to_builder().seed(202).build().unwrap();
        assert_eq!(tweaked.seed, 202);
        assert_eq!(tweaked.snapshot_iterations, vec![0, 9]);
        assert_eq!(tweaked.iterations, built.iterations);
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        use crate::error::ConfigError as E;
        let cases: Vec<(SamplerConfigBuilder, E)> = vec![
            (
                SamplerConfig::builder().population_size(0),
                E::ZeroPopulation,
            ),
            (SamplerConfig::builder().n_complexes(0), E::ZeroComplexes),
            (
                SamplerConfig::builder().population_size(8).n_complexes(9),
                E::ComplexesExceedPopulation {
                    n_complexes: 9,
                    population_size: 8,
                },
            ),
            (
                SamplerConfig::builder().acceptance_band(0.5, 0.2),
                E::InvalidAcceptanceBand {
                    low: 0.5,
                    high: 0.2,
                },
            ),
            (
                SamplerConfig::builder().temperature_adjust(0.9),
                E::TemperatureAdjustNotAboveOne { factor: 0.9 },
            ),
            (
                SamplerConfig::builder().initial_temperature(0.0),
                E::NonPositiveTemperature { value: 0.0 },
            ),
            (
                SamplerConfig::builder().max_closure_deviation(0.0),
                E::NonPositiveClosureDeviation { value: 0.0 },
            ),
            (
                SamplerConfig::builder().max_closure_deviation(0.1),
                E::ClosureBelowCcdTolerance {
                    max_closure_deviation: 0.1,
                    ccd_tolerance: 0.25,
                },
            ),
        ];
        for (builder, expected) in cases {
            assert_eq!(builder.build().unwrap_err(), expected);
        }
    }

    #[test]
    fn burial_only_objective_modes_require_the_burial_objective() {
        use crate::error::ConfigError as E;
        use lms_scoring::Objective;
        // Optimizing only the (disabled, constant-zero) burial slot is
        // rejected…
        assert_eq!(
            SamplerConfig::builder()
                .objective_mode(ObjectiveMode::Single(Objective::Burial))
                .build()
                .unwrap_err(),
            E::BurialObjectiveDisabled
        );
        assert_eq!(
            SamplerConfig::builder()
                .objective_mode(ObjectiveMode::WeightedSum([0.0, 0.0, 0.0, 1.0]))
                .build()
                .unwrap_err(),
            E::BurialObjectiveDisabled
        );
        // …but becomes valid once the objective is enabled, and a weighted
        // sum with other non-zero weights never depended on it.
        assert!(SamplerConfig::builder()
            .objective_mode(ObjectiveMode::Single(Objective::Burial))
            .burial_objective(true)
            .build()
            .is_ok());
        assert!(SamplerConfig::builder()
            .objective_mode(ObjectiveMode::WeightedSum([1.0, 1.0, 1.0, 1.0]))
            .build()
            .is_ok());
    }

    #[test]
    fn burial_objective_switch_roundtrips() {
        assert!(!SamplerConfig::default().burial_objective);
        let c = SamplerConfig::builder()
            .burial_objective(true)
            .build()
            .unwrap();
        assert!(c.burial_objective);
        let back = c.to_builder().burial_objective(false).build().unwrap();
        assert!(!back.burial_objective);
    }

    #[test]
    fn job_limits_validate_and_roundtrip() {
        use crate::error::ConfigError as E;
        assert!(!JobLimits::none().is_limited());
        let limits = JobLimits::none()
            .with_deadline(Duration::from_secs(5))
            .with_max_iterations(100)
            .with_max_closure_stall(8);
        assert!(limits.is_limited());
        let cfg = SamplerConfig::builder()
            .iterations(50)
            .limits(limits)
            .numeric_guard(NumericGuard::Quarantine)
            .build()
            .unwrap();
        assert_eq!(cfg.limits, limits);
        assert_eq!(cfg.numeric_guard, NumericGuard::Quarantine);

        assert_eq!(
            SamplerConfig::builder()
                .limits(JobLimits::none().with_deadline(Duration::ZERO))
                .build()
                .unwrap_err(),
            E::ZeroDeadline
        );
        assert_eq!(
            SamplerConfig::builder()
                .iterations(10)
                .limits(JobLimits::none().with_max_iterations(5))
                .build()
                .unwrap_err(),
            E::IterationBudgetExceeded {
                iterations: 10,
                budget: 5,
            }
        );
        assert_eq!(
            SamplerConfig::builder()
                .limits(JobLimits::none().with_max_closure_stall(0))
                .build()
                .unwrap_err(),
            E::ZeroStallLimit
        );
    }

    #[test]
    fn complex_size_rounds_up() {
        let c = SamplerConfig {
            population_size: 10,
            n_complexes: 3,
            ..Default::default()
        };
        assert_eq!(c.complex_size(), 4);
    }
}
