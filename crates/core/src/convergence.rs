//! MCMC convergence diagnostics.
//!
//! The paper remarks that "MCMC equilibrium analysis techniques can also be
//! applied to study the convergence of the sampler" and that the optimal
//! population size for covering the Pareto front is an open question.  This
//! module supplies the standard diagnostics a user needs to make those
//! calls on their own runs:
//!
//! * [`gelman_rubin`] — the Gelman–Rubin potential scale-reduction factor
//!   (R̂) across the complexes' score traces (MOSCEM's complexes are exactly
//!   the parallel chains the diagnostic expects);
//! * [`autocorrelation`] — lag autocorrelation of a scalar trace;
//! * [`effective_sample_size`] — ESS from the autocorrelation sum;
//! * [`FrontProgress`] — saturation of the non-dominated front size over
//!   iterations (has the front stopped growing?).

/// Mean of a slice (0 for empty input).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two points).
fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Gelman–Rubin potential scale reduction factor across `chains`, each a
/// trace of a scalar quantity (e.g. one objective's per-complex mean over
/// iterations).  Values near 1 indicate the chains have mixed; values well
/// above 1 mean the sampler has not converged.  Returns `None` when fewer
/// than two chains or fewer than two samples per chain are supplied, or when
/// chain lengths differ.
pub fn gelman_rubin(chains: &[Vec<f64>]) -> Option<f64> {
    let m = chains.len();
    if m < 2 {
        return None;
    }
    let n = chains[0].len();
    if n < 2 || chains.iter().any(|c| c.len() != n) {
        return None;
    }

    let chain_means: Vec<f64> = chains.iter().map(|c| mean(c)).collect();
    let grand_mean = mean(&chain_means);
    // Between-chain variance.
    let b = n as f64 / (m as f64 - 1.0)
        * chain_means
            .iter()
            .map(|cm| (cm - grand_mean).powi(2))
            .sum::<f64>();
    // Within-chain variance.
    let w = chains.iter().map(|c| variance(c)).sum::<f64>() / m as f64;
    if w <= 1e-300 {
        // Degenerate: all chains constant.  Identical constants are
        // perfectly converged; different constants are maximally divergent.
        return Some(if b <= 1e-300 { 1.0 } else { f64::INFINITY });
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    Some((var_plus / w).sqrt())
}

/// Lag-`k` autocorrelation of a scalar trace; `None` if the trace is shorter
/// than `k + 2` or has zero variance.
pub fn autocorrelation(trace: &[f64], lag: usize) -> Option<f64> {
    let n = trace.len();
    if n < lag + 2 {
        return None;
    }
    let m = mean(trace);
    let denom: f64 = trace.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 1e-300 {
        return None;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (trace[i] - m) * (trace[i + lag] - m))
        .sum();
    Some(num / denom)
}

/// Effective sample size from the initial-positive-sequence sum of
/// autocorrelations.  Returns `None` for traces that are too short or
/// constant.
pub fn effective_sample_size(trace: &[f64]) -> Option<f64> {
    let n = trace.len();
    if n < 4 {
        return None;
    }
    let mut rho_sum = 0.0;
    for lag in 1..(n / 2) {
        match autocorrelation(trace, lag) {
            Some(rho) if rho > 0.0 => rho_sum += rho,
            _ => break,
        }
    }
    let ess = n as f64 / (1.0 + 2.0 * rho_sum);
    Some(ess.clamp(1.0, n as f64))
}

/// Saturation analysis of the non-dominated front size over iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontProgress {
    /// `(iteration, front size)` points, in iteration order.
    pub points: Vec<(usize, usize)>,
}

impl FrontProgress {
    /// Build from snapshot data.
    pub fn new(points: Vec<(usize, usize)>) -> Self {
        FrontProgress { points }
    }

    /// Relative growth of the front over the last `window` recorded points:
    /// `(last - first_of_window) / max(first_of_window, 1)`.  Returns `None`
    /// with fewer than two points in the window.
    pub fn recent_growth(&self, window: usize) -> Option<f64> {
        if self.points.len() < 2 || window < 2 {
            return None;
        }
        let w = window.min(self.points.len());
        let slice = &self.points[self.points.len() - w..];
        let first = slice.first()?.1 as f64;
        let last = slice.last()?.1 as f64;
        Some((last - first) / first.max(1.0))
    }

    /// Whether the front has effectively stopped growing (recent growth over
    /// `window` points below `threshold`).
    pub fn is_saturated(&self, window: usize, threshold: f64) -> bool {
        matches!(self.recent_growth(window), Some(g) if g.abs() <= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelman_rubin_near_one_for_identical_chains() {
        let chain: Vec<f64> = (0..100).map(|i| ((i * 37 % 17) as f64) * 0.1).collect();
        let r = gelman_rubin(&[chain.clone(), chain.clone(), chain]).unwrap();
        assert!((r - 1.0).abs() < 0.05, "R-hat {r}");
    }

    #[test]
    fn gelman_rubin_large_for_separated_chains() {
        let a: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64 * 0.01).collect();
        let r = gelman_rubin(&[a, b]).unwrap();
        assert!(r > 10.0, "separated chains should give huge R-hat, got {r}");
    }

    #[test]
    fn gelman_rubin_degenerate_inputs() {
        assert!(gelman_rubin(&[]).is_none());
        assert!(gelman_rubin(&[vec![1.0, 2.0]]).is_none());
        assert!(gelman_rubin(&[vec![1.0, 2.0], vec![1.0]]).is_none());
        // Identical constant chains: converged.
        assert_eq!(gelman_rubin(&[vec![3.0; 10], vec![3.0; 10]]), Some(1.0));
        // Different constant chains: divergent.
        assert_eq!(
            gelman_rubin(&[vec![1.0; 10], vec![2.0; 10]]),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn autocorrelation_of_constant_and_alternating_traces() {
        assert!(autocorrelation(&[1.0; 20], 1).is_none());
        let alternating: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho1 = autocorrelation(&alternating, 1).unwrap();
        assert!(
            rho1 < -0.9,
            "lag-1 of alternating trace should be ~-1, got {rho1}"
        );
        let rho2 = autocorrelation(&alternating, 2).unwrap();
        assert!(rho2 > 0.9);
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn effective_sample_size_bounds() {
        // A scrambled trace keeps a usable fraction of its nominal samples…
        let trace: Vec<f64> = (0..200)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f64)
            .collect();
        let ess = effective_sample_size(&trace).unwrap();
        assert!((1.0..=200.0).contains(&ess));
        // …while a slowly-varying (highly autocorrelated) trace keeps far
        // fewer effective samples.
        let slow: Vec<f64> = (0..200).map(|i| (i as f64 / 40.0).sin()).collect();
        let ess_slow = effective_sample_size(&slow).unwrap();
        assert!(
            ess > 3.0 * ess_slow,
            "correlated trace must have much smaller ESS ({ess_slow} vs {ess})"
        );
        assert!(effective_sample_size(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn front_progress_saturation() {
        let growing = FrontProgress::new(vec![(0, 5), (10, 12), (20, 25), (30, 50)]);
        assert!(!growing.is_saturated(3, 0.1));
        let flat = FrontProgress::new(vec![(0, 5), (10, 40), (20, 41), (30, 41)]);
        assert!(flat.is_saturated(3, 0.1));
        assert!(flat.recent_growth(3).unwrap() < 0.05);
        assert!(FrontProgress::new(vec![(0, 5)]).recent_growth(3).is_none());
    }
}
