//! Benchmark of the batch job engine's scheduler: a batch of 8 small
//! loop-modeling jobs submitted to [`LoopModelingEngine`] at full
//! concurrency against the same 8 jobs run back-to-back (the
//! one-target-one-call pattern the engine replaced).
//!
//! Two claims are measured:
//!
//! * **Throughput** — on a multi-core host the batch finishes in less
//!   wall-clock than the sequential loop, because the scheduler splits the
//!   thread budget across jobs instead of letting each small job's
//!   population kernel leave cores idle between launches.  On a single-core
//!   host (`host_cores: 1` in the JSON) no parallel win is physically
//!   possible; there the measured ratio instead bounds the scheduler's
//!   overhead (it should be ≈ 1.0).
//! * **Equivalence** — the batch results are bit-identical to the
//!   sequential runs (asserted here on every measurement, property-tested
//!   in `tests/batch_engine.rs`).
//!
//! Besides the criterion group, the harness writes `BENCH_batch.json` at
//! the workspace root recording both modes for the perf trajectory.

use criterion::{criterion_group, Criterion};
use lms_bench::shared_kb;
use lms_core::{Job, LoopModelingEngine, MoscemSampler, SamplerConfig, TrajectoryResult};
use lms_protein::{BenchmarkLibrary, LoopTarget};
use lms_simt::{Executor, ExecutorConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The batch: 8 small jobs over loops of different lengths, the shape the
/// ISSUE's acceptance criterion names.
const BATCH_NAMES: [&str; 8] = [
    "1ads", "5pti", "1cex", "3pte", "1akz", "1ixh", "153l", "1dim",
];

fn batch_config(seed: u64) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(24)
        .n_complexes(2)
        .iterations(4)
        .seed(seed)
        .build()
        .expect("valid bench config")
}

fn batch_targets() -> Vec<LoopTarget> {
    let library = BenchmarkLibrary::standard();
    BATCH_NAMES
        .iter()
        .map(|name| library.target_by_name(name).expect("benchmark target"))
        .collect()
}

fn batch_jobs(targets: &[LoopTarget]) -> Vec<Job> {
    targets
        .iter()
        .enumerate()
        .map(|(i, target)| {
            Job::builder(target.clone())
                .config(batch_config(3000 + i as u64))
                .seed(3000 + i as u64)
                .build()
                .expect("valid job")
        })
        .collect()
}

/// Run the 8 jobs one after another through the classic per-target API.
fn run_sequential(targets: &[LoopTarget], executor: &Executor) -> Vec<TrajectoryResult> {
    targets
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let seed = 3000 + i as u64;
            let sampler = MoscemSampler::try_new(target.clone(), shared_kb(), batch_config(seed))
                .expect("valid config");
            sampler.run_with_seed(executor, seed)
        })
        .collect()
}

/// Run the 8 jobs as one engine batch; results come back in submission
/// order from `join()`.
fn run_batch(engine: &LoopModelingEngine, targets: &[LoopTarget]) -> Vec<TrajectoryResult> {
    engine
        .submit(batch_jobs(targets))
        .join()
        .into_iter()
        .map(|r| r.outcome.expect("batch job failed"))
        .collect()
}

fn assert_equivalent(a: &[TrajectoryResult], b: &[TrajectoryResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        for (cx, cy) in x.population.iter().zip(y.population.iter()) {
            assert_eq!(cx.torsions, cy.torsions, "batch diverged from sequential");
            assert_eq!(cx.scores, cy.scores);
        }
    }
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let targets = batch_targets();
    let engine = LoopModelingEngine::builder(shared_kb())
        .executor(ExecutorConfig::parallel())
        .build()
        .expect("valid engine");
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("sequential_8_jobs", |b| {
        b.iter(|| {
            black_box(run_sequential(&targets, &ExecutorConfig::parallel().build().unwrap()).len())
        })
    });
    group.bench_function("engine_batch_8_jobs", |b| {
        b.iter(|| black_box(run_batch(&engine, &targets).len()))
    });
    group.finish();
}

/// Median wall-clock of `f` over `samples` runs.
fn median_wall<F: FnMut()>(mut f: F, samples: u32) -> Duration {
    let mut walls: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    walls.sort();
    walls[walls.len() / 2]
}

/// Measure both modes, verify bit-identity, and write `BENCH_batch.json`
/// at the workspace root.
fn write_bench_json() {
    let targets = batch_targets();
    let executor = ExecutorConfig::parallel().build().unwrap();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let engine = LoopModelingEngine::builder(shared_kb())
        .executor(executor.clone())
        .build()
        .expect("valid engine");

    // Warm everything once (knowledge base, env caches, scratch pool), and
    // pin the equivalence claim on real results.
    let sequential_results = run_sequential(&targets, &executor);
    let batch_results = run_batch(&engine, &targets);
    assert_equivalent(&sequential_results, &batch_results);

    let samples = 7;
    let sequential = median_wall(
        || {
            black_box(run_sequential(&targets, &executor).len());
        },
        samples,
    );
    let batch = median_wall(
        || {
            black_box(run_batch(&engine, &targets).len());
        },
        samples,
    );
    let speedup = sequential.as_secs_f64() / batch.as_secs_f64().max(1e-12);
    println!(
        "batch_engine: {} jobs, sequential {:.1} ms, batch {:.1} ms, speedup {:.3}x on {} core(s)",
        targets.len(),
        sequential.as_secs_f64() * 1e3,
        batch.as_secs_f64() * 1e3,
        speedup,
        host_cores,
    );

    let caps = executor.capabilities();
    let json = format!(
        "{{\n  \"benchmark\": \"batch_engine\",\n  \"unit\": \"ms\",\n  \
         \"comparison\": \"8 small jobs: sequential MoscemSampler runs vs one LoopModelingEngine batch\",\n  \
         \"executor\": {{\"backend\": \"{}\", \"lane_width\": {}, \"threads\": {}, \"ccd_block_width\": {}}},\n  \
         \"jobs\": {},\n  \"population_size\": 24,\n  \"iterations\": 4,\n  \
         \"host_cores\": {host_cores},\n  \"engine_concurrency\": {},\n  \
         \"sequential_ms\": {:.2},\n  \"batch_ms\": {:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"bit_identical\": true,\n  \
         \"note\": \"on a 1-core host no parallel win is possible; the ratio then bounds scheduler overhead\"\n}}\n",
        caps.name,
        caps.lane_width,
        caps.threads,
        caps.ccd_block_width,
        targets.len(),
        engine.concurrency(),
        sequential.as_secs_f64() * 1e3,
        batch.as_secs_f64() * 1e3,
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_batch.json");
    std::fs::write(&path, json).expect("write BENCH_batch.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_batch_vs_sequential);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    write_bench_json();
}
