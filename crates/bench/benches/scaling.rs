//! Criterion benchmark of whole sampling trajectories at increasing
//! population size on the scalar vs. the parallel executor — the measured
//! host-side counterpart of the paper's Figure 4 scaling study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_bench::{load_target, shared_kb};
use lms_core::{MoscemSampler, SamplerConfig};
use lms_simt::ExecutorConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_population_scaling(c: &mut Criterion) {
    let target = load_target("1cex");
    let kb = shared_kb();
    let mut group = c.benchmark_group("scaling/population");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    for &pop in &[32usize, 64, 128] {
        let cfg = SamplerConfig::builder()
            .population_size(pop)
            .n_complexes((pop / 32).max(1))
            .iterations(2)
            .seed(11)
            .build()
            .expect("valid bench config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg);
        group.bench_with_input(BenchmarkId::new("scalar", pop), &pop, |b, _| {
            b.iter(|| {
                black_box(
                    sampler
                        .run(&ExecutorConfig::scalar().build().unwrap())
                        .acceptance_rate,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", pop), &pop, |b, _| {
            b.iter(|| {
                black_box(
                    sampler
                        .run(&ExecutorConfig::parallel().build().unwrap())
                        .acceptance_rate,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population_scaling);
criterion_main!(benches);
