//! Benchmark of the two per-conformation hot-path optimizations landed
//! after the zero-allocation pipeline:
//!
//! * **CCD closure**: the pre-incremental sweep (full NeRF rebuild of the
//!   whole loop after every accepted rotation, reproduced verbatim in
//!   [`full_rebuild`]) against the production sweep
//!   (`CcdCloser::close_with_scratch`, suffix-only `rebuild_from`), at
//!   loop lengths 4, 8 and 12.  Both run the identical rotation schedule —
//!   the results are bit-identical — so the ratio isolates the rebuild
//!   cost.
//! * **VDW environment term**: the exhaustive linear candidate scan
//!   against the production per-residue-window cell-list pass (one shared
//!   gather per residue) and the older per-site cell-list query it
//!   replaced, on environments scaled 1×/10×/100× at roughly constant
//!   *local* density (extra atoms fill the candidate reach sphere,
//!   emulating a full-size protein around the loop).  The linear scan
//!   degrades with the total candidate count; the cell-list passes should
//!   stay near-flat, with the windowed pass amortizing the query cost
//!   across each residue's sites.
//! * **Lockstep CCD blocks**: the population-batched `close_batch` swept
//!   over CCD block widths, on the scalar backend and (with the `simd`
//!   feature) the wide-lane backend whose sweeps now run the lane-major
//!   spine rebuild.  Alongside it, two isolated scalar-vs-wide
//!   comparisons: the batched optimal-rotation kernel, and the lane-major
//!   NeRF spine rebuild itself — the cost that dominates `close_batch` and
//!   previously kept the closure-level ratio flat.
//!
//! Besides the criterion groups, the harness writes `BENCH_ccd.json` at
//! the workspace root recording the comparisons (and, under the `simd`
//! feature, the wide-lane `simd` section with the executor capabilities
//! that produced it) for the perf trajectory.

use criterion::{criterion_group, Criterion};
use lms_bench::scaled_env_target;
use lms_closure::{optimal_rotation_batch, CcdBatchScratch, CcdCloser, CcdLane};
use lms_geometry::{StreamRngFactory, Vec3};
use lms_protein::{
    AminoAcid, BenchmarkLibrary, LoopBuilder, LoopFrame, LoopStructure, LoopTarget, TargetSpec,
    Torsions,
};
use lms_scoring::{ScoreScratch, VdwScore};
use lms_simt::ExecutorConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The pre-incremental CCD sweep, kept as the benchmark baseline after
/// production closure moved to suffix-only rebuilds: identical maths and
/// rotation schedule, but `build_into` over the whole loop after every
/// accepted rotation.
mod full_rebuild {
    use super::*;

    fn optimal_rotation(moving: &[Vec3; 3], targets: &[Vec3; 3], pivot: Vec3, axis: Vec3) -> f64 {
        let mut a = 0.0;
        let mut b = 0.0;
        for (m, t) in moving.iter().zip(targets.iter()) {
            let m_rel = *m - pivot;
            let t_rel = *t - pivot;
            let r = m_rel - axis * m_rel.dot(axis);
            let f = t_rel - axis * t_rel.dot(axis);
            a += f.dot(r);
            b += f.dot(axis.cross(r));
        }
        if a.abs() < 1e-15 && b.abs() < 1e-15 {
            0.0
        } else {
            b.atan2(a)
        }
    }

    /// One closure with a full rebuild per accepted rotation; mirrors
    /// `CcdCloser::close_with_scratch` with default `CcdConfig` (the
    /// schedule parameters are read from it, so config tuning cannot
    /// silently desynchronise the two sides of the comparison).
    pub fn close(
        builder: &LoopBuilder,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
        scratch: &mut LoopStructure,
    ) -> (bool, usize) {
        let config = lms_closure::CcdConfig::default();
        let max_sweeps = config.max_sweeps;
        let tolerance = config.tolerance;
        let targets = frame.c_anchor.atoms();
        builder.build_into(frame, sequence, torsions, scratch);
        let mut deviation = builder.closure_deviation(frame, scratch);
        let mut sweeps = 0;
        let mut rotations = 0usize;
        while deviation > tolerance && sweeps < max_sweeps {
            sweeps += 1;
            for k in 0..torsions.n_angles() {
                let (residue, kind) = Torsions::describe_angle(k);
                let res_atoms = &scratch.residues[residue];
                let (pivot, axis_end) = match kind {
                    lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                    lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                };
                let Some(axis) = (axis_end - pivot).try_normalize() else {
                    continue;
                };
                let moving = scratch.end_frame.atoms();
                let delta = optimal_rotation(&moving, &targets, pivot, axis);
                if delta.abs() < 1e-9 {
                    continue;
                }
                torsions.rotate_angle(k, delta);
                rotations += 1;
                builder.build_into(frame, sequence, torsions, scratch);
            }
            deviation = builder.closure_deviation(frame, scratch);
        }
        (deviation <= tolerance, rotations)
    }
}

/// Loop lengths the closure comparison runs at.
const LOOP_LENGTHS: [usize; 3] = [4, 8, 12];

/// Environment scale factors for the VDW comparison.
const ENV_FACTORS: [usize; 3] = [1, 10, 100];

/// CCD block widths the lockstep-closure sweep runs at.
const BLOCK_WIDTHS: [usize; 3] = [4, 8, 16];

/// Lane counts the isolated rotation-kernel comparison runs at.
const KERNEL_WIDTHS: [usize; 4] = [4, 8, 16, 32];

/// Members in the lockstep-closure population.
const BLOCK_POPULATION: usize = 16;

fn target_of_len(len: usize) -> LoopTarget {
    let spec = TargetSpec {
        name: "1cex",
        start: 40,
        len,
        buried: false,
    };
    BenchmarkLibrary::standard().generate(&spec)
}

/// Perturbed-native torsion starts: far enough from closure that CCD does
/// real work, close enough that it reliably converges at every length.
fn starts(target: &LoopTarget, count: usize) -> Vec<Torsions> {
    let factory = StreamRngFactory::new(31);
    (0..count)
        .map(|i| {
            let mut rng = factory.stream(i as u64, 0);
            let mut t = target.native_torsions.clone();
            for k in 0..t.n_angles() {
                t.rotate_angle(k, lms_geometry::random_torsion(&mut rng) * 0.25);
            }
            t
        })
        .collect()
}

/// Deterministic synthetic inputs for `width` lanes of the batched
/// optimal-rotation kernel: protein-magnitude coordinates on gentle
/// trigonometric walks, unit axes — enough variation that no lane's
/// arithmetic folds away, with no RNG in the timing loop.
fn kernel_inputs(width: usize) -> (Vec<[Vec3; 3]>, [Vec3; 3], Vec<Vec3>, Vec<Vec3>) {
    let targets = [
        Vec3::new(1.2, 0.4, -0.8),
        Vec3::new(2.6, 1.5, 0.3),
        Vec3::new(3.9, 0.9, 1.1),
    ];
    let mut moving = Vec::with_capacity(width);
    let mut pivots = Vec::with_capacity(width);
    let mut axes = Vec::with_capacity(width);
    for j in 0..width {
        let p = j as f64 * 0.37;
        moving.push([
            Vec3::new(1.0 + p.sin(), 0.2 + p.cos(), -0.5 + 0.1 * p),
            Vec3::new(2.4 + (p * 1.7).sin(), 1.1 + (p * 0.9).cos(), 0.4 - 0.05 * p),
            Vec3::new(3.6 + (p * 0.6).cos(), 0.7 + (p * 1.3).sin(), 1.3 + 0.02 * p),
        ]);
        pivots.push(Vec3::new(0.3 * p.cos(), 0.2 * p.sin(), 0.1 * p));
        axes.push(
            Vec3::new((p * 0.8).cos(), (p * 1.1).sin(), 0.7)
                .try_normalize()
                .expect("non-degenerate axis"),
        );
    }
    (moving, targets, pivots, axes)
}

/// Close a population in lockstep blocks of `width`, resetting every member
/// to its start torsions first.  Mirrors the sampler's `stage_close` block
/// partition (ragged final block included) over reused buffers.
fn close_population(
    closer: &CcdCloser,
    target: &LoopTarget,
    starts: &[Torsions],
    width: usize,
    torsions: &mut [Torsions],
    structures: &mut [LoopStructure],
    scratch: &mut CcdBatchScratch,
) {
    for (t, s) in torsions.iter_mut().zip(starts.iter()) {
        t.clone_from(s);
    }
    for (t_block, s_block) in torsions.chunks_mut(width).zip(structures.chunks_mut(width)) {
        let mut lanes: Vec<CcdLane> = t_block
            .iter_mut()
            .zip(s_block.iter_mut())
            .map(|(t, s)| CcdLane {
                torsions: t,
                structure: s,
                start_index: 0,
            })
            .collect();
        closer.close_batch(&target.frame, &target.sequence, &mut lanes, scratch);
    }
}

fn bench_ccd_closure(c: &mut Criterion) {
    let builder = LoopBuilder::default();
    let mut group = c.benchmark_group("ccd_closure");
    group.sample_size(12);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let torsions = starts(&target, 16);
        let closer = CcdCloser::default();

        group.bench_function(format!("full/len{len}"), |b| {
            let mut scratch = LoopStructure::with_capacity(len);
            let mut i = 0usize;
            b.iter(|| {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(full_rebuild::close(
                    &builder,
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    &mut scratch,
                ))
            })
        });

        group.bench_function(format!("incremental/len{len}"), |b| {
            let mut scratch = LoopStructure::with_capacity(len);
            let mut i = 0usize;
            b.iter(|| {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    0,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_vdw_environment(c: &mut Criterion) {
    let builder = LoopBuilder::default();
    let vdw = VdwScore::default();
    let base = target_of_len(12);
    let mut group = c.benchmark_group("vdw_env");
    group.sample_size(12);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &factor in &ENV_FACTORS {
        let target = scaled_env_target(&base, factor);
        let structure = target.build(&builder, &target.native_torsions);
        target.env_candidates();

        group.bench_function(format!("linear/x{factor}"), |b| {
            let mut scratch = ScoreScratch::for_loop_len(12);
            b.iter(|| black_box(vdw.environment_term_linear(&target, &structure, &mut scratch)))
        });
        group.bench_function(format!("per_site/x{factor}"), |b| {
            let mut scratch = ScoreScratch::for_loop_len(12);
            b.iter(|| black_box(vdw.environment_term_per_site(&target, &structure, &mut scratch)))
        });
        group.bench_function(format!("windows/x{factor}"), |b| {
            let mut scratch = ScoreScratch::for_loop_len(12);
            b.iter(|| black_box(vdw.environment_term(&target, &structure, &mut scratch)))
        });
    }
    group.finish();
}

fn bench_rotation_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccd_rotation_kernel");
    group.sample_size(12);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(200));

    for &width in &KERNEL_WIDTHS {
        let (moving, targets, pivots, axes) = kernel_inputs(width);
        group.bench_function(format!("scalar/w{width}"), |b| {
            let mut thetas = Vec::with_capacity(width);
            b.iter(|| {
                optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut thetas);
                black_box(&thetas);
            })
        });
        #[cfg(feature = "simd")]
        group.bench_function(format!("wide/w{width}"), |b| {
            let mut thetas = Vec::with_capacity(width);
            b.iter(|| {
                lms_closure::optimal_rotation_batch_wide(
                    &moving,
                    &targets,
                    &pivots,
                    &axes,
                    &mut thetas,
                );
                black_box(&thetas);
            })
        });
    }
    group.finish();
}

/// Median ns/call of a closure over `samples` timed batches.
fn median_ns<F: FnMut()>(mut f: F, iters: u32, samples: u32) -> f64 {
    let mut results: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    results[results.len() / 2]
}

/// The capabilities of the executor backend this bench run's lockstep
/// sweep corresponds to, rendered as JSON metadata so the artifact's
/// numbers stay attributable to a backend.
fn executor_metadata() -> String {
    #[cfg(feature = "simd")]
    let executor = ExecutorConfig::simd()
        .threads(1)
        .build()
        .expect("simd backend available under the simd feature");
    #[cfg(not(feature = "simd"))]
    let executor = ExecutorConfig::scalar()
        .build()
        .expect("scalar backend is always available");
    let caps = executor.capabilities();
    format!(
        "{{\"backend\": \"{}\", \"lane_width\": {}, \"threads\": {}, \
         \"ccd_block_width\": {}, \"isa\": \"{}\"}}",
        caps.name, caps.lane_width, caps.threads, caps.ccd_block_width, caps.isa
    )
}

/// Measure the isolated scalar-vs-lane-major NeRF spine rebuild — the cost
/// that dominates `close_batch` — and render the `"rebuild"` JSON section.
/// Every member rebuilds the full suffix from the first angle (the
/// worst-case, and the common case early in a CCD sweep); bit-identity of
/// the rebuilt spines and end frames is asserted before timing.
#[cfg(feature = "simd")]
fn rebuild_section() -> String {
    use lms_closure::rebuild_spine_from_batch;
    use lms_protein::SpineKernel;

    /// Member counts the rebuild comparison runs at (4-lane groups: one
    /// full group, two, four).
    const REBUILD_WIDTHS: [usize; 3] = [4, 8, 16];

    let builder = LoopBuilder::default();
    let target = target_of_len(12);
    let kernel = SpineKernel::new(builder.geometry(), &target.frame);
    let isa = ExecutorConfig::simd()
        .build()
        .expect("simd backend available")
        .capabilities()
        .isa;
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for &width in &REBUILD_WIDTHS {
        let member_starts = starts(&target, width);
        let accepted: Vec<usize> = (0..width).collect();

        let torsions = member_starts.clone();
        let mut structures: Vec<LoopStructure> = member_starts
            .iter()
            .map(|t| target.build(&builder, t))
            .collect();
        let mut wide_torsions = member_starts.clone();
        let mut wide_structures: Vec<LoopStructure> = member_starts
            .iter()
            .map(|t| target.build(&builder, t))
            .collect();
        let mut lanes: Vec<CcdLane> = wide_torsions
            .iter_mut()
            .zip(wide_structures.iter_mut())
            .map(|(t, s)| CcdLane {
                torsions: t,
                structure: s,
                start_index: 0,
            })
            .collect();

        // Bit-identity sanity check before timing anything.
        rebuild_spine_from_batch(
            &builder,
            &kernel,
            &target.frame,
            &target.sequence,
            &mut lanes,
            &accepted,
            0,
        );
        let same = |a: Vec3, b: Vec3| {
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits()
        };
        for j in 0..width {
            builder.rebuild_spine_from(
                &target.frame,
                &target.sequence,
                &torsions[j],
                0,
                &mut structures[j],
            );
            let wide_structure = &*lanes[j].structure;
            for (w, r) in wide_structure
                .residues
                .iter()
                .zip(structures[j].residues.iter())
            {
                assert!(
                    same(w.n, r.n) && same(w.ca, r.ca) && same(w.c, r.c),
                    "lane-major rebuild diverged from scalar (member {j})"
                );
            }
            for (w, r) in wide_structure
                .end_frame
                .atoms()
                .iter()
                .zip(structures[j].end_frame.atoms().iter())
            {
                assert!(same(*w, *r), "lane-major end frame diverged (member {j})");
            }
        }

        let iters = 20_000u32;
        let scalar = median_ns(
            || {
                for j in 0..width {
                    builder.rebuild_spine_from(
                        &target.frame,
                        &target.sequence,
                        &torsions[j],
                        0,
                        &mut structures[j],
                    );
                }
                black_box(&structures);
            },
            iters,
            9,
        ) / width as f64;
        let wide = median_ns(
            || {
                rebuild_spine_from_batch(
                    &builder,
                    &kernel,
                    &target.frame,
                    &target.sequence,
                    &mut lanes,
                    &accepted,
                    0,
                );
                black_box(&lanes);
            },
            iters,
            9,
        ) / width as f64;
        let speedup = scalar / wide;
        speedups.push(speedup);
        println!(
            "spine_rebuild members={width}: scalar {scalar:.0} ns/member, \
             lane-major {wide:.0} ns/member, speedup {speedup:.2}x"
        );
        entries.push(format!(
            "      {{\"members\": {width}, \"scalar_ns_per_member\": {scalar:.1}, \
             \"wide_ns_per_member\": {wide:.1}, \"speedup\": {speedup:.3}}}"
        ));
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = speedups[speedups.len() / 2];
    println!("spine_rebuild median lane-major speedup: {median:.2}x (isa {isa})");
    format!(
        ",\n  \"rebuild\": {{\n    \
         \"comparison\": \"scalar per-member NeRF spine rebuild vs lane-major f64x4 rebuild (bit-identical, full suffix, loop_len 12)\",\n    \
         \"isa\": \"{isa}\",\n    \"results\": [\n{}\n    ],\n    \
         \"speedup\": {median:.3}\n  }}",
        entries.join(",\n")
    )
}

/// Without the `simd` feature there is no lane-major rebuild to compare;
/// the artifact has no `"rebuild"` section and the perf gate treats its
/// metrics as optional until both sides carry them.
#[cfg(not(feature = "simd"))]
fn rebuild_section() -> String {
    String::new()
}

/// Measure the isolated scalar-vs-wide optimal-rotation kernel across lane
/// counts and render the `"simd"` JSON section the perf gate tracks.  The
/// kernel-level ratio is the gated number because the closure-level sweep
/// is dominated by NeRF rebuild cost, which the wide lanes do not touch.
#[cfg(feature = "simd")]
fn simd_kernel_section() -> String {
    let lane_width = ExecutorConfig::simd()
        .build()
        .expect("simd backend available")
        .capabilities()
        .lane_width;
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for &width in &KERNEL_WIDTHS {
        let (moving, targets, pivots, axes) = kernel_inputs(width);
        // Bit-identity sanity check before timing anything.
        let mut scalar_thetas = Vec::new();
        let mut wide_thetas = Vec::new();
        optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut scalar_thetas);
        lms_closure::optimal_rotation_batch_wide(
            &moving,
            &targets,
            &pivots,
            &axes,
            &mut wide_thetas,
        );
        assert_eq!(scalar_thetas.len(), wide_thetas.len());
        for (s, w) in scalar_thetas.iter().zip(wide_thetas.iter()) {
            assert_eq!(s.to_bits(), w.to_bits(), "wide kernel diverged from scalar");
        }

        let iters = 8_000u32;
        let mut thetas = Vec::with_capacity(width);
        let scalar = median_ns(
            || {
                optimal_rotation_batch(&moving, &targets, &pivots, &axes, &mut thetas);
                black_box(&thetas);
            },
            iters,
            9,
        ) / width as f64;
        let wide = median_ns(
            || {
                lms_closure::optimal_rotation_batch_wide(
                    &moving,
                    &targets,
                    &pivots,
                    &axes,
                    &mut thetas,
                );
                black_box(&thetas);
            },
            iters,
            9,
        ) / width as f64;
        let speedup = scalar / wide;
        speedups.push(speedup);
        println!(
            "ccd_rotation_kernel w={width}: scalar {scalar:.2} ns/lane, \
             wide {wide:.2} ns/lane, speedup {speedup:.2}x"
        );
        entries.push(format!(
            "      {{\"lanes\": {width}, \"scalar_ns_per_lane\": {scalar:.2}, \
             \"wide_ns_per_lane\": {wide:.2}, \"speedup\": {speedup:.3}}}"
        ));
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = speedups[speedups.len() / 2];
    println!("ccd_rotation_kernel median wide-lane speedup: {median:.2}x");
    format!(
        ",\n  \"simd\": {{\n    \
         \"comparison\": \"scalar vs wide-f64 batched optimal-rotation kernel (bit-identical)\",\n    \
         \"lane_width\": {lane_width},\n    \"results\": [\n{}\n    ],\n    \
         \"speedup\": {median:.3}\n  }}",
        entries.join(",\n")
    )
}

/// Without the `simd` feature the artifact simply has no `"simd"` section;
/// the perf gate treats the metric as optional until both sides carry it.
#[cfg(not(feature = "simd"))]
fn simd_kernel_section() -> String {
    String::new()
}

/// Measure both comparisons and write `BENCH_ccd.json` at the workspace
/// root.
fn write_bench_json() {
    let builder = LoopBuilder::default();

    // --- CCD: full rebuild vs incremental -----------------------------
    let mut ccd_entries = Vec::new();
    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let torsions = starts(&target, 16);
        let closer = CcdCloser::default();
        let iters = 60u32;

        let mut scratch = LoopStructure::with_capacity(len);
        let mut i = 0usize;
        let full = median_ns(
            || {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(full_rebuild::close(
                    &builder,
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    &mut scratch,
                ));
            },
            iters,
            9,
        );

        let mut j = 0usize;
        let incremental = median_ns(
            || {
                let mut t = torsions[j % torsions.len()].clone();
                j += 1;
                black_box(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    0,
                    &mut scratch,
                ));
            },
            iters,
            9,
        );

        let speedup = full / incremental;
        println!(
            "ccd_closure len={len}: full {full:.0} ns/closure, \
             incremental {incremental:.0} ns/closure, speedup {speedup:.2}x"
        );
        ccd_entries.push(format!(
            "      {{\"loop_len\": {len}, \"full_ns_per_closure\": {full:.1}, \
             \"incremental_ns_per_closure\": {incremental:.1}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- VDW environment: linear scan vs cell list ---------------------
    let vdw = VdwScore::default();
    let base = target_of_len(12);
    let mut env_entries = Vec::new();
    let mut cells_by_factor = Vec::new();
    let mut window_speedups = Vec::new();
    for &factor in &ENV_FACTORS {
        let target = scaled_env_target(&base, factor);
        let structure = target.build(&builder, &target.native_torsions);
        let candidates = target.env_candidates().len();
        let iters = (40_000 / factor as u32).max(200);

        let mut scratch = ScoreScratch::for_loop_len(12);
        let linear = median_ns(
            || {
                black_box(vdw.environment_term_linear(&target, &structure, &mut scratch));
            },
            iters,
            9,
        );
        let per_site = median_ns(
            || {
                black_box(vdw.environment_term_per_site(&target, &structure, &mut scratch));
            },
            iters,
            9,
        );
        let cells = median_ns(
            || {
                black_box(vdw.environment_term(&target, &structure, &mut scratch));
            },
            iters,
            9,
        );
        cells_by_factor.push(cells);
        let speedup = linear / cells;
        let window_speedup = per_site / cells;
        window_speedups.push(window_speedup);
        println!(
            "vdw_env x{factor}: {candidates} candidates, linear {linear:.0} ns/eval, \
             per-site {per_site:.0} ns/eval, windows {cells:.0} ns/eval, \
             speedup vs linear {speedup:.2}x, vs per-site {window_speedup:.2}x"
        );
        env_entries.push(format!(
            "      {{\"env_factor\": {factor}, \"candidates\": {candidates}, \
             \"linear_ns_per_eval\": {linear:.1}, \"per_site_ns_per_eval\": {per_site:.1}, \
             \"cells_ns_per_eval\": {cells:.1}, \"speedup\": {speedup:.3}, \
             \"window_speedup\": {window_speedup:.3}}}"
        ));
    }
    let growth = cells_by_factor[2] / cells_by_factor[0];
    println!("vdw_env cell-list cost growth 100x/1x: {growth:.2}x");
    window_speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let window_speedup = window_speedups[window_speedups.len() / 2];
    println!("vdw_env median per-residue-window speedup over per-site: {window_speedup:.2}x");

    // --- Lockstep CCD blocks: block-width / backend sweep --------------
    let target = target_of_len(8);
    let member_starts = starts(&target, BLOCK_POPULATION);
    let mut member_torsions = member_starts.clone();
    let mut member_structures: Vec<LoopStructure> = (0..BLOCK_POPULATION)
        .map(|_| LoopStructure::with_capacity(8))
        .collect();
    let mut batch_scratch = CcdBatchScratch::default();
    let mut block_entries = Vec::new();
    for &width in &BLOCK_WIDTHS {
        let scalar_closer = CcdCloser::default();
        let scalar = median_ns(
            || {
                close_population(
                    &scalar_closer,
                    &target,
                    &member_starts,
                    width,
                    &mut member_torsions,
                    &mut member_structures,
                    &mut batch_scratch,
                );
            },
            2,
            5,
        ) / BLOCK_POPULATION as f64;
        #[cfg(feature = "simd")]
        {
            let wide_closer = CcdCloser::default().with_wide_lanes(true);
            let wide = median_ns(
                || {
                    close_population(
                        &wide_closer,
                        &target,
                        &member_starts,
                        width,
                        &mut member_torsions,
                        &mut member_structures,
                        &mut batch_scratch,
                    );
                },
                2,
                5,
            ) / BLOCK_POPULATION as f64;
            let speedup = scalar / wide;
            println!(
                "ccd_blocks w={width}: scalar {scalar:.0} ns/member, \
                 wide {wide:.0} ns/member, speedup {speedup:.2}x"
            );
            block_entries.push(format!(
                "      {{\"block_width\": {width}, \"scalar_ns_per_member\": {scalar:.1}, \
                 \"wide_ns_per_member\": {wide:.1}, \"speedup\": {speedup:.3}}}"
            ));
        }
        #[cfg(not(feature = "simd"))]
        {
            println!("ccd_blocks w={width}: scalar {scalar:.0} ns/member");
            block_entries.push(format!(
                "      {{\"block_width\": {width}, \"scalar_ns_per_member\": {scalar:.1}}}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"ccd_closure\",\n  \"unit\": \"ns\",\n  \
         \"executor\": {},\n  \"ccd\": {{\n    \
         \"comparison\": \"full NeRF rebuild per rotation vs suffix-only rebuild_from\",\n    \
         \"results\": [\n{}\n    ]\n  }},\n  \"vdw_env\": {{\n    \
         \"comparison\": \"linear candidate scan vs per-site cell-list queries vs per-residue candidate windows\",\n    \
         \"results\": [\n{}\n    ],\n    \"cells_cost_growth_100x_over_1x\": {growth:.3},\n    \
         \"window_speedup\": {window_speedup:.3}\n  }},\n  \
         \"blocks\": {{\n    \
         \"comparison\": \"lockstep close_batch over a {BLOCK_POPULATION}-member population, per CCD block width\",\n    \
         \"results\": [\n{}\n    ]\n  }}{}{}\n}}\n",
        executor_metadata(),
        ccd_entries.join(",\n"),
        env_entries.join(",\n"),
        block_entries.join(",\n"),
        rebuild_section(),
        simd_kernel_section()
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_ccd.json");
    std::fs::write(&path, json).expect("write BENCH_ccd.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_ccd_closure,
    bench_vdw_environment,
    bench_rotation_kernel
);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    write_bench_json();
}
