//! Benchmark of the two per-conformation hot-path optimizations landed
//! after the zero-allocation pipeline:
//!
//! * **CCD closure**: the pre-incremental sweep (full NeRF rebuild of the
//!   whole loop after every accepted rotation, reproduced verbatim in
//!   [`full_rebuild`]) against the production sweep
//!   (`CcdCloser::close_with_scratch`, suffix-only `rebuild_from`), at
//!   loop lengths 4, 8 and 12.  Both run the identical rotation schedule —
//!   the results are bit-identical — so the ratio isolates the rebuild
//!   cost.
//! * **VDW environment term**: the exhaustive linear candidate scan
//!   against the cell-list query path, on environments scaled 1×/10×/100×
//!   at roughly constant *local* density (extra atoms fill the candidate
//!   reach sphere, emulating a full-size protein around the loop).  The
//!   linear scan degrades with the total candidate count; the cell list
//!   should stay near-flat.
//!
//! Besides the criterion groups, the harness writes `BENCH_ccd.json` at
//! the workspace root recording both comparisons for the perf trajectory.

use criterion::{criterion_group, Criterion};
use lms_bench::scaled_env_target;
use lms_closure::CcdCloser;
use lms_geometry::{StreamRngFactory, Vec3};
use lms_protein::{
    AminoAcid, BenchmarkLibrary, LoopBuilder, LoopFrame, LoopStructure, LoopTarget, TargetSpec,
    Torsions,
};
use lms_scoring::{ScoreScratch, VdwScore};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The pre-incremental CCD sweep, kept as the benchmark baseline after
/// production closure moved to suffix-only rebuilds: identical maths and
/// rotation schedule, but `build_into` over the whole loop after every
/// accepted rotation.
mod full_rebuild {
    use super::*;

    fn optimal_rotation(moving: &[Vec3; 3], targets: &[Vec3; 3], pivot: Vec3, axis: Vec3) -> f64 {
        let mut a = 0.0;
        let mut b = 0.0;
        for (m, t) in moving.iter().zip(targets.iter()) {
            let m_rel = *m - pivot;
            let t_rel = *t - pivot;
            let r = m_rel - axis * m_rel.dot(axis);
            let f = t_rel - axis * t_rel.dot(axis);
            a += f.dot(r);
            b += f.dot(axis.cross(r));
        }
        if a.abs() < 1e-15 && b.abs() < 1e-15 {
            0.0
        } else {
            b.atan2(a)
        }
    }

    /// One closure with a full rebuild per accepted rotation; mirrors
    /// `CcdCloser::close_with_scratch` with default `CcdConfig` (the
    /// schedule parameters are read from it, so config tuning cannot
    /// silently desynchronise the two sides of the comparison).
    pub fn close(
        builder: &LoopBuilder,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &mut Torsions,
        scratch: &mut LoopStructure,
    ) -> (bool, usize) {
        let config = lms_closure::CcdConfig::default();
        let max_sweeps = config.max_sweeps;
        let tolerance = config.tolerance;
        let targets = frame.c_anchor.atoms();
        builder.build_into(frame, sequence, torsions, scratch);
        let mut deviation = builder.closure_deviation(frame, scratch);
        let mut sweeps = 0;
        let mut rotations = 0usize;
        while deviation > tolerance && sweeps < max_sweeps {
            sweeps += 1;
            for k in 0..torsions.n_angles() {
                let (residue, kind) = Torsions::describe_angle(k);
                let res_atoms = &scratch.residues[residue];
                let (pivot, axis_end) = match kind {
                    lms_protein::TorsionKind::Phi => (res_atoms.n, res_atoms.ca),
                    lms_protein::TorsionKind::Psi => (res_atoms.ca, res_atoms.c),
                };
                let Some(axis) = (axis_end - pivot).try_normalize() else {
                    continue;
                };
                let moving = scratch.end_frame.atoms();
                let delta = optimal_rotation(&moving, &targets, pivot, axis);
                if delta.abs() < 1e-9 {
                    continue;
                }
                torsions.rotate_angle(k, delta);
                rotations += 1;
                builder.build_into(frame, sequence, torsions, scratch);
            }
            deviation = builder.closure_deviation(frame, scratch);
        }
        (deviation <= tolerance, rotations)
    }
}

/// Loop lengths the closure comparison runs at.
const LOOP_LENGTHS: [usize; 3] = [4, 8, 12];

/// Environment scale factors for the VDW comparison.
const ENV_FACTORS: [usize; 3] = [1, 10, 100];

fn target_of_len(len: usize) -> LoopTarget {
    let spec = TargetSpec {
        name: "1cex",
        start: 40,
        len,
        buried: false,
    };
    BenchmarkLibrary::standard().generate(&spec)
}

/// Perturbed-native torsion starts: far enough from closure that CCD does
/// real work, close enough that it reliably converges at every length.
fn starts(target: &LoopTarget, count: usize) -> Vec<Torsions> {
    let factory = StreamRngFactory::new(31);
    (0..count)
        .map(|i| {
            let mut rng = factory.stream(i as u64, 0);
            let mut t = target.native_torsions.clone();
            for k in 0..t.n_angles() {
                t.rotate_angle(k, lms_geometry::random_torsion(&mut rng) * 0.25);
            }
            t
        })
        .collect()
}

fn bench_ccd_closure(c: &mut Criterion) {
    let builder = LoopBuilder::default();
    let mut group = c.benchmark_group("ccd_closure");
    group.sample_size(12);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let torsions = starts(&target, 16);
        let closer = CcdCloser::default();

        group.bench_function(format!("full/len{len}"), |b| {
            let mut scratch = LoopStructure::with_capacity(len);
            let mut i = 0usize;
            b.iter(|| {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(full_rebuild::close(
                    &builder,
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    &mut scratch,
                ))
            })
        });

        group.bench_function(format!("incremental/len{len}"), |b| {
            let mut scratch = LoopStructure::with_capacity(len);
            let mut i = 0usize;
            b.iter(|| {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    0,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_vdw_environment(c: &mut Criterion) {
    let builder = LoopBuilder::default();
    let vdw = VdwScore::default();
    let base = target_of_len(12);
    let mut group = c.benchmark_group("vdw_env");
    group.sample_size(12);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &factor in &ENV_FACTORS {
        let target = scaled_env_target(&base, factor);
        let structure = target.build(&builder, &target.native_torsions);
        target.env_candidates();

        group.bench_function(format!("linear/x{factor}"), |b| {
            let mut scratch = ScoreScratch::for_loop_len(12);
            b.iter(|| black_box(vdw.environment_term_linear(&target, &structure, &mut scratch)))
        });
        group.bench_function(format!("cells/x{factor}"), |b| {
            let mut scratch = ScoreScratch::for_loop_len(12);
            b.iter(|| black_box(vdw.environment_term(&target, &structure, &mut scratch)))
        });
    }
    group.finish();
}

/// Median ns/call of a closure over `samples` timed batches.
fn median_ns<F: FnMut()>(mut f: F, iters: u32, samples: u32) -> f64 {
    let mut results: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    results[results.len() / 2]
}

/// Measure both comparisons and write `BENCH_ccd.json` at the workspace
/// root.
fn write_bench_json() {
    let builder = LoopBuilder::default();

    // --- CCD: full rebuild vs incremental -----------------------------
    let mut ccd_entries = Vec::new();
    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let torsions = starts(&target, 16);
        let closer = CcdCloser::default();
        let iters = 60u32;

        let mut scratch = LoopStructure::with_capacity(len);
        let mut i = 0usize;
        let full = median_ns(
            || {
                let mut t = torsions[i % torsions.len()].clone();
                i += 1;
                black_box(full_rebuild::close(
                    &builder,
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    &mut scratch,
                ));
            },
            iters,
            9,
        );

        let mut j = 0usize;
        let incremental = median_ns(
            || {
                let mut t = torsions[j % torsions.len()].clone();
                j += 1;
                black_box(closer.close_with_scratch(
                    &target.frame,
                    &target.sequence,
                    &mut t,
                    0,
                    &mut scratch,
                ));
            },
            iters,
            9,
        );

        let speedup = full / incremental;
        println!(
            "ccd_closure len={len}: full {full:.0} ns/closure, \
             incremental {incremental:.0} ns/closure, speedup {speedup:.2}x"
        );
        ccd_entries.push(format!(
            "      {{\"loop_len\": {len}, \"full_ns_per_closure\": {full:.1}, \
             \"incremental_ns_per_closure\": {incremental:.1}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- VDW environment: linear scan vs cell list ---------------------
    let vdw = VdwScore::default();
    let base = target_of_len(12);
    let mut env_entries = Vec::new();
    let mut cells_by_factor = Vec::new();
    for &factor in &ENV_FACTORS {
        let target = scaled_env_target(&base, factor);
        let structure = target.build(&builder, &target.native_torsions);
        let candidates = target.env_candidates().len();
        let iters = (40_000 / factor as u32).max(200);

        let mut scratch = ScoreScratch::for_loop_len(12);
        let linear = median_ns(
            || {
                black_box(vdw.environment_term_linear(&target, &structure, &mut scratch));
            },
            iters,
            9,
        );
        let cells = median_ns(
            || {
                black_box(vdw.environment_term(&target, &structure, &mut scratch));
            },
            iters,
            9,
        );
        cells_by_factor.push(cells);
        let speedup = linear / cells;
        println!(
            "vdw_env x{factor}: {candidates} candidates, linear {linear:.0} ns/eval, \
             cells {cells:.0} ns/eval, speedup {speedup:.2}x"
        );
        env_entries.push(format!(
            "      {{\"env_factor\": {factor}, \"candidates\": {candidates}, \
             \"linear_ns_per_eval\": {linear:.1}, \"cells_ns_per_eval\": {cells:.1}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }
    let growth = cells_by_factor[2] / cells_by_factor[0];
    println!("vdw_env cell-list cost growth 100x/1x: {growth:.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"ccd_closure\",\n  \"unit\": \"ns\",\n  \"ccd\": {{\n    \
         \"comparison\": \"full NeRF rebuild per rotation vs suffix-only rebuild_from\",\n    \
         \"results\": [\n{}\n    ]\n  }},\n  \"vdw_env\": {{\n    \
         \"comparison\": \"linear candidate scan vs cell-list query per site\",\n    \
         \"results\": [\n{}\n    ],\n    \"cells_cost_growth_100x_over_1x\": {growth:.3}\n  }}\n}}\n",
        ccd_entries.join(",\n"),
        env_entries.join(",\n")
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_ccd.json");
    std::fs::write(&path, json).expect("write BENCH_ccd.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_ccd_closure, bench_vdw_environment);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    write_bench_json();
}
