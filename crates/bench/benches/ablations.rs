//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! multi-scoring Pareto sampling vs. single-objective optimisation, the
//! number of complexes, the CCD sweep budget, and adaptive temperature vs.
//! a fixed temperature.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_bench::{load_target, shared_kb};
use lms_closure::CcdConfig;
use lms_core::{MoscemSampler, ObjectiveMode, SamplerConfig};
use lms_scoring::Objective;
use lms_simt::ExecutorConfig;
use std::hint::black_box;
use std::time::Duration;

fn base_config() -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(64)
        .n_complexes(2)
        .iterations(3)
        .seed(21)
        .build()
        .expect("valid bench config")
}

fn bench_single_vs_multi(c: &mut Criterion) {
    let target = load_target("1akz");
    let kb = shared_kb();
    let mut group = c.benchmark_group("ablations/objective_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let modes = [
        ("multi_pareto", ObjectiveMode::MultiScoring),
        ("single_vdw", ObjectiveMode::Single(Objective::Vdw)),
        ("single_dist", ObjectiveMode::Single(Objective::Dist)),
        (
            "weighted_sum",
            ObjectiveMode::WeightedSum([1.0, 1.0, 1.0, 0.0]),
        ),
    ];
    for (name, mode) in modes {
        let cfg = base_config()
            .to_builder()
            .objective_mode(mode)
            .build()
            .expect("valid bench config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    sampler
                        .run(&ExecutorConfig::parallel().build().unwrap())
                        .best_rmsd(),
                )
            })
        });
    }
    group.finish();
}

fn bench_complexes(c: &mut Criterion) {
    let target = load_target("1cex");
    let kb = shared_kb();
    let mut group = c.benchmark_group("ablations/complexes");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &m in &[1usize, 2, 8] {
        let cfg = base_config()
            .to_builder()
            .n_complexes(m)
            .build()
            .expect("valid bench config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    sampler
                        .run(&ExecutorConfig::parallel().build().unwrap())
                        .non_dominated_count(),
                )
            })
        });
    }
    group.finish();
}

fn bench_ccd_budget(c: &mut Criterion) {
    let target = load_target("1ixh");
    let kb = shared_kb();
    let mut group = c.benchmark_group("ablations/ccd_budget");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &sweeps in &[8usize, 24, 64] {
        let cfg = base_config()
            .to_builder()
            .ccd(
                CcdConfig::new()
                    .with_max_sweeps(sweeps)
                    .with_tolerance(0.25),
            )
            .build()
            .expect("valid bench config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg);
        group.bench_with_input(BenchmarkId::from_parameter(sweeps), &sweeps, |b, _| {
            b.iter(|| {
                black_box(
                    sampler
                        .run(&ExecutorConfig::parallel().build().unwrap())
                        .best_rmsd(),
                )
            })
        });
    }
    group.finish();
}

fn bench_annealing(c: &mut Criterion) {
    let target = load_target("153l");
    let kb = shared_kb();
    let mut group = c.benchmark_group("ablations/temperature");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    // Adaptive temperature (the paper's scheme).
    let adaptive = MoscemSampler::new(target.clone(), kb.clone(), base_config());
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            black_box(
                adaptive
                    .run(&ExecutorConfig::parallel().build().unwrap())
                    .acceptance_rate,
            )
        })
    });
    // Effectively fixed temperature: a band so wide it never adjusts.
    let fixed_cfg = base_config()
        .to_builder()
        .acceptance_band(0.0, 1.0)
        .build()
        .expect("valid bench config");
    let fixed = MoscemSampler::new(target, kb, fixed_cfg);
    group.bench_function("fixed", |b| {
        b.iter(|| {
            black_box(
                fixed
                    .run(&ExecutorConfig::parallel().build().unwrap())
                    .acceptance_rate,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_vs_multi,
    bench_complexes,
    bench_ccd_budget,
    bench_annealing
);
criterion_main!(benches);
