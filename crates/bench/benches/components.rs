//! Criterion micro-benchmarks of the algorithm components (the measured
//! counterpart of the paper's Figure 1 / Table II decomposition): CCD loop
//! closure, the three scoring functions, and the population fitness
//! assignment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lms_bench::{load_target, shared_kb};
use lms_closure::{CcdCloser, CcdConfig};
use lms_core::fitness_assignment;
use lms_geometry::{random_torsion, StreamRngFactory};
use lms_protein::{LoopBuilder, Torsions};
use lms_scoring::ScoringFunction;
use lms_scoring::{DistScore, MultiScorer, ScoreVector, TripletScore, VdwScore};
use std::hint::black_box;
use std::time::Duration;

fn perturbed_torsions(target: &lms_protein::LoopTarget, seed: u64, magnitude: f64) -> Torsions {
    let mut rng = StreamRngFactory::new(seed).stream(0, 0);
    let mut t = target.native_torsions.clone();
    for k in 0..t.n_angles() {
        let delta = (random_torsion(&mut rng)) * magnitude;
        t.rotate_angle(k, delta);
    }
    t
}

fn bench_ccd(c: &mut Criterion) {
    let target = load_target("1cex");
    let closer = CcdCloser::new(
        LoopBuilder::default(),
        CcdConfig::new().with_max_sweeps(24).with_tolerance(0.25),
    );
    let mut group = c.benchmark_group("components/ccd");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("close_perturbed_12res", |b| {
        b.iter_batched(
            || perturbed_torsions(&target, 7, 0.2),
            |mut torsions| {
                let r = closer.close(&target.frame, &target.sequence, &mut torsions);
                black_box(r.final_deviation)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let target = load_target("1cex");
    let kb = shared_kb();
    let builder = LoopBuilder::default();
    let structure = target.build(&builder, &target.native_torsions);
    let torsions = target.native_torsions.clone();

    let vdw = VdwScore::default();
    let dist = DistScore::new(kb.clone());
    let triplet = TripletScore::new(kb.clone());
    let multi = MultiScorer::new(kb);

    let mut group = c.benchmark_group("components/scoring");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("vdw", |b| {
        b.iter(|| black_box(vdw.score(&target, &structure, &torsions)))
    });
    group.bench_function("dist", |b| {
        b.iter(|| black_box(dist.score(&target, &structure, &torsions)))
    });
    group.bench_function("triplet", |b| {
        b.iter(|| black_box(triplet.score(&target, &structure, &torsions)))
    });
    group.bench_function("all_three", |b| {
        b.iter(|| black_box(multi.evaluate(&target, &structure, &torsions)))
    });
    group.bench_function("build_structure", |b| {
        b.iter(|| black_box(target.build(&builder, &torsions)))
    });
    group.finish();
}

fn bench_fitness(c: &mut Criterion) {
    let mut rng = StreamRngFactory::new(3).stream(0, 0);
    let make_scores = |n: usize, rng: &mut rand_chacha::ChaCha8Rng| -> Vec<ScoreVector> {
        use rand::Rng;
        (0..n)
            .map(|_| ScoreVector::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    };
    let mut group = c.benchmark_group("components/fitness");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[128usize, 512] {
        let scores = make_scores(n, &mut rng);
        group.bench_function(format!("eq1_population_{n}"), |b| {
            b.iter(|| black_box(fitness_assignment(&scores)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ccd, bench_scoring, bench_fitness);
criterion_main!(benches);
