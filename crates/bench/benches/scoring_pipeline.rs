//! Benchmark of the zero-allocation scoring pipeline: the seed's allocating
//! evaluation path (fresh structure build, AoS site vectors, per-site
//! spatial-grid environment queries — reproduced verbatim in
//! [`legacy`]) against the workspace path (`MultiScorer::evaluate_with`
//! writing into reused SoA buffers with the structure rebuilt in place),
//! across loop lengths 4, 8 and 12.
//!
//! A second comparison measures the cost of the fourth (solvation/burial)
//! objective: `MultiScorer::evaluate_with` with three objectives vs four on
//! a 10×-scaled environment (full-size-protein candidate counts).  Because
//! the burial contact counts piggyback on the VDW environment gathers (one
//! cell-list query per site serves both objectives), the fourth objective
//! should cost well under 1.5× the three-objective evaluation.
//!
//! A third comparison measures the shared-gather DIST bound: the fused
//! evaluation (the VDW pass records the Cα–Cα distance table, DIST reads
//! its bounding check from it) against the unfused composition where DIST
//! recomputes the Cα geometry per residue pair.
//!
//! A fourth comparison measures the **population-batched kernel pipeline**:
//! one full trajectory through the staged SoA-arena launches
//! (`MoscemSampler::run_with_seed`) vs the per-member reference
//! (`run_reference_with_seed`), reported as ns per member-iteration.  The
//! two paths are asserted bit-identical on every measurement, so the ratio
//! is pure execution-shape speedup.
//!
//! A fifth comparison measures the **numerical health sweep** — the
//! post-score finite-classification pass the fault-tolerant runtime runs
//! once per staged iteration — against the cost of one batched
//! member-iteration.  The guard is supposed to be noise (< 3% of a
//! member-iteration); the CI gate enforces that bound absolutely.
//!
//! Besides the criterion groups, the harness writes `BENCH_scoring.json`
//! at the workspace root with the measured numbers so future PRs have a
//! recorded perf trajectory; the `pipeline` and `health_sweep` ratios are
//! tracked by the CI perf-regression gate.

use criterion::{criterion_group, Criterion};
use lms_bench::{scaled_env_target, shared_kb};
use lms_core::{member_is_finite, MoscemSampler, SamplerConfig};
use lms_protein::{BenchmarkLibrary, LoopBuilder, LoopStructure, LoopTarget, TargetSpec, Torsions};
use lms_scoring::{MultiScorer, ScoreScratch, ScoringFunction, VdwScore};
use lms_simt::ExecutorConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The seed repository's allocating scoring pipeline, kept here as the
/// benchmark baseline after production scoring moved to the workspace
/// kernels: AoS interaction-site `Vec` rebuilt per call, spatial-grid
/// environment queries per site, a `per_res` collection in DIST and a
/// fresh class `Vec` in TRIPLET.
mod legacy {
    use lms_geometry::Vec3;
    use lms_protein::{LoopStructure, LoopTarget, RamaClass, Torsions};
    use lms_scoring::{
        BackboneAtomKind, ContactWeights, KnowledgeBase, ScoreVector, SeparationClass, VdwRadii,
        DIST_MAX,
    };

    fn overlap_penalty(softness: f64, d: f64, sigma: f64) -> f64 {
        let sigma = sigma * softness;
        if d >= sigma || sigma <= 0.0 {
            0.0
        } else {
            let x = (sigma - d) / sigma;
            x * x
        }
    }

    fn vdw(target: &LoopTarget, structure: &LoopStructure) -> f64 {
        let radii = VdwRadii::default();
        let weights = ContactWeights::default();
        let mut sites: Vec<(Vec3, f64, usize, bool)> =
            Vec::with_capacity(structure.n_residues() * 5);
        for (i, res) in structure.residues.iter().enumerate() {
            sites.push((res.n, radii.n, i, false));
            sites.push((res.ca, radii.ca, i, false));
            sites.push((res.c, radii.c, i, false));
            sites.push((res.o, radii.o, i, false));
            if let Some(c) = res.centroid {
                sites.push((c, target.sequence[i].centroid_radius(), i, true));
            }
        }
        let mut total = 0.0;
        for (a, &(pa, ra, ia, ca)) in sites.iter().enumerate() {
            for &(pb, rb, ib, cb) in &sites[(a + 1)..] {
                if ib.abs_diff(ia) < 2 {
                    continue;
                }
                let w = match (ca, cb) {
                    (false, false) => weights.atom_atom,
                    (true, true) => weights.centroid_centroid,
                    _ => weights.atom_centroid,
                };
                total += w * overlap_penalty(radii.softness, pa.distance(pb), ra + rb);
            }
        }
        for &(p, r, _i, is_centroid) in &sites {
            target.environment.for_each_within(p, 7.0, |atom| {
                let w = match (is_centroid, atom.is_centroid) {
                    (false, false) => weights.atom_atom,
                    (true, true) => weights.centroid_centroid,
                    _ => weights.atom_centroid,
                };
                total +=
                    w * overlap_penalty(radii.softness, p.distance(atom.position), r + atom.radius);
            });
        }
        total / structure.n_residues() as f64
    }

    fn dist(kb: &KnowledgeBase, structure: &LoopStructure) -> f64 {
        let per_res: Vec<[(BackboneAtomKind, Vec3); 4]> = structure
            .residues
            .iter()
            .map(|r| {
                [
                    (BackboneAtomKind::N, r.n),
                    (BackboneAtomKind::Ca, r.ca),
                    (BackboneAtomKind::C, r.c),
                    (BackboneAtomKind::O, r.o),
                ]
            })
            .collect();
        let n = per_res.len();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let Some(sep) = SeparationClass::from_separation(j - i) else {
                    continue;
                };
                for &(ka, pa) in &per_res[i] {
                    for &(kb_kind, pb) in &per_res[j] {
                        let d = pa.distance(pb);
                        if d >= DIST_MAX {
                            continue;
                        }
                        total += kb.dist.energy(ka, kb_kind, sep, d);
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }

    fn triplet(kb: &KnowledgeBase, target: &LoopTarget, torsions: &Torsions) -> f64 {
        let classes: Vec<RamaClass> = target.sequence.iter().map(|aa| aa.rama_class()).collect();
        let n = classes.len();
        let mut total = 0.0;
        for i in 0..n {
            let prev = if i == 0 {
                RamaClass::General
            } else {
                classes[i - 1]
            };
            let next = if i + 1 == n {
                RamaClass::General
            } else {
                classes[i + 1]
            };
            total += kb
                .triplet
                .energy(prev, classes[i], next, torsions.phi(i), torsions.psi(i));
        }
        total / n as f64
    }

    /// The seed's `MultiScorer::evaluate` equivalent.
    pub fn evaluate(
        kb: &KnowledgeBase,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
    ) -> ScoreVector {
        ScoreVector::new(
            vdw(target, structure),
            dist(kb, structure),
            triplet(kb, target, torsions),
        )
    }
}

/// Loop lengths the pipeline is profiled at.
const LOOP_LENGTHS: [usize; 3] = [4, 8, 12];

fn target_of_len(len: usize) -> LoopTarget {
    // Length 12 matches the paper's headline targets; shorter loops are
    // generated from ad-hoc specs with the same synthetic machinery.
    let spec = TargetSpec {
        name: "1cex",
        start: 40,
        len,
        buried: false,
    };
    BenchmarkLibrary::standard().generate(&spec)
}

fn conformations(target: &LoopTarget, count: usize) -> Vec<Torsions> {
    // A spread of perturbed-native conformations so the kernels see varied
    // contact patterns rather than one cache-friendly geometry.
    let factory = lms_geometry::StreamRngFactory::new(7);
    (0..count)
        .map(|i| {
            let mut rng = factory.stream(i as u64, 0);
            let mut t = target.native_torsions.clone();
            for k in 0..t.n_angles() {
                t.rotate_angle(k, lms_geometry::random_torsion(&mut rng) * 0.15);
            }
            t
        })
        .collect()
}

fn bench_scoring_pipeline(c: &mut Criterion) {
    let kb = shared_kb();
    let builder = LoopBuilder::default();
    let mut group = c.benchmark_group("scoring_pipeline");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let scorer = MultiScorer::new(kb.clone());
        let torsions = conformations(&target, 16);

        group.bench_function(format!("allocating/len{len}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let t = &torsions[i % torsions.len()];
                i += 1;
                // The seed pipeline: fresh structure, AoS sites, grid queries.
                let structure = target.build(&builder, t);
                black_box(legacy::evaluate(&kb, &target, &structure, t))
            })
        });

        group.bench_function(format!("workspace/len{len}"), |b| {
            let mut structure = LoopStructure::with_capacity(len);
            let mut scratch = ScoreScratch::for_loop_len(len);
            let mut i = 0usize;
            b.iter(|| {
                let t = &torsions[i % torsions.len()];
                i += 1;
                // The zero-allocation pipeline: in-place rebuild + reused
                // scoring workspace.
                target.build_into(&builder, t, &mut structure);
                black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch))
            })
        });
    }
    group.finish();
}

/// Environment scale factor the 3-vs-4-objective comparison runs at
/// (matching the cell-list bench's 10× "full-size protein" point).
const OBJECTIVE_ENV_FACTOR: usize = 10;

fn bench_objective_scaling(c: &mut Criterion) {
    let kb = shared_kb();
    let builder = LoopBuilder::default();
    let base = target_of_len(12);
    let target = scaled_env_target(&base, OBJECTIVE_ENV_FACTOR);
    target.env_candidates();
    let torsions = conformations(&target, 16);
    let three = MultiScorer::new(kb.clone());
    let four = three.clone().with_burial(true);

    let mut group = c.benchmark_group("objective_scaling");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for (name, scorer) in [("three_objectives", &three), ("four_objectives", &four)] {
        group.bench_function(format!("{name}/x{OBJECTIVE_ENV_FACTOR}"), |b| {
            let mut structure = LoopStructure::with_capacity(12);
            let mut scratch = ScoreScratch::for_loop_len(12);
            let mut i = 0usize;
            b.iter(|| {
                let t = &torsions[i % torsions.len()];
                i += 1;
                target.build_into(&builder, t, &mut structure);
                black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch))
            })
        });
    }
    group.finish();
}

/// The trajectory configuration of the staged-vs-per-member pipeline
/// comparison: loop length 12 (the paper's headline targets), a small
/// population so one measurement stays fast, enough iterations that the
/// evolution loop dominates initialization.
const PIPELINE_POPULATION: usize = 32;
const PIPELINE_ITERATIONS: usize = 6;
const PIPELINE_SEED: u64 = 2024;

fn pipeline_sampler() -> MoscemSampler {
    let cfg = SamplerConfig::builder()
        .population_size(PIPELINE_POPULATION)
        .n_complexes(2)
        .iterations(PIPELINE_ITERATIONS)
        .seed(PIPELINE_SEED)
        .build()
        .expect("valid pipeline bench config");
    MoscemSampler::new(target_of_len(12), shared_kb(), cfg)
}

fn bench_population_pipeline(c: &mut Criterion) {
    let sampler = pipeline_sampler();
    let exec = ExecutorConfig::scalar().build().unwrap();
    let mut group = c.benchmark_group("population_pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("per_member/len12", |b| {
        b.iter(|| black_box(sampler.run_reference_with_seed(&exec, PIPELINE_SEED)))
    });
    group.bench_function("batched/len12", |b| {
        b.iter(|| black_box(sampler.run_with_seed(&exec, PIPELINE_SEED)))
    });
    group.finish();
}

fn bench_shared_gather(c: &mut Criterion) {
    let kb = shared_kb();
    let builder = LoopBuilder::default();
    let target = target_of_len(12);
    let scorer = MultiScorer::new(kb.clone());
    let vdw = VdwScore::default();
    let torsions = conformations(&target, 16);
    target.env_candidates();

    let mut group = c.benchmark_group("shared_gather_dist");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    group.bench_function("fused/len12", |b| {
        let mut structure = LoopStructure::with_capacity(12);
        let mut scratch = ScoreScratch::for_loop_len(12);
        let mut i = 0usize;
        b.iter(|| {
            let t = &torsions[i % torsions.len()];
            i += 1;
            target.build_into(&builder, t, &mut structure);
            // The fused path: the VDW pass records the Cα table, DIST reads
            // its bound from it.
            black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch))
        })
    });
    group.bench_function("unfused/len12", |b| {
        let mut structure = LoopStructure::with_capacity(12);
        let mut scratch = ScoreScratch::for_loop_len(12);
        let comps = scorer.components();
        let mut i = 0usize;
        b.iter(|| {
            let t = &torsions[i % torsions.len()];
            i += 1;
            target.build_into(&builder, t, &mut structure);
            // The unfused composition: each objective through its own
            // trait kernel, DIST recomputing the Cα bound per pair.
            let v = vdw.score_with(&target, &structure, t, &mut scratch);
            let d = comps[1].score_with(&target, &structure, t, &mut scratch);
            let tr = comps[2].score_with(&target, &structure, t, &mut scratch);
            black_box((v, d, tr))
        })
    });
    group.finish();
}

/// Median ns/eval of a closure over `samples` timed batches.
fn median_ns_per_eval<F: FnMut()>(mut f: F, iters: u32, samples: u32) -> f64 {
    let mut results: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    results[results.len() / 2]
}

/// Measure both paths and write `BENCH_scoring.json` at the workspace root.
fn write_bench_json() {
    let kb = shared_kb();
    let builder = LoopBuilder::default();
    let mut entries = Vec::new();
    for &len in &LOOP_LENGTHS {
        let target = target_of_len(len);
        let scorer = MultiScorer::new(kb.clone());
        let torsions = conformations(&target, 16);

        let iters = 2_000u32.min(40_000 / len as u32);
        let mut i = 0usize;
        let allocating = median_ns_per_eval(
            || {
                let t = &torsions[i % torsions.len()];
                i += 1;
                let structure = target.build(&builder, t);
                black_box(legacy::evaluate(&kb, &target, &structure, t));
            },
            iters,
            9,
        );

        let mut structure = LoopStructure::with_capacity(len);
        let mut scratch = ScoreScratch::for_loop_len(len);
        let mut j = 0usize;
        let workspace = median_ns_per_eval(
            || {
                let t = &torsions[j % torsions.len()];
                j += 1;
                target.build_into(&builder, t, &mut structure);
                black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch));
            },
            iters,
            9,
        );

        let speedup = allocating / workspace;
        println!(
            "scoring_pipeline len={len}: allocating {allocating:.0} ns/eval, \
             workspace {workspace:.0} ns/eval, speedup {speedup:.2}x"
        );
        entries.push(format!(
            "    {{\"loop_len\": {len}, \"allocating_ns_per_eval\": {allocating:.1}, \
             \"workspace_ns_per_eval\": {workspace:.1}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- 3-objective vs 4-objective shared-gather comparison ----------
    let base = target_of_len(12);
    let target = scaled_env_target(&base, OBJECTIVE_ENV_FACTOR);
    target.env_candidates();
    let torsions = conformations(&target, 16);
    let three = MultiScorer::new(kb.clone());
    let four = three.clone().with_burial(true);
    let measure = |scorer: &MultiScorer| {
        let mut structure = LoopStructure::with_capacity(12);
        let mut scratch = ScoreScratch::for_loop_len(12);
        let mut i = 0usize;
        median_ns_per_eval(
            || {
                let t = &torsions[i % torsions.len()];
                i += 1;
                target.build_into(&builder, t, &mut structure);
                black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch));
            },
            2_000,
            9,
        )
    };
    let three_ns = measure(&three);
    let four_ns = measure(&four);
    let cost_ratio = four_ns / three_ns;
    println!(
        "objective_scaling x{OBJECTIVE_ENV_FACTOR}: three {three_ns:.0} ns/eval, \
         four {four_ns:.0} ns/eval, cost ratio {cost_ratio:.2}x"
    );

    // --- shared-gather DIST bound: fused vs unfused ------------------
    let target = target_of_len(12);
    target.env_candidates();
    let torsions = conformations(&target, 16);
    let scorer = MultiScorer::new(kb.clone());
    let vdw = VdwScore::default();
    let fused_ns = {
        let mut structure = LoopStructure::with_capacity(12);
        let mut scratch = ScoreScratch::for_loop_len(12);
        let mut i = 0usize;
        median_ns_per_eval(
            || {
                let t = &torsions[i % torsions.len()];
                i += 1;
                target.build_into(&builder, t, &mut structure);
                black_box(scorer.evaluate_with(&target, &structure, t, &mut scratch));
            },
            2_000,
            9,
        )
    };
    let unfused_ns = {
        let mut structure = LoopStructure::with_capacity(12);
        let mut scratch = ScoreScratch::for_loop_len(12);
        let comps = scorer.components();
        let mut i = 0usize;
        median_ns_per_eval(
            || {
                let t = &torsions[i % torsions.len()];
                i += 1;
                target.build_into(&builder, t, &mut structure);
                let v = vdw.score_with(&target, &structure, t, &mut scratch);
                let d = comps[1].score_with(&target, &structure, t, &mut scratch);
                let tr = comps[2].score_with(&target, &structure, t, &mut scratch);
                black_box((v, d, tr));
            },
            2_000,
            9,
        )
    };
    let gather_speedup = unfused_ns / fused_ns;
    println!(
        "shared_gather_dist len=12: unfused {unfused_ns:.0} ns/eval, \
         fused {fused_ns:.0} ns/eval, speedup {gather_speedup:.3}x"
    );

    // --- population-batched pipeline vs per-member reference ----------
    let sampler = pipeline_sampler();
    let exec = ExecutorConfig::scalar().build().unwrap();
    // Bit-identity is asserted on every measurement run: the ratio below is
    // pure execution-shape speedup, never an algorithm change.
    {
        let a = sampler.run_reference_with_seed(&exec, PIPELINE_SEED);
        let b = sampler.run_with_seed(&exec, PIPELINE_SEED);
        for (x, y) in a.population.iter().zip(b.population.iter()) {
            assert_eq!(x.torsions, y.torsions, "pipeline bench lost bit-identity");
            assert_eq!(x.scores, y.scores, "pipeline bench lost bit-identity");
        }
    }
    let member_iters = (PIPELINE_POPULATION * PIPELINE_ITERATIONS) as f64;
    let per_member_ns = median_ns_per_eval(
        || {
            let _ = black_box(sampler.run_reference_with_seed(&exec, PIPELINE_SEED));
        },
        1,
        9,
    ) / member_iters;
    let batched_ns = median_ns_per_eval(
        || {
            let _ = black_box(sampler.run_with_seed(&exec, PIPELINE_SEED));
        },
        1,
        9,
    ) / member_iters;
    let pipeline_speedup = per_member_ns / batched_ns;
    println!(
        "population_pipeline len=12 pop={PIPELINE_POPULATION} iters={PIPELINE_ITERATIONS}: \
         per-member {per_member_ns:.0} ns/member-iter, batched {batched_ns:.0} ns/member-iter, \
         speedup {pipeline_speedup:.3}x"
    );

    // --- numerical health sweep vs one batched member-iteration -------
    // The sweep body exactly as `stage_health` runs it: one
    // finite-classification of every member's candidate lanes, on real
    // trajectory data (final population of the run measured above).
    let trajectory = sampler.run_with_seed(&exec, PIPELINE_SEED);
    let population = trajectory.population.len();
    let stride = trajectory.population[0].torsions.as_slice().len();
    let sweep_scores: Vec<_> = trajectory.population.iter().map(|c| c.scores).collect();
    let sweep_torsions: Vec<f64> = trajectory
        .population
        .iter()
        .flat_map(|c| c.torsions.as_slice().iter().copied())
        .collect();
    let sweep_devs = vec![0.12f64; population];
    let sweep_rmsds = vec![1.5f64; population];
    let mut healthy = vec![true; population];
    let sweep_ns = median_ns_per_eval(
        || {
            for i in 0..population {
                healthy[i] = member_is_finite(
                    &sweep_scores[i],
                    &sweep_torsions[i * stride..(i + 1) * stride],
                    sweep_devs[i],
                    sweep_rmsds[i],
                );
            }
            black_box(&healthy);
        },
        10_000,
        9,
    ) / population as f64;
    let health_overhead = sweep_ns / batched_ns;
    println!(
        "health_sweep pop={population}: {sweep_ns:.1} ns/member vs batched \
         {batched_ns:.0} ns/member-iter, overhead ratio {health_overhead:.5}"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"scoring_pipeline\",\n  \"unit\": \"ns/eval\",\n  \"results\": [\n{}\n  ],\n  \
         \"objectives\": {{\n    \"comparison\": \"MultiScorer 3 objectives vs 4 (shared-gather burial)\",\n    \
         \"env_factor\": {OBJECTIVE_ENV_FACTOR},\n    \"three_objective_ns_per_eval\": {three_ns:.1},\n    \
         \"four_objective_ns_per_eval\": {four_ns:.1},\n    \"cost_ratio\": {cost_ratio:.3}\n  }},\n  \
         \"shared_gather\": {{\n    \"comparison\": \"DIST Ca-Ca bound from the shared VDW gather vs recomputed\",\n    \
         \"loop_len\": 12,\n    \"unfused_ns_per_eval\": {unfused_ns:.1},\n    \
         \"fused_ns_per_eval\": {fused_ns:.1},\n    \"speedup\": {gather_speedup:.3}\n  }},\n  \
         \"pipeline\": {{\n    \"comparison\": \"staged SoA-arena kernel pipeline vs per-member reference\",\n    \
         \"loop_len\": 12,\n    \"population\": {PIPELINE_POPULATION},\n    \"iterations\": {PIPELINE_ITERATIONS},\n    \
         \"per_member_ns_per_member_iter\": {per_member_ns:.1},\n    \
         \"batched_ns_per_member_iter\": {batched_ns:.1},\n    \"speedup\": {pipeline_speedup:.3}\n  }},\n  \
         \"health_sweep\": {{\n    \"comparison\": \"post-score finite-classification sweep vs one batched member-iteration\",\n    \
         \"population\": {population},\n    \"sweep_ns_per_member\": {sweep_ns:.2},\n    \
         \"batched_ns_per_member_iter\": {batched_ns:.1},\n    \"overhead_ratio\": {health_overhead:.5}\n  }}\n}}\n",
        entries.join(",\n")
    );
    // The bench runs from the crate directory under cargo; walk up to the
    // workspace root so the artifact lands next to ROADMAP.md.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_scoring.json");
    std::fs::write(&path, json).expect("write BENCH_scoring.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_scoring_pipeline,
    bench_objective_scaling,
    bench_shared_gather,
    bench_population_pipeline
);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    write_bench_json();
}
