//! # lms-bench
//!
//! The experiment harness: shared scaffolding used by the binaries that
//! regenerate every table and figure of the paper, and by the Criterion
//! benches.
//!
//! Each harness binary accepts a scale argument (`quick`, `standard`,
//! `paper`) selecting how close the run is to the paper's full operating
//! point.  `quick` finishes in seconds and is the default so that the whole
//! experiment suite can be exercised routinely; `paper` uses the published
//! population sizes and iteration counts (population 15,360, 100
//! iterations) and takes correspondingly long on a CPU-only host.

#![warn(missing_docs)]

use lms_core::{MoscemSampler, SamplerConfig};
use lms_protein::{BenchmarkLibrary, LoopTarget};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use std::sync::{Arc, OnceLock};

pub mod experiments;
pub mod regression;

/// How far an experiment run is scaled toward the paper's operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke run (default).
    Quick,
    /// Minutes-long run with meaningful statistics.
    Standard,
    /// The paper's published parameters (hours on a CPU-only host).
    Paper,
}

impl Scale {
    /// Parse a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" | "q" => Some(Scale::Quick),
            "standard" | "std" | "s" => Some(Scale::Standard),
            "paper" | "full" | "p" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Read the scale from the process arguments (`--scale <name>` or a bare
    /// positional name), defaulting to [`Scale::Quick`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--scale" {
                if let Some(next) = args.get(i + 1) {
                    if let Some(s) = Scale::parse(next) {
                        return s;
                    }
                }
            }
            if let Some(s) = a.strip_prefix("--scale=").and_then(Scale::parse) {
                return s;
            }
            if i > 0 {
                if let Some(s) = Scale::parse(a) {
                    return s;
                }
            }
        }
        Scale::Quick
    }

    /// Population size used by single-trajectory experiments at this scale.
    pub fn population(&self) -> usize {
        match self {
            Scale::Quick => 128,
            Scale::Standard => 1024,
            Scale::Paper => 15_360,
        }
    }

    /// Number of complexes for the population above (keeps the paper's
    /// 128-member complexes).
    pub fn n_complexes(&self) -> usize {
        (self.population() / 128).max(1)
    }

    /// Iteration count at this scale.
    pub fn iterations(&self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Standard => 40,
            Scale::Paper => 100,
        }
    }

    /// Independent trajectories per configuration (Figure 3 uses 32).
    pub fn trajectories(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Standard => 8,
            Scale::Paper => 32,
        }
    }

    /// Decoy-set size targeted by the Table IV protocol (paper: 1,000).
    pub fn decoy_target(&self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Standard => 250,
            Scale::Paper => 1_000,
        }
    }

    /// Maximum trajectories allowed while filling a decoy set.
    pub fn max_trajectories(&self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Standard => 12,
            Scale::Paper => 64,
        }
    }
}

/// The knowledge base shared by every experiment (built once per process).
pub fn shared_kb() -> Arc<KnowledgeBase> {
    static KB: OnceLock<Arc<KnowledgeBase>> = OnceLock::new();
    Arc::clone(KB.get_or_init(|| KnowledgeBase::build(KnowledgeBaseConfig::default())))
}

/// A variant of `base` whose environment is scaled `factor`× by filling the
/// candidate reach sphere with extra atoms at constant density (clear of
/// the native loop), emulating the rest of a full-size protein: every
/// extra atom lands in the candidate set, but the density *local* to any
/// loop site stays roughly that of the base shell.  Deterministic in
/// `factor` (fixed internal seed), so every bench sees the same scaled
/// environments.
pub fn scaled_env_target(base: &LoopTarget, factor: usize) -> LoopTarget {
    use lms_protein::{EnvAtom, Environment, ENV_CONTACT_MARGIN};
    use rand::Rng;

    let mut atoms = base.environment.atoms().to_vec();
    if factor > 1 {
        let n_extra = atoms.len() * (factor - 1);
        let mut rng = lms_geometry::StreamRngFactory::new(77).stream(factor as u64, 0);
        let center = base.frame.n_anchor.ca;
        let reach = base.reach_radius() + ENV_CONTACT_MARGIN - 1.0;
        let native = base.native_structure.backbone_atoms();
        let mut placed = 0usize;
        while placed < n_extra {
            let v = lms_geometry::Vec3::new(
                rng.gen::<f64>() * 2.0 - 1.0,
                rng.gen::<f64>() * 2.0 - 1.0,
                rng.gen::<f64>() * 2.0 - 1.0,
            );
            let n = v.norm();
            if !(1e-3..=1.0).contains(&n) {
                continue;
            }
            // Uniform in the ball: direction × reach × ∛u.
            let pos = center + (v / n) * (reach * rng.gen::<f64>().cbrt());
            if native.iter().any(|a| a.distance(pos) < 4.0) {
                continue;
            }
            atoms.push(EnvAtom::backbone(pos, 1.7));
            placed += 1;
        }
    }
    LoopTarget {
        environment: Arc::new(Environment::new(atoms)),
        env_cache: Default::default(),
        ..base.clone()
    }
}

/// The benchmark library shared by every experiment.
pub fn benchmark_library() -> BenchmarkLibrary {
    BenchmarkLibrary::standard()
}

/// Load one benchmark target by name, panicking with a clear message if the
/// name is unknown.
pub fn load_target(name: &str) -> LoopTarget {
    benchmark_library()
        .target_by_name(name)
        .unwrap_or_else(|| panic!("target {name:?} is not in the 53-loop benchmark"))
}

/// A sampler configuration matching the given scale for one target.
pub fn scaled_config(scale: Scale, seed: u64) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(scale.population())
        .n_complexes(scale.n_complexes())
        .iterations(scale.iterations())
        .seed(seed)
        .build()
        .expect("scaled configs are always valid")
}

/// Build a sampler for a named target at the given scale.
pub fn sampler_for(name: &str, scale: Scale, seed: u64) -> MoscemSampler {
    MoscemSampler::new(load_target(name), shared_kb(), scaled_config(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("STANDARD"), Some(Scale::Standard));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn paper_scale_matches_published_parameters() {
        assert_eq!(Scale::Paper.population(), 15_360);
        assert_eq!(Scale::Paper.n_complexes(), 120);
        assert_eq!(Scale::Paper.iterations(), 100);
        assert_eq!(Scale::Paper.trajectories(), 32);
        assert_eq!(Scale::Paper.decoy_target(), 1_000);
    }

    #[test]
    fn quick_scale_is_small() {
        assert!(Scale::Quick.population() <= 256);
        assert!(Scale::Quick.iterations() <= 20);
        let cfg = scaled_config(Scale::Quick, 7);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn shared_kb_is_reused() {
        let a = shared_kb();
        let b = shared_kb();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn load_target_known_and_unknown() {
        let t = load_target("1cex");
        assert_eq!(t.label(), "1cex(40:51)");
        let result = std::panic::catch_unwind(|| load_target("zzzz"));
        assert!(result.is_err());
    }
}
