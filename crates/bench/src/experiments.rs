//! Implementations of every experiment (table and figure) of the paper.
//!
//! Each function runs the experiment at a chosen [`Scale`] and returns the
//! report as plain text; the harness binaries print it.  The mapping to the
//! paper is:
//!
//! | Function | Paper content |
//! |---|---|
//! | [`fig1_cpu_profile`] | Figure 1 — CPU-only time profile |
//! | [`fig3_population_size`] | Figure 3 — population-size study on 1akz |
//! | [`fig4_speedup_scaling`] | Figure 4 — time vs. #threads on 1cex |
//! | [`table1_speedup`] | Table I — speedup on six 12-residue loops |
//! | [`table2_kernel_profile`] | Table II — per-kernel device time |
//! | [`table3_occupancy`] | Table III — registers and occupancy |
//! | [`table4_benchmark`] | Table IV — decoy quality on the 53-loop set |
//! | [`fig5_front_evolution`] | Figure 5 — evolution of the Pareto front on 5pti |
//! | [`fig6_best_decoys`] | Figure 6 — best decoys for 3pte and 1xyz |

use crate::{load_target, sampler_for, scaled_config, shared_kb, Scale};
use lms_core::MoscemSampler;
use lms_decoys::{ensemble_stats, format_percent, format_us, section, TextTable};
use lms_protein::{to_pdb, LoopBuilder};
use lms_scoring::{normalize_population, ScoreVector};
use lms_simt::ExecutorConfig;

/// Figure 1: wall-clock time share of the algorithm components in the
/// CPU-only implementation (paper: CCD + scoring ≈ 99 %, CCD alone ≈ 84 %).
///
/// The profile now reflects the staged population-batched pipeline: the run
/// executes one kernel launch per stage per iteration over the SoA arena,
/// and a second table breaks the measured host time down by staged launch
/// (the pre-batching implementation could only time the monolithic evolve
/// pass and apportion it by modeled work).
pub fn fig1_cpu_profile(scale: Scale) -> String {
    let sampler = sampler_for("1cex", scale, 101);
    let result = sampler.run(&ExecutorConfig::scalar().build().unwrap());
    let f = result.component_times.fractions();

    let mut out = section("Figure 1: time profile of the CPU-only implementation (1cex 40:51)");
    let mut table = TextTable::new(vec!["Component", "Share of run time", "Paper"]);
    table.add_row(vec![
        "Loop closure (CCD)".to_string(),
        format_percent(f[0]),
        "84.15%".to_string(),
    ]);
    table.add_row(vec![
        "Scoring functions".to_string(),
        format_percent(f[1]),
        "14.79%".to_string(),
    ]);
    table.add_row(vec![
        "Fitness/other".to_string(),
        format_percent(f[2] + f[3]),
        "1.03%".to_string(),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\npopulation {}, {} iterations, total component time {}\n",
        sampler.config().population_size,
        sampler.config().iterations,
        format_us(result.component_times.total_us())
    ));

    // Per-stage measured host time of the staged kernel launches.
    let stats = result.profiler.kernel_stats();
    let host_total: f64 = stats.values().map(|s| s.host_us).sum::<f64>().max(1e-12);
    let mut staged = TextTable::new(vec![
        "Staged kernel launch",
        "Launches",
        "Host (usec)",
        "Host share",
    ]);
    let mut rows: Vec<_> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.host_us.partial_cmp(&a.1.host_us).unwrap());
    for (kind, s) in rows {
        staged.add_row(vec![
            kind.name().to_string(),
            s.calls.to_string(),
            format!("{:.0}", s.host_us),
            format_percent(s.host_us / host_total),
        ]);
    }
    out.push_str("\nMeasured host time per staged kernel launch (population-batched pipeline):\n");
    out.push_str(&staged.render());
    out
}

/// Figure 3: number of distinct non-dominated structures and best-decoy
/// RMSD statistics over independent trajectories of 1akz(181:192) at
/// increasing population size.
pub fn fig3_population_size(scale: Scale) -> String {
    let populations: Vec<usize> = match scale {
        Scale::Quick => vec![32, 128, 512],
        Scale::Standard => vec![100, 400, 1600],
        Scale::Paper => vec![100, 1_000, 10_000],
    };
    let trajectories = scale.trajectories();
    let target = load_target("1akz");
    let kb = shared_kb();

    let mut out = section("Figure 3: population size study on 1akz(181:192)");
    let mut table = TextTable::new(vec![
        "Population",
        "Avg distinct non-dominated",
        "Best RMSD min (A)",
        "Best RMSD avg (A)",
        "Best RMSD max (A)",
    ]);
    for &pop in &populations {
        let cfg = scaled_config(scale, 303)
            .to_builder()
            .population_size(pop)
            .n_complexes((pop / 64).max(1))
            .iterations(scale.iterations())
            .build()
            .expect("valid experiment config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg);
        let results: Vec<_> = (0..trajectories)
            .map(|t| {
                sampler.run_with_seed(
                    &ExecutorConfig::parallel().build().unwrap(),
                    1000 + t as u64,
                )
            })
            .collect();
        let stats = ensemble_stats(&results, 30.0).expect("at least one trajectory");
        table.add_row(vec![
            pop.to_string(),
            format!("{:.1}", stats.avg_distinct_non_dominated),
            format!("{:.2}", stats.best_rmsd.min),
            format!("{:.2}", stats.best_rmsd.mean),
            format!("{:.2}", stats.best_rmsd.max),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n{} independent trajectories per population size; paper shape: more distinct\nnon-dominated structures and lower best RMSD as the population grows.\n",
        trajectories
    ));
    out
}

/// Figure 4: computational time vs. number of threads (population size) on
/// 1cex(40:51) for the CPU baseline and the CPU-GPU implementation.
pub fn fig4_speedup_scaling(scale: Scale) -> String {
    let populations: Vec<usize> = match scale {
        Scale::Quick => vec![256, 512, 1_024, 2_048],
        Scale::Standard => vec![512, 1_024, 2_048, 4_096, 7_680],
        Scale::Paper => vec![256, 512, 1_024, 2_048, 4_096, 7_680, 15_360],
    };
    let iterations = match scale {
        Scale::Quick => 3,
        Scale::Standard => 10,
        Scale::Paper => 100,
    };
    let target = load_target("1cex");
    let kb = shared_kb();

    let mut out = section("Figure 4: time vs. number of threads on 1cex(40:51)");
    let mut table = TextTable::new(vec![
        "Threads (population)",
        "Blocks",
        "Modeled CPU time",
        "Modeled GPU time",
        "Modeled speedup",
        "Measured scalar wall",
        "Measured parallel wall",
    ]);
    let mut modeled_cpu_series = Vec::new();
    let mut modeled_gpu_series = Vec::new();
    for &pop in &populations {
        let cfg = scaled_config(scale, 404)
            .to_builder()
            .population_size(pop)
            .n_complexes((pop / 128).max(1))
            .iterations(iterations)
            .build()
            .expect("valid experiment config");
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), cfg.clone());
        let scalar = sampler.run(&ExecutorConfig::scalar().build().unwrap());
        let parallel = sampler.run(&ExecutorConfig::parallel().build().unwrap());
        modeled_cpu_series.push(scalar.modeled_cpu_us);
        modeled_gpu_series.push(scalar.modeled_gpu_us);
        table.add_row(vec![
            pop.to_string(),
            (pop / cfg.threads_per_block).max(1).to_string(),
            format_us(scalar.modeled_cpu_us),
            format_us(scalar.modeled_gpu_us),
            format!("{:.1}x", scalar.modeled_speedup()),
            format!("{:.2?}", scalar.host_wall),
            format!("{:.2?}", parallel.host_wall),
        ]);
    }
    out.push_str(&table.render());
    if modeled_cpu_series.len() >= 2 {
        let cpu_growth = modeled_cpu_series.last().unwrap() / modeled_cpu_series[0];
        let gpu_growth = modeled_gpu_series.last().unwrap() / modeled_gpu_series[0];
        out.push_str(&format!(
            "\nGrowth from smallest to largest population: CPU {cpu_growth:.1}x, CPU-GPU {gpu_growth:.2}x\n(paper: ~30x vs 2.39x between 512 and 15,360 threads).\n"
        ));
    }
    out
}

/// Modeled speedup of a finished trajectory re-launched at the paper's
/// operating point (15,360 threads, 128 per block): the per-thread work of
/// every recorded kernel is kept, only the launch geometry changes.  This is
/// what lets the quick-scale harness still report the paper's full-population
/// speedup honestly.
pub fn extrapolate_speedup_to_paper_population(result: &lms_core::TrajectoryResult) -> f64 {
    use lms_simt::{LaunchConfig, TimingModel};
    let model = TimingModel::default();
    let population = 15_360usize;
    let launch = LaunchConfig::for_population(population);
    let mut gpu_us = 0.0;
    let mut cpu_us = 0.0;
    for (kind, stats) in result.profiler.kernel_stats() {
        if stats.calls == 0 {
            continue;
        }
        // Average per-thread work of one launch of this kernel.
        let per_thread = stats.work_units / (stats.calls as f64 * result.population.len() as f64);
        gpu_us += stats.calls as f64 * model.kernel_time_us(kind, launch, per_thread);
        cpu_us += stats.calls as f64 * model.cpu_time_us(kind, population, per_thread);
    }
    cpu_us / gpu_us.max(1e-12)
}

/// Table I: speedup on the six 12-residue loops at the paper's operating
/// point (15,360 threads, 100 iterations — scaled down below `paper` scale,
/// with an extrapolated full-population column).
pub fn table1_speedup(scale: Scale) -> String {
    let loops = [
        ("1cex", 40, 51),
        ("1akz", 181, 192),
        ("1xyz", 813, 824),
        ("1ixh", 160, 171),
        ("153l", 98, 109),
        ("1dim", 213, 224),
    ];
    let paper_speedup = [42.6, 40.3, 39.2, 37.3, 42.9, 54.8];

    let mut out = section("Table I: speedup comparison for 12-residue loops");
    let mut table = TextTable::new(vec![
        "Protein",
        "Start",
        "End",
        "Modeled CPU time",
        "Modeled CPU-GPU time",
        "Speedup (this run)",
        "Speedup @15,360 threads",
        "Paper speedup",
    ]);
    for (i, (name, start, end)) in loops.iter().enumerate() {
        let sampler = sampler_for(name, scale, 500 + i as u64);
        let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());
        table.add_row(vec![
            name.to_string(),
            start.to_string(),
            end.to_string(),
            format_us(result.modeled_cpu_us),
            format_us(result.modeled_gpu_us),
            format!("{:.1}", result.modeled_speedup()),
            format!("{:.1}", extrapolate_speedup_to_paper_population(&result)),
            format!("{:.1}", paper_speedup[i]),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\npopulation {}, {} iterations per trajectory (paper: 15,360 threads, 100 iterations).\nThe extrapolated column keeps each kernel's measured per-thread work and re-launches it\nat the paper's 120 blocks x 128 threads on the modeled GTX 280.\n",
        scale.population(),
        scale.iterations()
    ));
    out
}

/// Table II: per-kernel device time breakdown on 1cex(40:51).
///
/// Every row is a real staged launch of the population-batched pipeline
/// (`mutate`/`close`/`rebuild`/per-objective `score`/`metropolis`/`select`
/// per iteration), so the host column is that kernel's own measured time —
/// not, as before the batching refactor, a modeled-work share of one
/// monolithic per-member evolve pass.
pub fn table2_kernel_profile(scale: Scale) -> String {
    let sampler = sampler_for("1cex", scale, 202);
    let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    let mut out = section("Table II: computational time of GPU tasks on 1cex(40:51)");
    out.push_str(&result.profiler.table2_report());
    out.push_str(
        "\nEach kernel row is one staged population-wide launch per iteration; the host\ncolumn is measured per launch (the [Rebuild]/[Select] rows are pipeline stages\nthe paper folds into other tasks).\nPaper shape: [CCD] ~75%, [EvalDIST] ~14%, [EvalVDW] ~8%, [EvalTRIP] ~0.04%,\nfitness kernels ~1%, memory synchronisation below 1%.\n",
    );
    out
}

/// Table III: registers per thread and multiprocessor occupancy per kernel.
pub fn table3_occupancy(scale: Scale) -> String {
    // A very small trajectory is enough: occupancy depends only on the
    // kernel register footprints and the block size.
    let cfg = scaled_config(Scale::Quick, 1)
        .to_builder()
        .population_size(128.min(scale.population()))
        .n_complexes(1)
        .iterations(1)
        .build()
        .expect("valid experiment config");
    let sampler = MoscemSampler::new(load_target("1cex"), shared_kb(), cfg);
    let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    let mut out = section("Table III: registers per thread and occupancy per multiprocessor");
    out.push_str(&result.profiler.table3_report());
    out.push_str("\nPaper: CCD/EvalDIST/EvalVDW 32 registers -> 50%, EvalTRIP 20 -> 75%, fitness kernels -> 100%.\n");
    out
}

/// Outcome of the Table IV protocol for one target.
#[derive(Debug, Clone)]
pub struct TargetOutcome {
    /// Target label, e.g. `1cex(40:51)`.
    pub label: String,
    /// Loop length in residues.
    pub residues: usize,
    /// Number of decoys collected.
    pub decoys: usize,
    /// Best RMSD in the decoy set (Å).
    pub best_rmsd: f64,
}

/// Run the decoy-production protocol for every benchmark target and report
/// how many targets reach sub-1.0 Å and sub-1.5 Å decoys, grouped by loop
/// length (Table IV).
pub fn table4_benchmark(scale: Scale) -> String {
    let (outcomes, table) = table4_outcomes(scale);
    let mut out = section("Table IV: targets with high-resolution decoys (53 long loops)");
    out.push_str(&table);
    let failures: Vec<&TargetOutcome> = outcomes.iter().filter(|o| o.best_rmsd > 2.0).collect();
    if !failures.is_empty() {
        out.push_str("\nTargets without a decoy under 2.0 A:\n");
        for f in failures {
            out.push_str(&format!("  {} (best {:.2} A)\n", f.label, f.best_rmsd));
        }
    }
    out.push_str("\nPaper: 41/53 (77.4%) targets under 1.0 A and 48/53 (90.6%) under 1.5 A;\nthe only target without a sub-2.0 A decoy is the buried 1xyz(813:824).\n");
    out
}

/// The per-target outcomes and the rendered Table IV.  Exposed separately so
/// integration tests can assert on the numbers.
pub fn table4_outcomes(scale: Scale) -> (Vec<TargetOutcome>, String) {
    let library = crate::benchmark_library();
    let kb = shared_kb();
    let specs = library.specs();
    let outcomes: Vec<TargetOutcome> = specs
        .iter()
        .map(|spec| {
            let target = library.generate(spec);
            let cfg = scaled_config(scale, 7000 + spec.start as u64)
                .to_builder()
                .population_size(scale.population().min(512))
                .n_complexes((scale.population().min(512) / 64).max(1))
                .iterations(scale.iterations())
                .build()
                .expect("valid experiment config");
            let sampler = MoscemSampler::new(target, kb.clone(), cfg);
            let production = sampler.produce_decoys(
                &ExecutorConfig::parallel().build().unwrap(),
                scale.decoy_target(),
                scale.max_trajectories(),
            );
            TargetOutcome {
                label: spec.label(),
                residues: spec.len,
                decoys: production.decoys.len(),
                best_rmsd: production.decoys.best_rmsd().unwrap_or(f64::INFINITY),
            }
        })
        .collect();

    let mut table = TextTable::new(vec![
        "# of residues",
        "# of benchmark targets",
        "< 1.0A",
        "< 1.5A",
        "< 2.0A",
    ]);
    let mut total = (0usize, 0usize, 0usize, 0usize);
    for len in [10usize, 11, 12] {
        let group: Vec<&TargetOutcome> = outcomes.iter().filter(|o| o.residues == len).collect();
        let n = group.len();
        let under = |cut: f64| group.iter().filter(|o| o.best_rmsd <= cut).count();
        let (u10, u15, u20) = (under(1.0), under(1.5), under(2.0));
        total = (total.0 + n, total.1 + u10, total.2 + u15, total.3 + u20);
        table.add_row(vec![
            len.to_string(),
            n.to_string(),
            u10.to_string(),
            u15.to_string(),
            u20.to_string(),
        ]);
    }
    table.add_row(vec![
        "Total".to_string(),
        total.0.to_string(),
        format!(
            "{} ({})",
            total.1,
            format_percent(total.1 as f64 / total.0 as f64)
        ),
        format!(
            "{} ({})",
            total.2,
            format_percent(total.2 as f64 / total.0 as f64)
        ),
        format!(
            "{} ({})",
            total.3,
            format_percent(total.3 as f64 / total.0 as f64)
        ),
    ]);
    (outcomes, table.render())
}

/// Figure 5: evolution of the non-dominated front during sampling of
/// 5pti(7:17): normalised scores and RMSD of the front at the start, an
/// intermediate iteration, and the end.
pub fn fig5_front_evolution(scale: Scale) -> String {
    let iterations = scale.iterations().max(5);
    let mid = (iterations / 5).max(1);
    let cfg = scaled_config(scale, 505)
        .to_builder()
        .population_size(scale.population())
        .n_complexes(scale.n_complexes())
        .iterations(iterations)
        .snapshot_iterations(vec![0, mid, iterations])
        .build()
        .expect("valid experiment config");
    let sampler = MoscemSampler::new(load_target("5pti"), shared_kb(), cfg);
    let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());

    let mut out = section("Figure 5: evolution of the non-dominated conformations in 5pti(7:17)");
    for snap in &result.snapshots {
        out.push_str(&format!(
            "\nIteration {:>3}: {} non-dominated conformations, best RMSD {:.2} A\n",
            snap.iteration, snap.non_dominated_count, snap.best_rmsd
        ));
        let scores: Vec<ScoreVector> = snap.front.iter().map(|(s, _)| *s).collect();
        let normed = normalize_population(&scores);
        let mut table = TextTable::new(vec![
            "VDW (norm)",
            "DIST (norm)",
            "TRIPLET (norm)",
            "RMSD (A)",
        ]);
        // Show the front sorted by RMSD so native-like members are visible.
        let mut rows: Vec<(ScoreVector, f64)> = normed
            .iter()
            .zip(snap.front.iter().map(|(_, r)| *r))
            .map(|(s, r)| (*s, r))
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (s, rmsd) in rows.iter().take(12) {
            table.add_row(vec![
                format!("{:.2}", s.vdw()),
                format!("{:.2}", s.dist()),
                format!("{:.2}", s.triplet()),
                format!("{rmsd:.2}"),
            ]);
        }
        out.push_str(&table.render());
        if rows.len() > 12 {
            out.push_str(&format!("... ({} more front members)\n", rows.len() - 12));
        }
    }
    out.push_str("\nPaper: the front grows from 7 (random start) to 19 (iteration 20) to 63\n(iteration 100) non-dominated conformations, with native-like decoys (<0.5 A)\nemerging only late; the lowest single-score conformations are not the lowest-RMSD ones.\n");
    out
}

/// Figure 6: best decoys for 3pte(91:101) (easy, sub-angstrom in the paper)
/// and the buried 1xyz(813:824) (the paper's only failure, >2 Å).  Also
/// writes the native and best-decoy PDB files under `results/`.
pub fn fig6_best_decoys(scale: Scale) -> String {
    let mut out = section("Figure 6: best decoys for 3pte(91:101) and 1xyz(813:824)");
    let builder = LoopBuilder::default();
    let mut rows = TextTable::new(vec![
        "Target",
        "Decoys",
        "Best RMSD (A)",
        "Paper best RMSD (A)",
    ]);
    let paper = [("3pte", 0.42), ("1xyz", 2.15)];
    for (name, paper_rmsd) in paper {
        let target = load_target(name);
        let cfg = scaled_config(scale, 606)
            .to_builder()
            .population_size(scale.population())
            .n_complexes(scale.n_complexes())
            .iterations(scale.iterations())
            .build()
            .expect("valid experiment config");
        let sampler = MoscemSampler::new(target.clone(), shared_kb(), cfg);
        let production = sampler.produce_decoys(
            &ExecutorConfig::parallel().build().unwrap(),
            scale.decoy_target(),
            scale.max_trajectories(),
        );
        let best = production
            .decoys
            .decoys()
            .iter()
            .min_by(|a, b| a.rmsd_to_native.partial_cmp(&b.rmsd_to_native).unwrap())
            .cloned();
        let best_rmsd = best
            .as_ref()
            .map(|d| d.rmsd_to_native)
            .unwrap_or(f64::INFINITY);
        rows.add_row(vec![
            target.label(),
            production.decoys.len().to_string(),
            format!("{best_rmsd:.2}"),
            format!("{paper_rmsd:.2}"),
        ]);

        // Write native and best decoy as PDB for visual comparison.
        if let Some(best) = best {
            let _ = std::fs::create_dir_all("results");
            let native_pdb = to_pdb(
                &target.native_structure,
                &target.sequence,
                'A',
                target.start_res,
            );
            let decoy_structure = target.build(&builder, &best.torsions);
            let decoy_pdb = to_pdb(&decoy_structure, &target.sequence, 'B', target.start_res);
            let _ = std::fs::write(format!("results/{name}_native.pdb"), native_pdb);
            let _ = std::fs::write(format!("results/{name}_best_decoy.pdb"), decoy_pdb);
            out.push_str(&format!(
                "wrote results/{name}_native.pdb and results/{name}_best_decoy.pdb\n"
            ));
        }
    }
    out.push_str(&rows.render());
    out.push_str(
        "\nPaper: 3pte reaches 0.42 A; the buried 1xyz is the only target above 2 A (2.15 A).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment functions are exercised end-to-end (at Quick scale) by
    // the workspace integration tests; here we only check cheap invariants.

    #[test]
    fn table3_runs_quickly_and_mentions_all_kernels() {
        let report = table3_occupancy(Scale::Quick);
        for label in [
            "[CCD]",
            "[EvalDIST]",
            "[EvalVDW]",
            "[EvalTRIP]",
            "[FitAssg]",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
        assert!(report.contains("50%"));
        assert!(report.contains("100%"));
    }

    #[test]
    fn fig1_reports_ccd_dominance() {
        let report = fig1_cpu_profile(Scale::Quick);
        assert!(report.contains("Loop closure (CCD)"));
        assert!(report.contains("Scoring functions"));
        assert!(report.contains("%"));
    }
}
