//! The CI perf-regression gate: compares freshly produced `BENCH_*.json`
//! artifacts against the committed `BENCH_*.baseline.json` snapshots and
//! fails when any tracked speedup ratio regresses beyond a noise tolerance.
//!
//! Only *ratios* are gated (allocating/workspace, full/incremental,
//! linear/cells, three/four objectives, sequential/batch), never absolute
//! nanoseconds: both sides of each ratio are measured in the same process
//! on the same host, so the ratio is robust to runner speed while absolute
//! times are not.  The batch-engine ratio gets special treatment because a
//! 1-core runner physically cannot show a scheduling win — there the gate
//! only enforces the scheduler-overhead bound.
//!
//! The JSON handling is a deliberately small recursive-descent parser: the
//! artifacts are produced by our own benches with a known shape, and the
//! container build has no serde.

use std::fmt;

/// A parsed JSON value (the subset our bench artifacts use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64; our artifacts stay well inside
    /// the exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: numeric field of an object.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through byte by byte; the
                // artifacts are ASCII in practice.
                out.push(c as char);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

/// Which way a tracked ratio is supposed to point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A speedup ratio: regression = fresh falls below baseline.
    HigherIsBetter,
    /// A cost ratio: regression = fresh rises above baseline.
    LowerIsBetter,
}

/// One tracked ratio compared between baseline and fresh artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Human-readable metric name.
    pub name: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// Regression direction.
    pub direction: Direction,
    /// When `true`, `baseline` is an absolute bound the fresh value must
    /// respect regardless of tolerance (used for the 1-core batch
    /// overhead floor).
    pub absolute: bool,
}

impl Metric {
    /// Whether the fresh value constitutes a regression at `tolerance`
    /// (e.g. 0.25 = a tracked speedup may lose up to 25% before failing).
    pub fn regressed(&self, tolerance: f64) -> bool {
        if !self.fresh.is_finite() || !self.baseline.is_finite() {
            return true;
        }
        if self.absolute {
            return match self.direction {
                Direction::HigherIsBetter => self.fresh < self.baseline,
                Direction::LowerIsBetter => self.fresh > self.baseline,
            };
        }
        match self.direction {
            Direction::HigherIsBetter => self.fresh < self.baseline * (1.0 - tolerance),
            Direction::LowerIsBetter => self.fresh > self.baseline * (1.0 + tolerance),
        }
    }

    /// fresh / baseline.
    pub fn ratio(&self) -> f64 {
        self.fresh / self.baseline
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} baseline {:>8.3}  fresh {:>8.3}  ({:>6.2}x)",
            self.name,
            self.baseline,
            self.fresh,
            self.ratio()
        )
    }
}

/// Scheduler-overhead floor enforced for the batch-engine ratio when either
/// side of the comparison ran on a single core (where no parallel win is
/// physically possible).
pub const BATCH_OVERHEAD_FLOOR: f64 = 0.70;

/// Absolute ceiling on the numerical-health sweep's cost relative to one
/// batched member-iteration: the guard runs every staged iteration, so it
/// must stay noise (< 3%) regardless of runner speed.
pub const HEALTH_SWEEP_OVERHEAD_BOUND: f64 = 0.03;

/// Extract the tracked metrics from the three artifact pairs.  Each
/// argument is the parsed JSON of the corresponding file.
pub fn collect_metrics(
    scoring_baseline: &Json,
    scoring_fresh: &Json,
    ccd_baseline: &Json,
    ccd_fresh: &Json,
    batch_baseline: &Json,
    batch_fresh: &Json,
) -> Result<Vec<Metric>, String> {
    let mut metrics = Vec::new();

    // scoring_pipeline: allocating/workspace speedup per loop length.
    pair_by_key(
        scoring_baseline.get("results"),
        scoring_fresh.get("results"),
        "loop_len",
        "speedup",
        |id, b, f| {
            metrics.push(Metric {
                name: format!("scoring workspace speedup (len {id})"),
                baseline: b,
                fresh: f,
                direction: Direction::HigherIsBetter,
                absolute: false,
            });
        },
    )?;

    // scoring_pipeline: 4-objective vs 3-objective cost ratio (lower is
    // better).  Optional in the baseline for forward compatibility.
    if let (Some(b), Some(f)) = (
        scoring_baseline
            .get("objectives")
            .and_then(|o| o.num("cost_ratio")),
        scoring_fresh
            .get("objectives")
            .and_then(|o| o.num("cost_ratio")),
    ) {
        metrics.push(Metric {
            name: "4-objective eval cost ratio".to_string(),
            baseline: b,
            fresh: f,
            direction: Direction::LowerIsBetter,
            absolute: false,
        });
    }

    // scoring_pipeline: staged batched-pipeline vs per-member-reference
    // trajectory speedup (higher is better).  Optional in the baseline for
    // forward compatibility; once snapshotted it cannot silently regress.
    if let (Some(b), Some(f)) = (
        scoring_baseline
            .get("pipeline")
            .and_then(|o| o.num("speedup")),
        scoring_fresh.get("pipeline").and_then(|o| o.num("speedup")),
    ) {
        metrics.push(Metric {
            name: "batched pipeline speedup".to_string(),
            baseline: b,
            fresh: f,
            direction: Direction::HigherIsBetter,
            absolute: false,
        });
    }

    // scoring_pipeline: numerical-health-sweep overhead per batched
    // member-iteration.  Gated against the absolute 3% bound (the ratio
    // is measured in-process, so no baseline is needed); optional until
    // the artifacts carry the section.
    if let Some(f) = scoring_fresh
        .get("health_sweep")
        .and_then(|o| o.num("overhead_ratio"))
    {
        metrics.push(Metric {
            name: format!("health sweep overhead (bound {HEALTH_SWEEP_OVERHEAD_BOUND})"),
            baseline: HEALTH_SWEEP_OVERHEAD_BOUND,
            fresh: f,
            direction: Direction::LowerIsBetter,
            absolute: true,
        });
    }

    // ccd_closure: incremental-rebuild speedup per loop length.
    pair_by_key(
        ccd_baseline.get("ccd").and_then(|c| c.get("results")),
        ccd_fresh.get("ccd").and_then(|c| c.get("results")),
        "loop_len",
        "speedup",
        |id, b, f| {
            metrics.push(Metric {
                name: format!("ccd incremental speedup (len {id})"),
                baseline: b,
                fresh: f,
                direction: Direction::HigherIsBetter,
                absolute: false,
            });
        },
    )?;

    // ccd_closure: wide-lane SIMD speedup of the batched optimal-rotation
    // kernel (median across lane counts).  Present only when the bench ran
    // with the `simd` feature; optional on both sides so scalar-only runs
    // still gate everything else, but once both artifacts carry it the
    // wide kernels cannot silently regress to scalar speed.
    if let (Some(b), Some(f)) = (
        ccd_baseline.get("simd").and_then(|o| o.num("speedup")),
        ccd_fresh.get("simd").and_then(|o| o.num("speedup")),
    ) {
        metrics.push(Metric {
            name: "simd rotation-kernel speedup".to_string(),
            baseline: b,
            fresh: f,
            direction: Direction::HigherIsBetter,
            absolute: false,
        });
    }

    // ccd_closure: lane-major NeRF spine-rebuild speedup (median across
    // member counts) — the cost that dominates close_batch.  Present only
    // when the bench ran with the `simd` feature; optional on both sides
    // like the rotation-kernel metric.
    if let (Some(b), Some(f)) = (
        ccd_baseline.get("rebuild").and_then(|o| o.num("speedup")),
        ccd_fresh.get("rebuild").and_then(|o| o.num("speedup")),
    ) {
        metrics.push(Metric {
            name: "simd spine-rebuild speedup".to_string(),
            baseline: b,
            fresh: f,
            direction: Direction::HigherIsBetter,
            absolute: false,
        });
    }

    // ccd_closure: closure-level wide-vs-scalar close_batch speedup per
    // CCD block width.  Rows carry "speedup" only when the bench ran with
    // the `simd` feature; each width present on both sides is gated.
    if let (Some(b_rows), Some(f_rows)) = (
        ccd_baseline
            .get("blocks")
            .and_then(|c| c.get("results"))
            .and_then(Json::as_array),
        ccd_fresh
            .get("blocks")
            .and_then(|c| c.get("results"))
            .and_then(Json::as_array),
    ) {
        for row in b_rows {
            let (Some(id), Some(b)) = (row.num("block_width"), row.num("speedup")) else {
                continue;
            };
            if let Some(f) = f_rows
                .iter()
                .find(|r| r.num("block_width") == Some(id))
                .and_then(|r| r.num("speedup"))
            {
                metrics.push(Metric {
                    name: format!("close_batch wide speedup (w{})", id as i64),
                    baseline: b,
                    fresh: f,
                    direction: Direction::HigherIsBetter,
                    absolute: false,
                });
            }
        }
    }

    // ccd_closure: cell-list speedup per environment factor.
    pair_by_key(
        ccd_baseline.get("vdw_env").and_then(|c| c.get("results")),
        ccd_fresh.get("vdw_env").and_then(|c| c.get("results")),
        "env_factor",
        "speedup",
        |id, b, f| {
            metrics.push(Metric {
                name: format!("vdw_env cell-list speedup (x{id})"),
                baseline: b,
                fresh: f,
                direction: Direction::HigherIsBetter,
                absolute: false,
            });
        },
    )?;

    // ccd_closure: per-residue candidate-window speedup over per-site
    // cell-list queries (median across environment factors).  Optional on
    // both sides for forward compatibility.
    if let (Some(b), Some(f)) = (
        ccd_baseline
            .get("vdw_env")
            .and_then(|o| o.num("window_speedup")),
        ccd_fresh
            .get("vdw_env")
            .and_then(|o| o.num("window_speedup")),
    ) {
        metrics.push(Metric {
            name: "vdw_env per-residue-window speedup".to_string(),
            baseline: b,
            fresh: f,
            direction: Direction::HigherIsBetter,
            absolute: false,
        });
    }

    // batch_engine: sequential/batch speedup.  On a 1-core runner (either
    // side) no scheduling win is physically possible — enforce only the
    // scheduler-overhead floor.
    let fresh_speedup = batch_fresh
        .num("speedup")
        .ok_or("batch fresh artifact missing \"speedup\"")?;
    let baseline_speedup = batch_baseline
        .num("speedup")
        .ok_or("batch baseline artifact missing \"speedup\"")?;
    let one_core = batch_fresh.num("host_cores").unwrap_or(1.0) <= 1.0
        || batch_baseline.num("host_cores").unwrap_or(1.0) <= 1.0;
    if one_core {
        metrics.push(Metric {
            name: format!("batch speedup (1-core floor {BATCH_OVERHEAD_FLOOR})"),
            baseline: BATCH_OVERHEAD_FLOOR,
            fresh: fresh_speedup,
            direction: Direction::HigherIsBetter,
            absolute: true,
        });
    } else {
        metrics.push(Metric {
            name: "batch engine speedup".to_string(),
            baseline: baseline_speedup,
            fresh: fresh_speedup,
            direction: Direction::HigherIsBetter,
            absolute: false,
        });
    }

    Ok(metrics)
}

/// Walk two parallel result arrays matched by an integer `key` field and
/// hand each matched pair's `field` values to `emit`.  A baseline row with
/// no matching fresh row is an error (the bench stopped covering a tracked
/// point); extra fresh rows are fine (new coverage is not gated yet).
fn pair_by_key(
    baseline: Option<&Json>,
    fresh: Option<&Json>,
    key: &str,
    field: &str,
    mut emit: impl FnMut(i64, f64, f64),
) -> Result<(), String> {
    let baseline = baseline
        .and_then(Json::as_array)
        .ok_or_else(|| format!("baseline artifact missing results array keyed by {key:?}"))?;
    let fresh = fresh
        .and_then(Json::as_array)
        .ok_or_else(|| format!("fresh artifact missing results array keyed by {key:?}"))?;
    for row in baseline {
        let id = row
            .num(key)
            .ok_or_else(|| format!("baseline row missing {key:?}"))? as i64;
        let b = row
            .num(field)
            .ok_or_else(|| format!("baseline row missing {field:?}"))?;
        let f = fresh
            .iter()
            .find(|r| r.num(key).map(|v| v as i64) == Some(id))
            .and_then(|r| r.num(field))
            .ok_or_else(|| format!("fresh artifact lost tracked point {key}={id}"))?;
        emit(id, b, f);
    }
    Ok(())
}

/// Run the gate over parsed artifacts: returns the per-metric report and
/// the list of regressions at `tolerance`.
pub fn gate(
    scoring_baseline: &Json,
    scoring_fresh: &Json,
    ccd_baseline: &Json,
    ccd_fresh: &Json,
    batch_baseline: &Json,
    batch_fresh: &Json,
    tolerance: f64,
) -> Result<(Vec<Metric>, Vec<Metric>), String> {
    let metrics = collect_metrics(
        scoring_baseline,
        scoring_fresh,
        ccd_baseline,
        ccd_fresh,
        batch_baseline,
        batch_fresh,
    )?;
    let regressions: Vec<Metric> = metrics
        .iter()
        .filter(|m| m.regressed(tolerance))
        .cloned()
        .collect();
    Ok((metrics, regressions))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORING: &str = r#"{
      "benchmark": "scoring_pipeline", "unit": "ns/eval",
      "results": [
        {"loop_len": 4, "allocating_ns_per_eval": 29688.8, "workspace_ns_per_eval": 4289.0, "speedup": 6.922},
        {"loop_len": 8, "allocating_ns_per_eval": 67724.5, "workspace_ns_per_eval": 13630.1, "speedup": 4.969}
      ],
      "objectives": {"env_factor": 10, "three_objective_ns_per_eval": 10000.0,
                     "four_objective_ns_per_eval": 11000.0, "cost_ratio": 1.100},
      "pipeline": {"loop_len": 12, "population": 32, "iterations": 6,
                   "per_member_ns_per_member_iter": 600000.0,
                   "batched_ns_per_member_iter": 400000.0, "speedup": 1.500}
    }"#;

    const CCD: &str = r#"{
      "benchmark": "ccd_closure", "unit": "ns",
      "ccd": {"results": [
        {"loop_len": 4, "speedup": 1.543}, {"loop_len": 8, "speedup": 1.660}
      ]},
      "vdw_env": {"results": [
        {"env_factor": 1, "speedup": 1.185, "window_speedup": 1.7},
        {"env_factor": 10, "speedup": 10.366, "window_speedup": 1.9}
      ], "window_speedup": 1.800},
      "blocks": {"results": [
        {"block_width": 4, "scalar_ns_per_member": 100.0},
        {"block_width": 8, "scalar_ns_per_member": 100.0, "wide_ns_per_member": 80.0, "speedup": 1.250}
      ]},
      "rebuild": {"isa": "sse2+avx2", "speedup": 1.600},
      "simd": {"lane_width": 4, "speedup": 1.320}
    }"#;

    const BATCH_1CORE: &str = r#"{"benchmark": "batch_engine", "host_cores": 1, "speedup": 0.958}"#;
    const BATCH_8CORE: &str = r#"{"benchmark": "batch_engine", "host_cores": 8, "speedup": 4.1}"#;

    fn j(s: &str) -> Json {
        Json::parse(s).expect("valid test JSON")
    }

    #[test]
    fn parser_round_trips_the_artifact_shapes() {
        let v = j(SCORING);
        assert_eq!(v.num("unit"), None);
        assert_eq!(
            v.get("results").unwrap().as_array().unwrap()[1].num("loop_len"),
            Some(8.0)
        );
        assert_eq!(v.get("objectives").unwrap().num("cost_ratio"), Some(1.100));
        assert!(Json::parse("{\"a\": [1, 2,]}").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert_eq!(j("[true, false, null]").as_array().unwrap().len(), 3);
        assert_eq!(j("\"a\\\"b\""), Json::Str("a\"b".to_string()));
    }

    #[test]
    fn identical_artifacts_pass() {
        let (metrics, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        // 2 scoring speedups + cost ratio + pipeline + 2 ccd + rebuild
        // + blocks w8 + simd + 2 vdw_env + window + batch floor.
        assert_eq!(metrics.len(), 13);
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn batched_pipeline_regression_fails_the_gate() {
        // Losing the batching win (1.50 → 1.05, i.e. −30%) must trip the
        // 25% gate.
        let degraded = SCORING.replace("\"speedup\": 1.500", "\"speedup\": 1.05");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(&degraded),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("pipeline"));
        // A baseline without the pipeline section is still accepted (the
        // metric is optional until snapshotted).
        let legacy = SCORING.replace(
            ",\n      \"pipeline\": {\"loop_len\": 12, \"population\": 32, \"iterations\": 6,\n                   \"per_member_ns_per_member_iter\": 600000.0,\n                   \"batched_ns_per_member_iter\": 400000.0, \"speedup\": 1.500}",
            "",
        );
        assert_ne!(legacy, SCORING, "fixture surgery failed");
        let (metrics, regressions) = gate(
            &j(&legacy),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(metrics.len(), 12);
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn simd_kernel_regression_fails_the_gate() {
        // The wide kernels decaying to below scalar speed (1.32 → 0.90,
        // i.e. −32%) must trip the 25% gate.
        let degraded = CCD.replace("\"speedup\": 1.320", "\"speedup\": 0.90");
        assert_ne!(degraded, CCD, "fixture surgery failed");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(&degraded),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("simd"));
        // A fresh artifact from a scalar-only bench run has no "simd"
        // section: the metric is skipped, everything else still gates.
        let scalar_only = CCD.replace(
            ",\n      \"simd\": {\"lane_width\": 4, \"speedup\": 1.320}",
            "",
        );
        assert_ne!(scalar_only, CCD, "fixture surgery failed");
        let (metrics, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(&scalar_only),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(metrics.len(), 12);
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn spine_rebuild_and_window_regressions_fail_the_gate() {
        // The lane-major rebuild decaying to below scalar speed (1.60 →
        // 1.00, i.e. −38%) must trip the 25% gate.
        let degraded = CCD.replace(
            "\"rebuild\": {\"isa\": \"sse2+avx2\", \"speedup\": 1.600}",
            "\"rebuild\": {\"isa\": \"sse2+avx2\", \"speedup\": 1.000}",
        );
        assert_ne!(degraded, CCD, "fixture surgery failed");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(&degraded),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("spine-rebuild"));
        // Likewise the per-residue-window pass falling back to per-site
        // cost (1.80 → 1.00) and the closure-level close_batch win
        // evaporating (1.25 → 0.90).
        let degraded = CCD
            .replace("\"window_speedup\": 1.800", "\"window_speedup\": 1.000")
            .replace("\"speedup\": 1.250", "\"speedup\": 0.900");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(&degraded),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().any(|m| m.name.contains("close_batch")));
        assert!(regressions.iter().any(|m| m.name.contains("window")));
    }

    #[test]
    fn degraded_fresh_speedup_fails_the_gate() {
        // A fresh run that lost the len-8 workspace speedup (4.97 → 2.0,
        // i.e. −60%) must trip the 25% gate.
        let degraded = SCORING.replace("\"speedup\": 4.969", "\"speedup\": 2.0");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(&degraded),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("len 8"));
    }

    #[test]
    fn inflated_baseline_fails_the_gate() {
        // Equivalently, an artificially inflated baseline (the PR's
        // verification scenario): raise the committed len-4 baseline far
        // above what the real pipeline measures.
        let inflated = SCORING.replace("\"speedup\": 6.922", "\"speedup\": 40.0");
        let (_, regressions) = gate(
            &j(&inflated),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("len 4"));
    }

    #[test]
    fn cost_ratio_regression_fails_the_gate() {
        // The 4-objective eval getting relatively more expensive than the
        // baseline recorded (1.10 → 1.45 is a +32% cost regression).
        let worse = SCORING.replace("\"cost_ratio\": 1.100", "\"cost_ratio\": 1.450");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(&worse),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("cost ratio"));
    }

    #[test]
    fn health_sweep_overhead_is_gated_against_the_absolute_bound() {
        // A fresh artifact carrying the health_sweep section adds one
        // metric; within the 3% bound it passes…
        let with_sweep = SCORING.replace(
            "\"pipeline\": {",
            "\"health_sweep\": {\"population\": 32, \"sweep_ns_per_member\": 120.0,
                   \"batched_ns_per_member_iter\": 400000.0, \"overhead_ratio\": 0.0003},
      \"pipeline\": {",
        );
        assert_ne!(with_sweep, SCORING, "fixture surgery failed");
        let (metrics, regressions) = gate(
            &j(SCORING),
            &j(&with_sweep),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert_eq!(metrics.len(), 14);
        assert!(regressions.is_empty(), "{regressions:?}");
        // …and past the bound it fails, no matter the tolerance: the
        // bound is absolute, so even a huge tolerance cannot excuse it.
        let blown = with_sweep.replace("\"overhead_ratio\": 0.0003", "\"overhead_ratio\": 0.05");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(&blown),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            5.0,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].name.contains("health sweep"));
    }

    #[test]
    fn small_noise_within_tolerance_passes() {
        let noisy = SCORING
            .replace("\"speedup\": 6.922", "\"speedup\": 5.9")
            .replace("\"cost_ratio\": 1.100", "\"cost_ratio\": 1.30");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(&noisy),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn one_core_batch_runs_only_enforce_the_overhead_floor() {
        // A 1-core fresh run with ratio 0.96 passes even against a
        // multi-core baseline…
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_8CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
        // …but a run whose scheduler overhead blows past the floor fails.
        let pathological = BATCH_1CORE.replace("\"speedup\": 0.958", "\"speedup\": 0.5");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(&pathological),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
        // Multi-core vs multi-core compares ratios normally.
        let slow = BATCH_8CORE.replace("\"speedup\": 4.1", "\"speedup\": 2.0");
        let (_, regressions) = gate(
            &j(SCORING),
            &j(SCORING),
            &j(CCD),
            &j(CCD),
            &j(BATCH_8CORE),
            &j(&slow),
            0.25,
        )
        .unwrap();
        assert_eq!(regressions.len(), 1);
    }

    #[test]
    fn losing_a_tracked_point_is_an_error() {
        let truncated = SCORING.replace(
            ",\n        {\"loop_len\": 8, \"allocating_ns_per_eval\": 67724.5, \"workspace_ns_per_eval\": 13630.1, \"speedup\": 4.969}",
            "",
        );
        assert!(gate(
            &j(SCORING),
            &j(&truncated),
            &j(CCD),
            &j(CCD),
            &j(BATCH_1CORE),
            &j(BATCH_1CORE),
            0.25,
        )
        .is_err());
    }
}
