//! Harness binary regenerating the paper's fig4 speedup scaling experiment.
//! Usage: `cargo run --release -p lms-bench --bin fig4_speedup_scaling [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig4_speedup_scaling(scale));
}
