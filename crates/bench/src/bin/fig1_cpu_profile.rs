//! Harness binary regenerating the paper's fig1 cpu profile experiment.
//!
//! Besides the component shares, the report breaks the measured host time
//! down by staged kernel launch — the evolution loop now runs as one
//! population-wide launch per stage (`mutate`/`close`/`rebuild`/`score`/
//! `metropolis`/`select`) over the SoA member arena, so per-stage times are
//! measured rather than apportioned from a monolithic evolve pass.
//!
//! Usage: `cargo run --release -p lms-bench --bin fig1_cpu_profile [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig1_cpu_profile(scale));
}
