//! Harness binary regenerating the paper's fig1 cpu profile experiment.
//! Usage: `cargo run --release -p lms-bench --bin fig1_cpu_profile [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig1_cpu_profile(scale));
}
