//! Harness binary regenerating the paper's fig6 best decoys experiment.
//! Usage: `cargo run --release -p lms-bench --bin fig6_best_decoys [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig6_best_decoys(scale));
}
