//! Harness binary regenerating the paper's fig5 front evolution experiment.
//! Usage: `cargo run --release -p lms-bench --bin fig5_front_evolution [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig5_front_evolution(scale));
}
