//! Harness binary regenerating the paper's fig3 population size experiment.
//! Usage: `cargo run --release -p lms-bench --bin fig3_population_size [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::fig3_population_size(scale));
}
