//! Harness binary regenerating the paper's table1 speedup experiment.
//! Usage: `cargo run --release -p lms-bench --bin table1_speedup [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::table1_speedup(scale));
}
