//! CI perf-regression gate over the bench artifacts.
//!
//! Compares the freshly produced `BENCH_scoring.json` / `BENCH_ccd.json` /
//! `BENCH_batch.json` against the committed `BENCH_*.baseline.json`
//! snapshots and exits non-zero when any tracked speedup ratio regresses
//! more than the noise tolerance (default 25%).  Only ratios are gated, so
//! the check is robust to absolute runner speed; the batch-engine ratio is
//! reduced to a scheduler-overhead floor on 1-core runners.
//!
//! ```text
//! cargo run -p lms-bench --bin check_regression -- \
//!     [--tolerance 0.25] [--baseline-dir DIR] [--fresh-dir DIR]
//! ```

use lms_bench::regression::{gate, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    tolerance: f64,
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
}

fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn parse_options() -> Result<Options, String> {
    let root = workspace_root();
    let mut opts = Options {
        tolerance: 0.25,
        baseline_dir: root.clone(),
        fresh_dir: root,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--tolerance" => {
                opts.tolerance = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                i += 2;
            }
            "--baseline-dir" => {
                opts.baseline_dir = PathBuf::from(value(i)?);
                i += 2;
            }
            "--fresh-dir" => {
                opts.fresh_dir = PathBuf::from(value(i)?);
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn load(dir: &Path, name: &str) -> Result<Json, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn run() -> Result<bool, String> {
    let opts = parse_options()?;
    let scoring_baseline = load(&opts.baseline_dir, "BENCH_scoring.baseline.json")?;
    let ccd_baseline = load(&opts.baseline_dir, "BENCH_ccd.baseline.json")?;
    let batch_baseline = load(&opts.baseline_dir, "BENCH_batch.baseline.json")?;
    let scoring_fresh = load(&opts.fresh_dir, "BENCH_scoring.json")?;
    let ccd_fresh = load(&opts.fresh_dir, "BENCH_ccd.json")?;
    let batch_fresh = load(&opts.fresh_dir, "BENCH_batch.json")?;

    let (metrics, regressions) = gate(
        &scoring_baseline,
        &scoring_fresh,
        &ccd_baseline,
        &ccd_fresh,
        &batch_baseline,
        &batch_fresh,
        opts.tolerance,
    )?;

    println!(
        "perf-regression gate: {} tracked ratios, tolerance {:.0}%",
        metrics.len(),
        opts.tolerance * 100.0
    );
    for m in &metrics {
        let flag = if m.regressed(opts.tolerance) {
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  [{flag:>9}] {m}");
    }
    if regressions.is_empty() {
        println!("gate PASSED");
        Ok(true)
    } else {
        println!("gate FAILED: {} regression(s)", regressions.len());
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("check_regression error: {e}");
            ExitCode::FAILURE
        }
    }
}
