//! Harness binary regenerating the paper's table2 kernel profile experiment.
//!
//! The rows report the staged population-batched pipeline's per-stage
//! kernel launches (one launch per stage per iteration over the SoA member
//! arena) with measured host time per kernel, replacing the pre-batching
//! report that apportioned one monolithic per-member evolve pass by modeled
//! work.
//!
//! Usage: `cargo run --release -p lms-bench --bin table2_kernel_profile [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::table2_kernel_profile(scale));
}
