//! Harness binary regenerating the paper's table2 kernel profile experiment.
//! Usage: `cargo run --release -p lms-bench --bin table2_kernel_profile [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::table2_kernel_profile(scale));
}
