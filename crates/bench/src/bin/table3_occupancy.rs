//! Harness binary regenerating the paper's table3 occupancy experiment.
//! Usage: `cargo run --release -p lms-bench --bin table3_occupancy [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::table3_occupancy(scale));
}
