//! Harness binary regenerating the paper's table4 benchmark experiment.
//! Usage: `cargo run --release -p lms-bench --bin table4_benchmark [--scale quick|standard|paper]`

fn main() {
    let scale = lms_bench::Scale::from_args();
    println!("scale: {scale:?}");
    println!("{}", lms_bench::experiments::table4_benchmark(scale));
}
