//! Deterministic fault injection for the staged kernel pipeline.
//!
//! A service-grade runtime has to *prove* its recovery paths, not hope for
//! them.  This module provides the harness: a [`FaultPlan`] is a seeded
//! schedule of faults keyed by `(KernelKind, launch_index, lane)` — the
//! coordinates of one logical device thread of one population-wide kernel
//! launch — and a [`FaultSession`] arms that plan for a run.  While a
//! session is installed on the launching thread (see [`install`]),
//! [`Executor::launch`](crate::Executor::launch) consults it before every
//! lane and fires the armed fault:
//!
//! * [`FaultKind::Panic`] — the lane panics with a payload naming the site,
//!   exercising the engine supervisor's `catch_unwind` / retry path.
//! * [`FaultKind::Nan`] — the lane is flagged for *cooperative* NaN
//!   poisoning: the stage kernel consults [`take_nan`] and writes a
//!   non-finite value into its own output slot, exercising the numerical
//!   health guards.  Stages whose outputs are not floating-point treat the
//!   flag as a no-op (it is cleared after the lane either way).
//! * [`FaultKind::Stall`] — the lane sleeps before running, exercising
//!   wall-clock deadlines.
//!
//! Everything is deterministic: launch indices are per-kernel counters on
//! the session (the stage sequence of the pipeline is itself
//! deterministic), lanes are population member indices, and the seeded
//! plan generator is a pure function of its seed.  Because a session's
//! counters advance monotonically *across* same-seed retries, a fault
//! keyed to an early launch behaves like a transient: the retry runs past
//! it, which is exactly the failure model the supervisor targets.
//!
//! The whole module sits behind the `fault-injection` cargo feature; with
//! the feature off, none of this code exists and the executor's launch
//! path is unchanged.

use crate::kernel::KernelKind;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an armed fault site does when its launch reaches the keyed lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic on the faulted lane; the payload names the site so the
    /// supervisor's `JobPanicked` detail identifies the injection.
    Panic,
    /// Arm cooperative NaN poisoning for the faulted lane: the stage
    /// kernel consults [`take_nan`] and writes a non-finite value into its
    /// output slot.  Inert on stages with non-float outputs.
    Nan,
    /// Sleep for the given duration before the lane runs (an artificial
    /// stall, caught by wall-clock deadlines).
    Stall(Duration),
}

/// The coordinates of one fault: a kernel, the ordinal of that kernel's
/// launch within the run (0-based, counted per kernel kind), and the lane
/// (logical device thread index, i.e. population member or CCD block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// Which kernel the fault targets.
    pub kind: KernelKind,
    /// 0-based ordinal of the targeted launch among all launches of
    /// `kind` in the session.
    pub launch_index: u64,
    /// Logical device thread index within the launch.
    pub lane: usize,
}

impl FaultSite {
    /// A fault site from its three coordinates.
    pub fn new(kind: KernelKind, launch_index: u64, lane: usize) -> FaultSite {
        FaultSite {
            kind,
            launch_index,
            lane,
        }
    }
}

/// A deterministic schedule of faults: which sites fire, and what each
/// does.  Build one explicitly with [`FaultPlan::inject`] or generate a
/// pseudo-random schedule with [`FaultPlan::seeded`] (a pure function of
/// the seed — the property tests rely on replayability).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    sites: HashMap<FaultSite, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm `fault` at `(kind, launch_index, lane)`, replacing any fault
    /// already armed there.  Builder-style.
    pub fn inject(
        mut self,
        kind: KernelKind,
        launch_index: u64,
        lane: usize,
        fault: FaultKind,
    ) -> FaultPlan {
        self.sites
            .insert(FaultSite::new(kind, launch_index, lane), fault);
        self
    }

    /// A pseudo-random schedule of `count` faults drawn deterministically
    /// from `seed`: kernels from `stages`, launch indices below
    /// `max_launch_index`, lanes below `max_lane`, cycling through
    /// panic/NaN/stall kinds.  Same seed, same plan — always.
    pub fn seeded(
        seed: u64,
        count: usize,
        stages: &[KernelKind],
        max_launch_index: u64,
        max_lane: usize,
    ) -> FaultPlan {
        assert!(!stages.is_empty(), "seeded plan needs at least one stage");
        assert!(max_launch_index > 0 && max_lane > 0, "bounds must be > 0");
        let mut state = seed;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let kind = stages[(splitmix64(&mut state) as usize) % stages.len()];
            let launch_index = splitmix64(&mut state) % max_launch_index;
            let lane = (splitmix64(&mut state) as usize) % max_lane;
            let fault = match splitmix64(&mut state) % 3 {
                0 => FaultKind::Panic,
                1 => FaultKind::Nan,
                _ => FaultKind::Stall(Duration::from_millis(1)),
            };
            plan = plan.inject(kind, launch_index, lane, fault);
        }
        plan
    }

    /// Number of armed sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The fault armed at a site, if any.
    pub fn fault_at(&self, site: FaultSite) -> Option<FaultKind> {
        self.sites.get(&site).copied()
    }

    /// The armed sites, in an arbitrary order.
    pub fn sites(&self) -> impl Iterator<Item = (FaultSite, FaultKind)> + '_ {
        self.sites.iter().map(|(s, f)| (*s, *f))
    }
}

/// SplitMix64: the tiny, well-mixed PRNG step used by the seeded plan
/// generator (no external RNG dependency in this crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Dense per-kernel index for the launch counters.
fn kernel_slot(kind: KernelKind) -> usize {
    KernelKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every KernelKind is in ALL")
}

/// An armed [`FaultPlan`] plus the per-kernel launch counters that give
/// each launch its deterministic `launch_index`.  One session spans one
/// job — including its same-seed retries, so counters keep advancing
/// across attempts and an injected fault behaves like a transient.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    counters: Vec<AtomicU64>,
}

impl FaultSession {
    /// Arm a plan: counters start at zero.
    pub fn begin(plan: FaultPlan) -> Arc<FaultSession> {
        Arc::new(FaultSession {
            plan,
            counters: KernelKind::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// The session's plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Claim the next launch index for `kind` (called once per
    /// [`Executor::launch`](crate::Executor::launch), on the launching
    /// thread, so the sequence is deterministic).
    pub fn next_launch_index(&self, kind: KernelKind) -> u64 {
        self.counters[kernel_slot(kind)].fetch_add(1, Ordering::Relaxed)
    }

    /// Launches of `kind` recorded so far.
    pub fn launches(&self, kind: KernelKind) -> u64 {
        self.counters[kernel_slot(kind)].load(Ordering::Relaxed)
    }

    /// Fire the fault armed at `(kind, launch_index, lane)`, if any:
    /// panics, sleeps, or arms the thread-local NaN-poison flag.  Called
    /// by the executor on whichever worker runs the lane.
    pub fn fire(&self, kind: KernelKind, launch_index: u64, lane: usize) {
        match self.plan.fault_at(FaultSite::new(kind, launch_index, lane)) {
            None => {}
            Some(FaultKind::Panic) => panic!(
                "injected fault: panic in {} launch {launch_index} lane {lane}",
                kind.name()
            ),
            Some(FaultKind::Stall(d)) => std::thread::sleep(d),
            Some(FaultKind::Nan) => NAN_PENDING.with(|f| f.set(true)),
        }
    }
}

thread_local! {
    /// The session consulted by `Executor::launch` on this thread.
    static ACTIVE: RefCell<Option<Arc<FaultSession>>> = const { RefCell::new(None) };
    /// Set by `FaultSession::fire` for a NaN site, consumed by the stage
    /// kernel (or cleared by the executor after the lane).
    static NAN_PENDING: Cell<bool> = const { Cell::new(false) };
}

/// Install `session` as the active fault session on the *calling* thread
/// until the returned guard drops.  Launches issued from this thread (the
/// job's worker thread) consult the session; the per-lane fault checks
/// follow the launch onto pool workers automatically.
#[must_use = "the session is uninstalled when the guard drops"]
pub fn install(session: Arc<FaultSession>) -> FaultGuard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(session));
    FaultGuard { prev }
}

/// Uninstalls the session installed by [`install`] on drop, restoring
/// whatever was active before (sessions nest).
#[derive(Debug)]
pub struct FaultGuard {
    prev: Option<Arc<FaultSession>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// The session installed on this thread, if any (used by
/// [`Executor::launch`](crate::Executor::launch)).
pub fn active() -> Option<Arc<FaultSession>> {
    ACTIVE.with(|a| a.borrow().clone())
}

/// Consume the NaN-poison flag for the current lane.  Stage kernels call
/// this once per lane and, when it returns `true`, write a non-finite
/// value into their output slot — the cooperative half of
/// [`FaultKind::Nan`].
pub fn take_nan() -> bool {
    NAN_PENDING.with(|f| f.replace(false))
}

/// Clear any unconsumed NaN-poison flag (the executor calls this after
/// every lane so an inert stage cannot leak the flag to the next lane
/// scheduled on the same worker thread).
pub fn clear_nan() {
    NAN_PENDING.with(|f| f.set(false));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecutorConfig;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn seeded_plans_are_replayable_and_seed_sensitive() {
        let stages = [KernelKind::Reproduction, KernelKind::EvalVdw];
        let a = FaultPlan::seeded(42, 8, &stages, 10, 16);
        let b = FaultPlan::seeded(42, 8, &stages, 10, 16);
        let c = FaultPlan::seeded(43, 8, &stages, 10, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.len() <= 8); // collisions may merge sites
        for (site, _) in a.sites() {
            assert!(stages.contains(&site.kind));
            assert!(site.launch_index < 10);
            assert!(site.lane < 16);
        }
    }

    #[test]
    fn session_counts_launches_per_kernel() {
        let s = FaultSession::begin(FaultPlan::new());
        assert_eq!(s.next_launch_index(KernelKind::Ccd), 0);
        assert_eq!(s.next_launch_index(KernelKind::Ccd), 1);
        assert_eq!(s.next_launch_index(KernelKind::Select), 0);
        assert_eq!(s.launches(KernelKind::Ccd), 2);
        assert_eq!(s.launches(KernelKind::Select), 1);
        assert_eq!(s.launches(KernelKind::Metropolis), 0);
    }

    #[test]
    fn injected_panic_fires_at_exactly_the_keyed_site() {
        let plan = FaultPlan::new().inject(KernelKind::EvalVdw, 1, 3, FaultKind::Panic);
        let session = FaultSession::begin(plan);
        let _guard = install(session);
        let exec = ExecutorConfig::scalar().build().unwrap();
        // Launch 0 of EvalVdw and any launch of another kernel are clean.
        let ran = AtomicUsize::new(0);
        let _ = exec.launch(KernelKind::EvalVdw, 8, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        let _ = exec.launch(KernelKind::EvalDist, 8, |_| {});
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        // Launch 1 of EvalVdw panics on lane 3.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = exec.launch(KernelKind::EvalVdw, 8, |_| {});
        }));
        let payload = result.expect_err("lane 3 must panic");
        let detail = payload
            .downcast_ref::<String>()
            .expect("injected panic carries a String payload");
        assert!(detail.contains("[EvalVDW]"), "payload: {detail}");
        assert!(detail.contains("lane 3"), "payload: {detail}");
    }

    #[test]
    fn nan_flag_is_armed_for_the_faulted_lane_and_cleared_after() {
        let plan = FaultPlan::new().inject(KernelKind::Reproduction, 0, 2, FaultKind::Nan);
        let _guard = install(FaultSession::begin(plan));
        let exec = ExecutorConfig::scalar().build().unwrap();
        let mut poisoned = vec![false; 4];
        {
            let flags = std::sync::Mutex::new(&mut poisoned);
            let _ = exec.launch(KernelKind::Reproduction, 4, |i| {
                flags.lock().unwrap()[i] = take_nan();
            });
        }
        assert_eq!(poisoned, vec![false, false, true, false]);
        // A second launch (index 1) matches no site; a kernel that never
        // consults take_nan must not see a stale flag either.
        let _ = exec.launch(KernelKind::Reproduction, 4, |_| {});
        assert!(!take_nan());
    }

    #[test]
    fn stall_delays_the_keyed_lane() {
        let stall = Duration::from_millis(20);
        let plan = FaultPlan::new().inject(KernelKind::Ccd, 0, 0, FaultKind::Stall(stall));
        let _guard = install(FaultSession::begin(plan));
        let launch = ExecutorConfig::scalar()
            .build()
            .unwrap()
            .launch(KernelKind::Ccd, 1, |_| {});
        assert!(launch.host >= stall, "host time {:?}", launch.host);
    }

    #[test]
    fn faults_fire_under_the_parallel_executor_too() {
        let plan = FaultPlan::new().inject(KernelKind::Select, 0, 5, FaultKind::Panic);
        let _guard = install(FaultSession::begin(plan));
        let exec = ExecutorConfig::parallel().threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = exec.launch(KernelKind::Select, 16, |_| {});
        }));
        assert!(result.is_err(), "panic must propagate through the pool");
    }

    #[test]
    fn guard_restores_the_previous_session() {
        assert!(active().is_none());
        let outer = FaultSession::begin(FaultPlan::new());
        let g1 = install(Arc::clone(&outer));
        {
            let inner = FaultSession::begin(FaultPlan::new());
            let _g2 = install(Arc::clone(&inner));
            assert!(Arc::ptr_eq(&active().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&active().unwrap(), &outer));
        drop(g1);
        assert!(active().is_none());
    }
}
