//! The device profiler: per-kernel call counts and accumulated modeled
//! device time, plus memcpy accounting — the data behind the paper's
//! Table II — and the per-kernel occupancy summary behind its Table III.

use crate::device::DeviceSpec;
use crate::executor::Capabilities;
use crate::kernel::KernelKind;
use crate::memory::{transfer_time_us, TransferKind};
use crate::occupancy::Occupancy;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated kernel row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub calls: usize,
    /// Accumulated modeled device time (µs).
    pub device_us: f64,
    /// Accumulated measured host wall-clock time spent executing the
    /// kernel's work on the executor (µs).
    pub host_us: f64,
    /// Accumulated abstract work units.
    pub work_units: f64,
}

/// One aggregated memory-copy row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Number of copies.
    pub calls: usize,
    /// Total bytes moved.
    pub bytes: usize,
    /// Accumulated modeled transfer time (µs).
    pub device_us: f64,
}

/// Thread-safe profiler accumulating kernel and transfer statistics.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Mutex<ProfilerInner>,
}

#[derive(Debug, Default)]
struct ProfilerInner {
    kernels: BTreeMap<KernelKind, KernelStats>,
    transfers: BTreeMap<TransferKind, TransferStats>,
    occupancy: BTreeMap<KernelKind, Occupancy>,
    executor: Option<Capabilities>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Record the capabilities of the executor driving the profiled run,
    /// so every report is attributable to a backend.  The sampler calls
    /// this once at trajectory start with
    /// [`Executor::capabilities`](crate::Executor::capabilities).
    pub fn set_executor(&self, capabilities: Capabilities) {
        self.inner.lock().executor = Some(capabilities);
    }

    /// The executor capabilities recorded by [`Profiler::set_executor`], if
    /// any.
    pub fn executor(&self) -> Option<Capabilities> {
        self.inner.lock().executor
    }

    /// Record one kernel launch.
    pub fn record_kernel(
        &self,
        kind: KernelKind,
        device_us: f64,
        host_us: f64,
        work_units: f64,
        occupancy: Occupancy,
    ) {
        let mut inner = self.inner.lock();
        let e = inner.kernels.entry(kind).or_default();
        e.calls += 1;
        e.device_us += device_us;
        e.host_us += host_us;
        e.work_units += work_units;
        inner.occupancy.insert(kind, occupancy);
    }

    /// Record one memory copy, modeling its time on the given device.
    pub fn record_transfer(&self, spec: &DeviceSpec, kind: TransferKind, bytes: usize) {
        let us = transfer_time_us(spec, kind, bytes);
        let mut inner = self.inner.lock();
        let e = inner.transfers.entry(kind).or_default();
        e.calls += 1;
        e.bytes += bytes;
        e.device_us += us;
    }

    /// Snapshot of the per-kernel statistics.
    pub fn kernel_stats(&self) -> BTreeMap<KernelKind, KernelStats> {
        self.inner.lock().kernels.clone()
    }

    /// Snapshot of the per-transfer statistics.
    pub fn transfer_stats(&self) -> BTreeMap<TransferKind, TransferStats> {
        self.inner.lock().transfers.clone()
    }

    /// Snapshot of the last observed occupancy per kernel.
    pub fn occupancies(&self) -> BTreeMap<KernelKind, Occupancy> {
        self.inner.lock().occupancy.clone()
    }

    /// Total modeled device time across kernels and transfers (µs).
    pub fn total_device_us(&self) -> f64 {
        let inner = self.inner.lock();
        inner.kernels.values().map(|k| k.device_us).sum::<f64>()
            + inner.transfers.values().map(|t| t.device_us).sum::<f64>()
    }

    /// Render the paper's Table II: per-kernel and per-memcpy device time
    /// and percentage of total device time, plus the measured host time of
    /// each staged launch (the pipeline issues one population-wide launch
    /// per stage, so every kernel row carries its own measured host column
    /// instead of a share of one monolithic evolve pass).
    pub fn table2_report(&self) -> String {
        let kernels = self.kernel_stats();
        let transfers = self.transfer_stats();
        let total = self.total_device_us().max(1e-12);

        let mut out = String::new();
        if let Some(caps) = self.executor() {
            writeln!(out, "Executor: {caps}").unwrap();
        }
        writeln!(
            out,
            "{:<10} {:<30} {:>8} {:>16} {:>8} {:>16}",
            "Category", "Method", "#calls", "GPU (usec)", "% GPU", "Host (usec)"
        )
        .unwrap();
        let mut rows: Vec<(KernelKind, KernelStats)> = kernels.into_iter().collect();
        rows.sort_by(|a, b| b.1.device_us.partial_cmp(&a.1.device_us).unwrap());
        for (kind, s) in rows {
            writeln!(
                out,
                "{:<10} {:<30} {:>8} {:>16.0} {:>7.2}% {:>16.0}",
                "Kernel",
                kind.name(),
                s.calls,
                s.device_us,
                100.0 * s.device_us / total,
                s.host_us
            )
            .unwrap();
        }
        for kind in TransferKind::ALL {
            if let Some(s) = transfers.get(&kind) {
                writeln!(
                    out,
                    "{:<10} {:<30} {:>8} {:>16.0} {:>7.2}%",
                    "Mem sync",
                    kind.name(),
                    s.calls,
                    s.device_us,
                    100.0 * s.device_us / total
                )
                .unwrap();
            }
        }
        out
    }

    /// Render the paper's Table III: registers per thread and occupancy for
    /// each profiled kernel.
    pub fn table3_report(&self) -> String {
        let occ = self.occupancies();
        let mut out = String::new();
        writeln!(
            out,
            "{:<32} {:>17} {:>11}",
            "Kernel", "Registers/thread", "Occupancy"
        )
        .unwrap();
        let mut rows: Vec<(KernelKind, Occupancy)> = occ.into_iter().collect();
        rows.sort_by_key(|(k, _)| std::cmp::Reverse(k.registers_per_thread()));
        for (kind, o) in rows {
            writeln!(
                out,
                "{:<32} {:>17} {:>10.0}%",
                kind.name(),
                kind.registers_per_thread(),
                o.occupancy * 100.0
            )
            .unwrap();
        }
        out
    }

    /// Merge another profiler's records into this one (used when worker
    /// threads keep thread-local profilers).
    pub fn merge(&self, other: &Profiler) {
        let other_inner = other.inner.lock();
        let mut inner = self.inner.lock();
        for (k, s) in &other_inner.kernels {
            let e = inner.kernels.entry(*k).or_default();
            e.calls += s.calls;
            e.device_us += s.device_us;
            e.host_us += s.host_us;
            e.work_units += s.work_units;
        }
        for (k, s) in &other_inner.transfers {
            let e = inner.transfers.entry(*k).or_default();
            e.calls += s.calls;
            e.bytes += s.bytes;
            e.device_us += s.device_us;
        }
        for (k, o) in &other_inner.occupancy {
            inner.occupancy.insert(*k, *o);
        }
        if inner.executor.is_none() {
            inner.executor = other_inner.executor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn sample_occupancy(kind: KernelKind) -> Occupancy {
        occupancy(&DeviceSpec::gtx280(), kind.registers_per_thread(), 128, 0)
    }

    #[test]
    fn records_accumulate() {
        let p = Profiler::new();
        let occ = sample_occupancy(KernelKind::Ccd);
        p.record_kernel(KernelKind::Ccd, 100.0, 50.0, 1000.0, occ);
        p.record_kernel(KernelKind::Ccd, 200.0, 80.0, 2000.0, occ);
        p.record_kernel(
            KernelKind::EvalDist,
            30.0,
            10.0,
            500.0,
            sample_occupancy(KernelKind::EvalDist),
        );
        let stats = p.kernel_stats();
        assert_eq!(stats[&KernelKind::Ccd].calls, 2);
        assert_eq!(stats[&KernelKind::Ccd].device_us, 300.0);
        assert_eq!(stats[&KernelKind::Ccd].host_us, 130.0);
        assert_eq!(stats[&KernelKind::Ccd].work_units, 3000.0);
        assert_eq!(stats[&KernelKind::EvalDist].calls, 1);
        assert!((p.total_device_us() - 330.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_records_model_time() {
        let p = Profiler::new();
        let spec = DeviceSpec::gtx280();
        p.record_transfer(&spec, TransferKind::HtoD, 1024 * 1024);
        p.record_transfer(&spec, TransferKind::HtoD, 1024 * 1024);
        p.record_transfer(&spec, TransferKind::DtoH, 64);
        let t = p.transfer_stats();
        assert_eq!(t[&TransferKind::HtoD].calls, 2);
        assert_eq!(t[&TransferKind::HtoD].bytes, 2 * 1024 * 1024);
        assert!(t[&TransferKind::HtoD].device_us > t[&TransferKind::DtoH].device_us);
    }

    #[test]
    fn table2_report_contains_rows_and_percentages() {
        let p = Profiler::new();
        let spec = DeviceSpec::gtx280();
        p.record_kernel(
            KernelKind::Ccd,
            750.0,
            0.0,
            1.0,
            sample_occupancy(KernelKind::Ccd),
        );
        p.record_kernel(
            KernelKind::EvalDist,
            140.0,
            0.0,
            1.0,
            sample_occupancy(KernelKind::EvalDist),
        );
        p.record_kernel(
            KernelKind::EvalTrip,
            1.0,
            0.0,
            1.0,
            sample_occupancy(KernelKind::EvalTrip),
        );
        p.record_transfer(&spec, TransferKind::DtoH, 1024);
        let report = p.table2_report();
        assert!(report.contains("[CCD]"));
        assert!(report.contains("[EvalDIST]"));
        assert!(report.contains("memcpyDtoH"));
        assert!(report.contains("% GPU"));
        // CCD should be the first (largest) kernel row.
        let ccd_pos = report.find("[CCD]").unwrap();
        let dist_pos = report.find("[EvalDIST]").unwrap();
        assert!(ccd_pos < dist_pos);
    }

    #[test]
    fn table3_report_matches_paper_occupancies() {
        let p = Profiler::new();
        for kind in [
            KernelKind::Ccd,
            KernelKind::EvalDist,
            KernelKind::EvalVdw,
            KernelKind::EvalTrip,
            KernelKind::FitAssgPopulation,
            KernelKind::FitAssgComplex,
        ] {
            p.record_kernel(kind, 1.0, 1.0, 1.0, sample_occupancy(kind));
        }
        let report = p.table3_report();
        assert!(report.contains("[CCD]"));
        assert!(
            report.contains("50%"),
            "register-bound kernels at 50%:\n{report}"
        );
        assert!(report.contains("75%"), "EvalTRIP at 75%:\n{report}");
        assert!(
            report.contains("100%"),
            "fitness kernels at 100%:\n{report}"
        );
    }

    #[test]
    fn table2_report_leads_with_executor_capabilities() {
        use crate::executor::ExecutorConfig;
        let p = Profiler::new();
        assert!(p.executor().is_none());
        let executor = ExecutorConfig::scalar().build().unwrap();
        p.set_executor(executor.capabilities());
        p.record_kernel(
            KernelKind::Ccd,
            1.0,
            1.0,
            1.0,
            sample_occupancy(KernelKind::Ccd),
        );
        let report = p.table2_report();
        assert!(
            report.starts_with("Executor: scalar (lane_width=1, threads=1, ccd_block_width="),
            "report header names the backend:\n{report}"
        );
        // Merge propagates the capabilities into an unattributed profiler.
        let q = Profiler::new();
        q.merge(&p);
        assert_eq!(q.executor(), Some(executor.capabilities()));
    }

    #[test]
    fn merge_combines_counts() {
        let a = Profiler::new();
        let b = Profiler::new();
        let occ = sample_occupancy(KernelKind::Metropolis);
        a.record_kernel(KernelKind::Metropolis, 10.0, 5.0, 100.0, occ);
        b.record_kernel(KernelKind::Metropolis, 20.0, 8.0, 200.0, occ);
        b.record_transfer(&DeviceSpec::gtx280(), TransferKind::DtoD, 256);
        a.merge(&b);
        let stats = a.kernel_stats();
        assert_eq!(stats[&KernelKind::Metropolis].calls, 2);
        assert_eq!(stats[&KernelKind::Metropolis].device_us, 30.0);
        assert_eq!(a.transfer_stats()[&TransferKind::DtoD].calls, 1);
    }
}
