//! Population-wide SoA lane buffers: the staged pipeline's "device global
//! memory".
//!
//! The paper keeps the whole population's conformations in flat
//! structure-of-arrays device buffers, and every kernel thread indexes into
//! them with its own thread id.  [`SharedLanes`] reproduces that access
//! pattern on the host: it wraps one exclusive borrow of a flat buffer and
//! hands out per-lane mutable views to the kernel bodies running under
//! [`Executor::launch`](crate::Executor::launch), which guarantees that
//! every logical thread index is visited by exactly one invocation.
//!
//! The per-lane accessors are `unsafe` because the wrapper cannot itself
//! prove disjointness — the launch contract does.  Every call site states
//! the discipline: *a kernel invocation for thread `i` may only touch lane
//! `i` (or, for block-level kernels, the lanes of block `i`)*.

use std::marker::PhantomData;

/// A `Sync` view over a flat member-major SoA buffer that allows concurrent
/// disjoint per-lane mutation from a population-kernel launch.
///
/// Constructed from an exclusive borrow, so for the wrapper's lifetime no
/// other access to the buffer exists; the launch discipline (one kernel
/// invocation per thread index, each touching only its own lane) makes the
/// concurrent interior mutation sound.
#[derive(Debug)]
pub struct SharedLanes<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by lane under the launch contract; `T: Send`
// makes handing a lane to another worker thread sound.
unsafe impl<T: Send> Sync for SharedLanes<'_, T> {}
unsafe impl<T: Send> Send for SharedLanes<'_, T> {}

impl<'a, T> SharedLanes<'a, T> {
    /// Wrap an exclusively borrowed flat buffer.
    pub fn new(buffer: &'a mut [T]) -> Self {
        SharedLanes {
            ptr: buffer.as_mut_ptr(),
            len: buffer.len(),
            _marker: PhantomData,
        }
    }

    /// Total element count of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of one element.
    ///
    /// # Safety
    ///
    /// For the duration of the returned borrow no other lane view of index
    /// `i` may exist.  Under [`Executor::launch`](crate::Executor::launch)
    /// this holds when each kernel invocation only accesses elements of its
    /// own thread index.  `i` must be in bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn item_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "lane index {i} out of bounds ({})", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Mutable view of the contiguous lane `[offset, offset + len)`.
    ///
    /// # Safety
    ///
    /// Lanes handed out concurrently must be disjoint, which under
    /// [`Executor::launch`](crate::Executor::launch) holds when each kernel
    /// invocation only accesses its own member's lane (member-major layout:
    /// `offset = member * stride`, `len = stride`).  The range must be in
    /// bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn lane_mut(&self, offset: usize, len: usize) -> &mut [T] {
        debug_assert!(
            offset + len <= self.len,
            "lane [{offset}, {}) out of bounds ({})",
            offset + len,
            self.len
        );
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecutorConfig;
    use crate::kernel::KernelKind;

    #[test]
    fn disjoint_lane_writes_cover_the_buffer() {
        let stride = 4;
        let members = 64;
        let mut flat = vec![0.0f64; members * stride];
        let lanes = SharedLanes::new(&mut flat);
        let launch =
            ExecutorConfig::parallel()
                .build()
                .unwrap()
                .launch(KernelKind::Select, members, |i| {
                    // SAFETY: thread i touches only lane i.
                    let lane = unsafe { lanes.lane_mut(i * stride, stride) };
                    for (k, v) in lane.iter_mut().enumerate() {
                        *v = (i * stride + k) as f64;
                    }
                });
        assert_eq!(launch.threads, members);
        for (k, v) in flat.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    fn item_mut_addresses_single_elements() {
        let mut flat = vec![0u64; 128];
        let lanes = SharedLanes::new(&mut flat);
        assert_eq!(lanes.len(), 128);
        assert!(!lanes.is_empty());
        let _ =
            ExecutorConfig::scalar()
                .build()
                .unwrap()
                .launch(KernelKind::Metropolis, 128, |i| {
                    // SAFETY: thread i touches only element i.
                    *unsafe { lanes.item_mut(i) } = i as u64 * 3;
                });
        for (i, v) in flat.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn scalar_and_parallel_launches_agree() {
        let mut a = vec![0u32; 1000];
        let mut b = vec![0u32; 1000];
        for (exec, buf) in [
            (ExecutorConfig::scalar().build().unwrap(), &mut a),
            (
                ExecutorConfig::parallel().threads(3).build().unwrap(),
                &mut b,
            ),
        ] {
            let lanes = SharedLanes::new(buf);
            let _ = exec.launch(KernelKind::Reproduction, 1000, |i| {
                *unsafe { lanes.item_mut(i) } = (i as u32).wrapping_mul(2654435761);
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let mut flat: Vec<u8> = Vec::new();
        let lanes = SharedLanes::new(&mut flat);
        assert!(lanes.is_empty());
        let launch =
            ExecutorConfig::parallel()
                .build()
                .unwrap()
                .launch(KernelKind::Select, 0, |_| {
                    panic!("kernel must not run for an empty population")
                });
        assert_eq!(launch.threads, 0);
    }
}
