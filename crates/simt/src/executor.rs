//! Population executors: who actually runs the per-conformation work.
//!
//! The sampling pipeline expresses its heavy stages (CCD closure, the three
//! scoring functions, fitness assignment, Metropolis) as *kernels over the
//! population*: the same routine applied independently to every
//! conformation, exactly the SIMT pattern the paper exploits.  Two executors
//! realise that pattern on the host:
//!
//! * [`Executor::Scalar`] — one conformation after another on the calling
//!   thread: the "CPU implementation" baseline of the paper.
//! * [`Executor::Parallel`] — a work-stealing data-parallel map over the
//!   population (rayon), playing the role of the GPU in the heterogeneous
//!   CPU–GPU platform.
//!
//! Both produce *identical results for identical seeds*, because all
//! per-conformation randomness comes from counter-derived streams rather
//! than from shared mutable RNG state (the paper makes the weaker statement
//! that its CPU and GPU versions are "functionally equivalent"; determinism
//! here is strictly stronger and is verified by property tests).

use crate::kernel::KernelKind;
use rayon::prelude::*;
use rayon::ThreadPool;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The record of one staged population-kernel launch through
/// [`Executor::launch`]: which kernel ran, over how many device threads
/// (population members), and the measured host wall-clock time of the
/// launch.  The sampler feeds these into the [`crate::Profiler`] /
/// [`crate::TimingModel`] accounting so the staged pipeline's per-kernel
/// rows stay honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct KernelLaunch {
    /// The kernel that was launched.
    pub kind: KernelKind,
    /// Number of logical device threads (one per population member).
    pub threads: usize,
    /// Measured host wall-clock duration of the launch.
    pub host: Duration,
}

impl KernelLaunch {
    /// Measured host time in microseconds.
    pub fn host_us(&self) -> f64 {
        self.host.as_secs_f64() * 1e6
    }
}

/// How the per-conformation kernels are executed on the host.
#[derive(Debug, Clone)]
pub enum Executor {
    /// Sequential execution on the calling thread (the CPU baseline).
    Scalar,
    /// Data-parallel execution across a rayon thread pool (the device role).
    Parallel {
        /// Number of worker threads (0 = rayon's default, one per core).
        threads: usize,
        /// The explicitly-sized thread pool, built lazily on the first
        /// launch and reused for every subsequent one (building a pool per
        /// kernel launch was measurable overhead at sampler iteration
        /// rates).  Shared across clones of this executor; unused (and
        /// never built) when `threads == 0`, where rayon's global pool
        /// serves instead.
        pool: Arc<OnceLock<ThreadPool>>,
    },
}

impl Executor {
    /// The sequential baseline executor.
    pub fn scalar() -> Executor {
        Executor::Scalar
    }

    /// A parallel executor using rayon's global pool (one thread per core).
    pub fn parallel() -> Executor {
        Executor::Parallel {
            threads: 0,
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// A parallel executor with an explicit thread count.
    pub fn parallel_with_threads(threads: usize) -> Executor {
        Executor::Parallel {
            threads,
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// The lazily-built pool of an explicitly-sized parallel executor.
    fn sized_pool(pool: &OnceLock<ThreadPool>, threads: usize) -> &ThreadPool {
        pool.get_or_init(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build rayon pool")
        })
    }

    /// An executor with this executor's thread budget divided across `ways`
    /// concurrent consumers — the scheduling primitive behind the batch job
    /// engine: when `ways` jobs run at once, each gets `1/ways` of the
    /// worker threads (at least one), so the jobs together saturate the
    /// machine instead of oversubscribing it `ways`-fold.
    ///
    /// Scalar stays scalar; a parallel executor's budget is its explicit
    /// thread count, or one thread per core when unsized.  Because executor
    /// choice never changes sampled trajectories (per-stream RNG
    /// discipline), running a job on a split executor is bit-identical to
    /// running it on the original.
    pub fn split(&self, ways: usize) -> Executor {
        match self {
            Executor::Scalar => Executor::Scalar,
            Executor::Parallel { .. } => {
                let share = (self.thread_count() / ways.max(1)).max(1);
                Executor::parallel_with_threads(share)
            }
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Executor::Scalar => "scalar",
            Executor::Parallel { .. } => "parallel",
        }
    }

    /// Whether this executor runs work concurrently.
    pub fn is_parallel(&self) -> bool {
        matches!(self, Executor::Parallel { .. })
    }

    /// Apply `f` to every element, in index order semantics (the function
    /// receives the element index so it can derive per-element random
    /// streams).  Returns the wall-clock time the map took.
    pub fn for_each_indexed<T, F>(&self, items: &mut [T], f: F) -> Duration
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        let start = Instant::now();
        match self {
            Executor::Scalar => {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            }
            Executor::Parallel { threads, pool } => {
                if *threads == 0 {
                    items
                        .par_iter_mut()
                        .enumerate()
                        .for_each(|(i, item)| f(i, item));
                } else {
                    Self::sized_pool(pool, *threads).install(|| {
                        items
                            .par_iter_mut()
                            .enumerate()
                            .for_each(|(i, item)| f(i, item));
                    });
                }
            }
        }
        start.elapsed()
    }

    /// Map every element to a new value (used for read-only kernels such as
    /// fitness evaluation).  Returns the results and the wall-clock time.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync + Send,
    {
        let start = Instant::now();
        let out = match self {
            Executor::Scalar => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
            Executor::Parallel { threads, pool } => {
                if *threads == 0 {
                    items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
                } else {
                    Self::sized_pool(pool, *threads)
                        .install(|| items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect())
                }
            }
        };
        (out, start.elapsed())
    }

    /// Launch one population-wide kernel: apply `kernel` to every logical
    /// thread index in `0..threads`, exactly once each, under this
    /// executor's execution strategy.  This is the staged-pipeline entry
    /// point: the evolution loop issues one `launch` per stage per
    /// iteration (`mutate`, `close`, `rebuild`, `score`, `metropolis`,
    /// `select`), with all member state living in population-wide SoA
    /// buffers (see [`crate::SharedLanes`]) rather than per-member structs.
    ///
    /// The kernel body receives only the thread index — the SIMT contract —
    /// so all randomness must come from counter-derived streams and all
    /// member state from disjoint lanes, which is what makes scalar and
    /// parallel launches bit-identical.
    ///
    /// Under the `fault-injection` feature, the fault session installed on
    /// the *launching* thread (see `crate::fault::install`) is consulted
    /// before every lane: this is the single choke point where a
    /// `crate::fault::FaultPlan` keyed by `(kind, launch_index, lane)`
    /// injects panics, NaN poisoning, or stalls.  With the feature off (the
    /// default) no fault code is compiled and the launch path is identical
    /// to previous releases.
    ///
    /// Returns the [`KernelLaunch`] record with the measured host wall time.
    pub fn launch<F>(&self, kind: KernelKind, threads: usize, kernel: F) -> KernelLaunch
    where
        F: Fn(usize) + Sync + Send,
    {
        #[cfg(feature = "fault-injection")]
        let session = crate::fault::active().map(|s| {
            let launch_index = s.next_launch_index(kind);
            (s, launch_index)
        });
        // One zero-sized lane per logical thread drives the existing
        // data-parallel dispatch without ever touching the heap (a `Vec` of
        // a ZST never allocates), so both entry points share one
        // scalar/parallel/sized-pool implementation.
        let mut lanes = vec![(); threads];
        let host = self.for_each_indexed(&mut lanes, |i, _| {
            #[cfg(feature = "fault-injection")]
            if let Some((session, launch_index)) = &session {
                session.fire(kind, *launch_index, i);
            }
            kernel(i);
            #[cfg(feature = "fault-injection")]
            crate::fault::clear_nan();
        });
        KernelLaunch {
            kind,
            threads,
            host,
        }
    }

    /// Number of worker threads this executor will use.
    pub fn thread_count(&self) -> usize {
        match self {
            Executor::Scalar => 1,
            Executor::Parallel { threads, .. } => {
                if *threads == 0 {
                    rayon::current_num_threads()
                } else {
                    *threads
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scalar_and_parallel_produce_identical_results() {
        let mut a: Vec<u64> = (0..10_000).collect();
        let mut b = a.clone();
        let work = |i: usize, x: &mut u64| {
            // Derive the update purely from the index and value: this is the
            // discipline the sampler follows with its per-stream RNGs.
            *x = x.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        };
        Executor::scalar().for_each_indexed(&mut a, work);
        Executor::parallel().for_each_indexed(&mut b, work);
        assert_eq!(a, b);
    }

    #[test]
    fn map_indexed_matches_across_executors() {
        let items: Vec<u32> = (0..5_000).collect();
        let f = |i: usize, x: &u32| (*x as u64) * 3 + i as u64;
        let (s, _) = Executor::scalar().map_indexed(&items, f);
        let (p, _) = Executor::parallel().map_indexed(&items, f);
        let (p2, _) = Executor::parallel_with_threads(2).map_indexed(&items, f);
        assert_eq!(s, p);
        assert_eq!(s, p2);
    }

    #[test]
    fn every_element_is_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut items = vec![0u8; 4096];
        Executor::parallel().for_each_indexed(&mut items, |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x += 1;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4096);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn executor_metadata() {
        assert_eq!(Executor::scalar().name(), "scalar");
        assert_eq!(Executor::parallel().name(), "parallel");
        assert!(!Executor::scalar().is_parallel());
        assert!(Executor::parallel().is_parallel());
        assert_eq!(Executor::scalar().thread_count(), 1);
        assert_eq!(Executor::parallel_with_threads(3).thread_count(), 3);
        assert!(Executor::parallel().thread_count() >= 1);
    }

    #[test]
    fn empty_population_is_a_noop() {
        let mut empty: Vec<u32> = Vec::new();
        let d = Executor::parallel().for_each_indexed(&mut empty, |_, _| panic!("must not run"));
        assert!(d.as_secs() < 1);
        let (out, _) = Executor::scalar().map_indexed(&empty, |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_pool_is_lazy_built_once_and_shared_with_clones() {
        let exec = Executor::parallel_with_threads(2);
        let Executor::Parallel { pool, .. } = &exec else {
            unreachable!()
        };
        assert!(pool.get().is_none(), "pool must not be built before use");
        let mut items = vec![0u8; 256];
        exec.for_each_indexed(&mut items, |_, x| *x += 1);
        let first = pool.get().expect("first launch builds the pool") as *const ThreadPool;
        exec.for_each_indexed(&mut items, |_, x| *x += 1);
        let (_, _) = exec.map_indexed(&items, |_, x| *x);
        let second = pool.get().unwrap() as *const ThreadPool;
        assert_eq!(first, second, "subsequent launches must reuse the pool");
        // Clones share the same lazily-built pool.
        let clone = exec.clone();
        let Executor::Parallel { pool: cloned, .. } = &clone else {
            unreachable!()
        };
        assert_eq!(cloned.get().unwrap() as *const ThreadPool, first);
    }

    #[test]
    fn split_divides_the_thread_budget() {
        // Scalar splits to scalar.
        assert!(!Executor::scalar().split(4).is_parallel());
        // An explicitly-sized pool divides evenly, never below one thread.
        let exec = Executor::parallel_with_threads(8);
        assert_eq!(exec.split(2).thread_count(), 4);
        assert_eq!(exec.split(3).thread_count(), 2);
        assert_eq!(exec.split(100).thread_count(), 1);
        assert_eq!(exec.split(0).thread_count(), 8);
        // Splitting preserves results.
        let mut a = vec![0u64; 999];
        let mut b = vec![0u64; 999];
        let work = |i: usize, x: &mut u64| *x = (i as u64).wrapping_mul(31);
        exec.for_each_indexed(&mut a, work);
        exec.split(3).for_each_indexed(&mut b, work);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_thread_count_still_visits_everything() {
        let mut items = vec![1u64; 1000];
        Executor::parallel_with_threads(2).for_each_indexed(&mut items, |i, x| *x = i as u64);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }
}
