//! Population executors: who actually runs the per-conformation work.
//!
//! The sampling pipeline expresses its heavy stages (CCD closure, the
//! scoring functions, fitness assignment, Metropolis) as *kernels over the
//! population*: the same routine applied independently to every
//! conformation, exactly the SIMT pattern the paper exploits.  The
//! [`Executor`] is the pluggable seam between that kernel structure and the
//! hardware: every backend sits behind the same
//! [`launch(KernelKind, threads, f)`](Executor::launch) entry point, so the
//! sampler's stage loop never changes when the backend does.
//!
//! Three backends realise the pattern on the host today (a GPU backend is
//! the designed-for fourth):
//!
//! * [`Backend::Scalar`] — one conformation after another on the calling
//!   thread: the "CPU implementation" baseline of the paper.
//! * [`Backend::Parallel`] — a work-stealing data-parallel map over the
//!   population (rayon), playing the role of the GPU in the heterogeneous
//!   CPU–GPU platform.
//! * [`Backend::Simd`] — the parallel dispatch plus explicit wide-`f64`
//!   lanes inside the dominant kernels (lockstep CCD rotation batches, SoA
//!   contact gathers); requires the `simd` cargo feature, which vendors a
//!   portable 4-lane `f64` shim.
//!
//! Executors are built through the validated [`ExecutorConfig`] builder:
//!
//! ```
//! use lms_simt::{Backend, ExecutorConfig};
//!
//! # fn main() -> Result<(), lms_simt::ExecutorConfigError> {
//! let exec = ExecutorConfig::new()
//!     .backend(Backend::Parallel)
//!     .threads(2)
//!     .ccd_block_width(16)
//!     .build()?;
//! assert_eq!(exec.capabilities().threads, 2);
//! assert_eq!(exec.ccd_block_width(), 16);
//! # Ok(())
//! # }
//! ```
//!
//! All backends produce *identical results for identical seeds*, because
//! all per-conformation randomness comes from counter-derived streams
//! rather than from shared mutable RNG state, and the wide lanes apply the
//! same IEEE operations in the same per-lane order as the scalar loops (the
//! paper makes the weaker statement that its CPU and GPU versions are
//! "functionally equivalent"; determinism here is strictly stronger and is
//! verified by property tests).

use crate::kernel::KernelKind;
use rayon::prelude::*;
use rayon::ThreadPool;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Default lockstep CCD block width (population members per batched CCD
/// call) reported by every backend unless overridden through
/// [`ExecutorConfig::ccd_block_width`].
pub const DEFAULT_CCD_BLOCK_WIDTH: usize = 8;

/// Upper bound on the configurable CCD block width.  The sampler stages
/// lane descriptors for one block on the stack, so the width is capped to
/// keep that staging area small and fixed-size.
pub const MAX_CCD_BLOCK_WIDTH: usize = 64;

/// Width of the explicit wide-`f64` lanes the SIMD backend vectorizes with
/// (the vendored portable shim's `f64x4`).
const SIMD_LANE_WIDTH: usize = 4;

/// The record of one staged population-kernel launch through
/// [`Executor::launch`]: which kernel ran, over how many device threads
/// (population members), and the measured host wall-clock time of the
/// launch.  The sampler feeds these into the [`crate::Profiler`] /
/// [`crate::TimingModel`] accounting so the staged pipeline's per-kernel
/// rows stay honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct KernelLaunch {
    /// The kernel that was launched.
    pub kind: KernelKind,
    /// Number of logical device threads (one per population member).
    pub threads: usize,
    /// Measured host wall-clock duration of the launch.
    pub host: Duration,
}

impl KernelLaunch {
    /// Measured host time in microseconds.
    pub fn host_us(&self) -> f64 {
        self.host.as_secs_f64() * 1e6
    }
}

/// Which execution strategy an [`Executor`] uses for population kernels.
///
/// `#[non_exhaustive]`: future backends (a GPU device, for one) will add
/// variants without breaking downstream matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Backend {
    /// Sequential execution on the calling thread (the CPU baseline).
    Scalar,
    /// Data-parallel execution across a rayon thread pool (the device role).
    Parallel,
    /// Parallel dispatch plus explicit wide-`f64` lanes inside the dominant
    /// kernels.  Selecting it requires the `simd` cargo feature;
    /// [`ExecutorConfig::build`] reports
    /// [`ExecutorConfigError::SimdUnavailable`] otherwise.
    Simd,
}

impl Backend {
    /// Short display name ("scalar" / "parallel" / "simd").
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Parallel => "parallel",
            Backend::Simd => "simd",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an [`Executor`] reports about itself: the backend, its wide-lane
/// width, its worker-thread budget and the lockstep CCD block width it
/// wants the sampler to batch with.  Reported through
/// [`Executor::capabilities`] and recorded on perf artifacts
/// (`Profiler::table2_report`, `BENCH_*.json`) and job results so every
/// measurement is attributable to a backend.
///
/// `#[non_exhaustive]`: future backends will report more (device memory,
/// occupancy limits) without breaking construction sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Capabilities {
    /// The execution backend.
    pub backend: Backend,
    /// Short backend name (same as `backend.name()`), kept as a field so
    /// reports can embed it without matching on the enum.
    pub name: &'static str,
    /// Wide-`f64` lane width the backend's kernels vectorize with (1 for
    /// the scalar and parallel backends).
    pub lane_width: usize,
    /// Number of worker threads the executor will use.
    pub threads: usize,
    /// Lockstep CCD block width the sampler should batch closure with.
    pub ccd_block_width: usize,
    /// The instruction set the measurement is attributable to.  For the
    /// SIMD backend this is the wide shim's compiled/dispatched backend
    /// (`"avx2"`, `"sse2"`, `"sse2+avx2"` when AVX2 kernel clones are
    /// runtime-dispatched on an SSE2 build, `"neon"`, or `"portable"`);
    /// for the scalar and parallel backends it is the detected host ISA.
    pub isa: &'static str,
}

impl fmt::Display for Capabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (lane_width={}, threads={}, ccd_block_width={}, isa={})",
            self.name, self.lane_width, self.threads, self.ccd_block_width, self.isa
        )
    }
}

/// The host CPU's best-detected ISA for wide-`f64` work, independent of
/// what any crate was compiled for.  Used to attribute scalar/parallel
/// measurements to the machine they ran on.
fn detected_host_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "portable"
    }
}

/// The ISA-qualified display name of the SIMD backend, so every
/// `Capabilities::name` (and thus every `BENCH_*.json` / profiler report)
/// states which wide backend actually produced the measurement.
#[cfg(feature = "simd")]
fn simd_qualified_name() -> &'static str {
    match wide::dispatch_summary() {
        "avx2" => "simd[avx2]",
        "sse2+avx2" => "simd[sse2+avx2]",
        "sse2" => "simd[sse2]",
        "neon" => "simd[neon]",
        _ => "simd[portable]",
    }
}

/// Why an [`ExecutorConfig`] failed to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutorConfigError {
    /// `ccd_block_width(0)` — the lockstep CCD batcher needs at least one
    /// lane per block.
    ZeroCcdBlockWidth,
    /// `ccd_block_width` above [`MAX_CCD_BLOCK_WIDTH`].
    CcdBlockWidthTooLarge {
        /// The rejected width.
        got: usize,
        /// The maximum ([`MAX_CCD_BLOCK_WIDTH`]).
        max: usize,
    },
    /// [`Backend::Simd`] was requested but the `simd` cargo feature is not
    /// compiled in.
    SimdUnavailable,
}

impl fmt::Display for ExecutorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorConfigError::ZeroCcdBlockWidth => {
                write!(f, "ccd_block_width must be at least 1")
            }
            ExecutorConfigError::CcdBlockWidthTooLarge { got, max } => {
                write!(f, "ccd_block_width {got} exceeds the maximum of {max}")
            }
            ExecutorConfigError::SimdUnavailable => write!(
                f,
                "the simd backend requires building with the `simd` cargo feature"
            ),
        }
    }
}

impl std::error::Error for ExecutorConfigError {}

/// Validated builder for [`Executor`]s — the one construction surface for
/// every backend.
///
/// Defaults: [`Backend::Parallel`] with rayon's default thread budget (one
/// worker per core) and [`DEFAULT_CCD_BLOCK_WIDTH`].
///
/// ```
/// use lms_simt::{Backend, ExecutorConfig};
///
/// let scalar = ExecutorConfig::scalar().build().unwrap();
/// assert_eq!(scalar.capabilities().backend, Backend::Scalar);
///
/// let sized = ExecutorConfig::parallel().threads(4).build().unwrap();
/// assert_eq!(sized.thread_count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct ExecutorConfig {
    backend: Backend,
    threads: usize,
    ccd_block_width: usize,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            backend: Backend::Parallel,
            threads: 0,
            ccd_block_width: DEFAULT_CCD_BLOCK_WIDTH,
        }
    }
}

impl ExecutorConfig {
    /// The default configuration (parallel backend, default thread budget,
    /// default CCD block width).
    pub fn new() -> ExecutorConfig {
        ExecutorConfig::default()
    }

    /// Shorthand for `new().backend(Backend::Scalar)`.
    pub fn scalar() -> ExecutorConfig {
        ExecutorConfig::new().backend(Backend::Scalar)
    }

    /// Shorthand for `new().backend(Backend::Parallel)`.
    pub fn parallel() -> ExecutorConfig {
        ExecutorConfig::new().backend(Backend::Parallel)
    }

    /// Shorthand for `new().backend(Backend::Simd)`.
    pub fn simd() -> ExecutorConfig {
        ExecutorConfig::new().backend(Backend::Simd)
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> ExecutorConfig {
        self.backend = backend;
        self
    }

    /// Set the worker-thread budget (0 = rayon's default, one per core).
    /// Ignored by the scalar backend, which always runs on the calling
    /// thread.
    pub fn threads(mut self, threads: usize) -> ExecutorConfig {
        self.threads = threads;
        self
    }

    /// Set the lockstep CCD block width the executor reports to the
    /// sampler (validated against `1..=`[`MAX_CCD_BLOCK_WIDTH`] at
    /// [`build`](Self::build) time).
    pub fn ccd_block_width(mut self, width: usize) -> ExecutorConfig {
        self.ccd_block_width = width;
        self
    }

    /// Validate and build the executor.
    pub fn build(self) -> Result<Executor, ExecutorConfigError> {
        if self.ccd_block_width == 0 {
            return Err(ExecutorConfigError::ZeroCcdBlockWidth);
        }
        if self.ccd_block_width > MAX_CCD_BLOCK_WIDTH {
            return Err(ExecutorConfigError::CcdBlockWidthTooLarge {
                got: self.ccd_block_width,
                max: MAX_CCD_BLOCK_WIDTH,
            });
        }
        let backend = match self.backend {
            Backend::Scalar => BackendImpl::Scalar,
            Backend::Parallel => BackendImpl::Parallel {
                threads: self.threads,
                pool: Arc::new(OnceLock::new()),
            },
            #[cfg(feature = "simd")]
            Backend::Simd => BackendImpl::Simd {
                threads: self.threads,
                pool: Arc::new(OnceLock::new()),
            },
            #[cfg(not(feature = "simd"))]
            Backend::Simd => return Err(ExecutorConfigError::SimdUnavailable),
        };
        Ok(Executor {
            backend,
            ccd_block_width: self.ccd_block_width,
        })
    }
}

impl From<Executor> for ExecutorConfig {
    /// Recover the configuration an executor was built from, so an
    /// already-built `Executor` can be handed anywhere an
    /// `impl Into<ExecutorConfig>` is expected (the engine builder).
    fn from(exec: Executor) -> ExecutorConfig {
        ExecutorConfig {
            backend: exec.backend.kind(),
            threads: exec.backend.raw_threads(),
            ccd_block_width: exec.ccd_block_width,
        }
    }
}

impl From<&Executor> for ExecutorConfig {
    fn from(exec: &Executor) -> ExecutorConfig {
        ExecutorConfig::from(exec.clone())
    }
}

/// The private backend realisation behind [`Executor`].  Public code sees
/// only [`Backend`] and [`Capabilities`]; keeping the rayon pool handles
/// out of the public type is what lets future backends (GPU queues, device
/// contexts) slot in without an API break.
#[derive(Debug, Clone)]
enum BackendImpl {
    Scalar,
    Parallel {
        /// Number of worker threads (0 = rayon's default, one per core).
        threads: usize,
        /// The explicitly-sized thread pool, built lazily on the first
        /// launch and reused for every subsequent one (building a pool per
        /// kernel launch was measurable overhead at sampler iteration
        /// rates).  Shared across clones of this executor; unused (and
        /// never built) when `threads == 0`, where rayon's global pool
        /// serves instead.
        pool: Arc<OnceLock<ThreadPool>>,
    },
    #[cfg(feature = "simd")]
    Simd {
        threads: usize,
        pool: Arc<OnceLock<ThreadPool>>,
    },
}

impl BackendImpl {
    fn kind(&self) -> Backend {
        match self {
            BackendImpl::Scalar => Backend::Scalar,
            BackendImpl::Parallel { .. } => Backend::Parallel,
            #[cfg(feature = "simd")]
            BackendImpl::Simd { .. } => Backend::Simd,
        }
    }

    /// The configured thread count as written (0 = rayon default), as
    /// opposed to the resolved budget `Executor::thread_count` reports.
    fn raw_threads(&self) -> usize {
        match self {
            BackendImpl::Scalar => 0,
            BackendImpl::Parallel { threads, .. } => *threads,
            #[cfg(feature = "simd")]
            BackendImpl::Simd { threads, .. } => *threads,
        }
    }

    /// The pooled-dispatch parameters, for every backend that maps work
    /// across a rayon pool.
    fn pool_parts(&self) -> Option<(usize, &Arc<OnceLock<ThreadPool>>)> {
        match self {
            BackendImpl::Scalar => None,
            BackendImpl::Parallel { threads, pool } => Some((*threads, pool)),
            #[cfg(feature = "simd")]
            BackendImpl::Simd { threads, pool } => Some((*threads, pool)),
        }
    }
}

/// How the per-conformation kernels are executed on the host.
///
/// Construct through [`ExecutorConfig`]; inspect through
/// [`capabilities`](Executor::capabilities).  The concrete backend state
/// (thread-pool handles) is private so new backends never change this
/// type's public surface.
#[derive(Debug, Clone)]
pub struct Executor {
    backend: BackendImpl,
    ccd_block_width: usize,
}

impl Executor {
    /// The sequential baseline executor.
    #[deprecated(
        since = "0.1.0",
        note = "use `ExecutorConfig::scalar().build()` (validated builder) instead"
    )]
    pub fn scalar() -> Executor {
        ExecutorConfig::scalar()
            .build()
            .expect("default scalar config is valid")
    }

    /// A parallel executor using rayon's global pool (one thread per core).
    #[deprecated(
        since = "0.1.0",
        note = "use `ExecutorConfig::parallel().build()` (validated builder) instead"
    )]
    pub fn parallel() -> Executor {
        ExecutorConfig::parallel()
            .build()
            .expect("default parallel config is valid")
    }

    /// A parallel executor with an explicit thread count.
    #[deprecated(
        since = "0.1.0",
        note = "use `ExecutorConfig::parallel().threads(n).build()` (validated builder) instead"
    )]
    pub fn parallel_with_threads(threads: usize) -> Executor {
        ExecutorConfig::parallel()
            .threads(threads)
            .build()
            .expect("sized parallel config is valid")
    }

    /// The lazily-built pool of an explicitly-sized pooled executor.
    fn sized_pool(pool: &OnceLock<ThreadPool>, threads: usize) -> &ThreadPool {
        pool.get_or_init(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build rayon pool")
        })
    }

    /// An executor with this executor's thread budget divided across `ways`
    /// concurrent consumers — the scheduling primitive behind the batch job
    /// engine: when `ways` jobs run at once, each gets `1/ways` of the
    /// worker threads (at least one), so the jobs together saturate the
    /// machine instead of oversubscribing it `ways`-fold.
    ///
    /// Scalar stays scalar; a pooled executor's budget is its explicit
    /// thread count, or one thread per core when unsized.  The split keeps
    /// the backend and the CCD block width; each split executor gets its
    /// own (lazily-built) pool.  Because executor choice never changes
    /// sampled trajectories (per-stream RNG discipline), running a job on a
    /// split executor is bit-identical to running it on the original.
    pub fn split(&self, ways: usize) -> Executor {
        let config = ExecutorConfig::from(self);
        match self.backend {
            BackendImpl::Scalar => self.clone(),
            _ => {
                let share = (self.thread_count() / ways.max(1)).max(1);
                config
                    .threads(share)
                    .build()
                    .expect("splitting a valid executor keeps it valid")
            }
        }
    }

    /// What this executor reports about itself: backend, wide-lane width,
    /// thread budget and CCD block width.
    pub fn capabilities(&self) -> Capabilities {
        let backend = self.backend.kind();
        let lane_width = match backend {
            Backend::Simd => SIMD_LANE_WIDTH,
            _ => 1,
        };
        let (name, isa) = match backend {
            #[cfg(feature = "simd")]
            Backend::Simd => (simd_qualified_name(), wide::dispatch_summary()),
            _ => (backend.name(), detected_host_isa()),
        };
        Capabilities {
            backend,
            name,
            lane_width,
            threads: self.thread_count(),
            ccd_block_width: self.ccd_block_width,
            isa,
        }
    }

    /// The lockstep CCD block width this backend wants the sampler to
    /// batch closure with.
    pub fn ccd_block_width(&self) -> usize {
        self.ccd_block_width
    }

    /// Wide-`f64` lane width of this backend's kernels (1 unless SIMD).
    pub fn lane_width(&self) -> usize {
        self.capabilities().lane_width
    }

    /// Short display name of the backend.
    pub fn name(&self) -> &'static str {
        self.backend.kind().name()
    }

    /// Whether this executor runs work concurrently.
    pub fn is_parallel(&self) -> bool {
        self.backend.pool_parts().is_some()
    }

    /// Whether `self` and `other` dispatch onto the *same* lazily-built
    /// thread pool (i.e. one is a clone of the other).  Diagnostic for
    /// tests and schedulers that care about pool sharing; always `false`
    /// when either side is scalar or uses rayon's global pool.
    pub fn shares_pool_with(&self, other: &Executor) -> bool {
        match (self.backend.pool_parts(), other.backend.pool_parts()) {
            (Some((ta, pa)), Some((tb, pb))) if ta != 0 && tb != 0 => Arc::ptr_eq(pa, pb),
            _ => false,
        }
    }

    /// Apply `f` to every element, in index order semantics (the function
    /// receives the element index so it can derive per-element random
    /// streams).  Returns the wall-clock time the map took.
    pub fn for_each_indexed<T, F>(&self, items: &mut [T], f: F) -> Duration
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        let start = Instant::now();
        match self.backend.pool_parts() {
            None => {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            }
            Some((threads, pool)) => {
                if threads == 0 {
                    items
                        .par_iter_mut()
                        .enumerate()
                        .for_each(|(i, item)| f(i, item));
                } else {
                    Self::sized_pool(pool, threads).install(|| {
                        items
                            .par_iter_mut()
                            .enumerate()
                            .for_each(|(i, item)| f(i, item));
                    });
                }
            }
        }
        start.elapsed()
    }

    /// Map every element to a new value (used for read-only kernels such as
    /// fitness evaluation).  Returns the results and the wall-clock time.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync + Send,
    {
        let start = Instant::now();
        let out = match self.backend.pool_parts() {
            None => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
            Some((threads, pool)) => {
                if threads == 0 {
                    items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
                } else {
                    Self::sized_pool(pool, threads)
                        .install(|| items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect())
                }
            }
        };
        (out, start.elapsed())
    }

    /// Launch one population-wide kernel: apply `kernel` to every logical
    /// thread index in `0..threads`, exactly once each, under this
    /// executor's execution strategy.  This is the staged-pipeline entry
    /// point: the evolution loop issues one `launch` per stage per
    /// iteration (`mutate`, `close`, `rebuild`, `score`, `metropolis`,
    /// `select`), with all member state living in population-wide SoA
    /// buffers (see [`crate::SharedLanes`]) rather than per-member structs.
    ///
    /// The kernel body receives only the thread index — the SIMT contract —
    /// so all randomness must come from counter-derived streams and all
    /// member state from disjoint lanes, which is what makes the backends
    /// bit-identical.
    ///
    /// Under the `fault-injection` feature, the fault session installed on
    /// the *launching* thread (see `crate::fault::install`) is consulted
    /// before every lane: this is the single choke point where a
    /// `crate::fault::FaultPlan` keyed by `(kind, launch_index, lane)`
    /// injects panics, NaN poisoning, or stalls.  Because the keying sees
    /// only logical lane indices, it is backend-independent: the same plan
    /// fires at the same sites on every backend.  With the feature off (the
    /// default) no fault code is compiled and the launch path is identical
    /// to previous releases.
    ///
    /// Returns the [`KernelLaunch`] record with the measured host wall time.
    pub fn launch<F>(&self, kind: KernelKind, threads: usize, kernel: F) -> KernelLaunch
    where
        F: Fn(usize) + Sync + Send,
    {
        #[cfg(feature = "fault-injection")]
        let session = crate::fault::active().map(|s| {
            let launch_index = s.next_launch_index(kind);
            (s, launch_index)
        });
        // One zero-sized lane per logical thread drives the existing
        // data-parallel dispatch without ever touching the heap (a `Vec` of
        // a ZST never allocates), so both entry points share one
        // scalar/parallel/sized-pool implementation.
        let mut lanes = vec![(); threads];
        let host = self.for_each_indexed(&mut lanes, |i, _| {
            #[cfg(feature = "fault-injection")]
            if let Some((session, launch_index)) = &session {
                session.fire(kind, *launch_index, i);
            }
            kernel(i);
            #[cfg(feature = "fault-injection")]
            crate::fault::clear_nan();
        });
        KernelLaunch {
            kind,
            threads,
            host,
        }
    }

    /// Number of worker threads this executor will use.
    pub fn thread_count(&self) -> usize {
        match self.backend.pool_parts() {
            None => 1,
            Some((threads, _)) => {
                if threads == 0 {
                    rayon::current_num_threads()
                } else {
                    threads
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scalar() -> Executor {
        ExecutorConfig::scalar().build().unwrap()
    }

    fn parallel() -> Executor {
        ExecutorConfig::parallel().build().unwrap()
    }

    fn parallel_with_threads(n: usize) -> Executor {
        ExecutorConfig::parallel().threads(n).build().unwrap()
    }

    #[test]
    fn scalar_and_parallel_produce_identical_results() {
        let mut a: Vec<u64> = (0..10_000).collect();
        let mut b = a.clone();
        let work = |i: usize, x: &mut u64| {
            // Derive the update purely from the index and value: this is the
            // discipline the sampler follows with its per-stream RNGs.
            *x = x.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        };
        scalar().for_each_indexed(&mut a, work);
        parallel().for_each_indexed(&mut b, work);
        assert_eq!(a, b);
    }

    #[test]
    fn map_indexed_matches_across_executors() {
        let items: Vec<u32> = (0..5_000).collect();
        let f = |i: usize, x: &u32| (*x as u64) * 3 + i as u64;
        let (s, _) = scalar().map_indexed(&items, f);
        let (p, _) = parallel().map_indexed(&items, f);
        let (p2, _) = parallel_with_threads(2).map_indexed(&items, f);
        assert_eq!(s, p);
        assert_eq!(s, p2);
    }

    #[test]
    fn every_element_is_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut items = vec![0u8; 4096];
        parallel().for_each_indexed(&mut items, |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x += 1;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4096);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn executor_metadata() {
        assert_eq!(scalar().name(), "scalar");
        assert_eq!(parallel().name(), "parallel");
        assert!(!scalar().is_parallel());
        assert!(parallel().is_parallel());
        assert_eq!(scalar().thread_count(), 1);
        assert_eq!(parallel_with_threads(3).thread_count(), 3);
        assert!(parallel().thread_count() >= 1);
    }

    #[test]
    fn capabilities_report_the_backend() {
        let caps = parallel_with_threads(3).capabilities();
        assert_eq!(caps.backend, Backend::Parallel);
        assert_eq!(caps.name, "parallel");
        assert_eq!(caps.lane_width, 1);
        assert_eq!(caps.threads, 3);
        assert_eq!(caps.ccd_block_width, DEFAULT_CCD_BLOCK_WIDTH);
        let shown = caps.to_string();
        assert!(shown.contains("parallel") && shown.contains("ccd_block_width=8"));

        let caps = scalar().capabilities();
        assert_eq!(caps.backend, Backend::Scalar);
        assert_eq!((caps.lane_width, caps.threads), (1, 1));
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_backend_reports_wide_lanes() {
        let exec = ExecutorConfig::simd().threads(2).build().unwrap();
        let caps = exec.capabilities();
        assert_eq!(caps.backend, Backend::Simd);
        assert!(
            caps.name.starts_with("simd["),
            "simd name is ISA-qualified: {}",
            caps.name
        );
        assert_eq!(caps.isa, wide::dispatch_summary());
        assert_eq!(caps.lane_width, SIMD_LANE_WIDTH);
        assert_eq!(exec.lane_width(), wide::f64x4::LANES);
        assert!(exec.is_parallel());
        // The SIMD backend dispatches like the parallel one.
        let mut items = vec![0u64; 257];
        exec.for_each_indexed(&mut items, |i, x| *x = i as u64);
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn simd_backend_is_rejected_without_the_feature() {
        assert_eq!(
            ExecutorConfig::simd().build().unwrap_err(),
            ExecutorConfigError::SimdUnavailable
        );
    }

    #[test]
    fn config_validates_ccd_block_width() {
        assert_eq!(
            ExecutorConfig::new()
                .ccd_block_width(0)
                .build()
                .unwrap_err(),
            ExecutorConfigError::ZeroCcdBlockWidth
        );
        assert_eq!(
            ExecutorConfig::new()
                .ccd_block_width(MAX_CCD_BLOCK_WIDTH + 1)
                .build()
                .unwrap_err(),
            ExecutorConfigError::CcdBlockWidthTooLarge {
                got: MAX_CCD_BLOCK_WIDTH + 1,
                max: MAX_CCD_BLOCK_WIDTH
            }
        );
        let exec = ExecutorConfig::new().ccd_block_width(16).build().unwrap();
        assert_eq!(exec.ccd_block_width(), 16);
        // Errors display something actionable.
        assert!(ExecutorConfigError::ZeroCcdBlockWidth
            .to_string()
            .contains("1"));
    }

    #[test]
    fn config_round_trips_through_an_executor() {
        let config = ExecutorConfig::parallel().threads(5).ccd_block_width(32);
        let exec = config.build().unwrap();
        assert_eq!(ExecutorConfig::from(&exec), config);
        assert_eq!(ExecutorConfig::from(exec), config);
    }

    #[test]
    fn empty_population_is_a_noop() {
        let mut empty: Vec<u32> = Vec::new();
        let d = parallel().for_each_indexed(&mut empty, |_, _| panic!("must not run"));
        assert!(d.as_secs() < 1);
        let (out, _) = scalar().map_indexed(&empty, |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_pool_is_lazy_built_once_and_shared_with_clones() {
        let exec = parallel_with_threads(2);
        let BackendImpl::Parallel { pool, .. } = &exec.backend else {
            unreachable!()
        };
        assert!(pool.get().is_none(), "pool must not be built before use");
        let mut items = vec![0u8; 256];
        exec.for_each_indexed(&mut items, |_, x| *x += 1);
        let first = pool.get().expect("first launch builds the pool") as *const ThreadPool;
        exec.for_each_indexed(&mut items, |_, x| *x += 1);
        let (_, _) = exec.map_indexed(&items, |_, x| *x);
        let second = pool.get().unwrap() as *const ThreadPool;
        assert_eq!(first, second, "subsequent launches must reuse the pool");
        // Clones share the same lazily-built pool; fresh builds do not.
        let clone = exec.clone();
        assert!(exec.shares_pool_with(&clone));
        assert!(!exec.shares_pool_with(&parallel_with_threads(2)));
        assert!(!exec.shares_pool_with(&scalar()));
        assert!(!parallel().shares_pool_with(&parallel()));
    }

    #[test]
    fn split_divides_the_thread_budget() {
        // Scalar splits to scalar.
        assert!(!scalar().split(4).is_parallel());
        // An explicitly-sized pool divides evenly, never below one thread.
        let exec = parallel_with_threads(8);
        assert_eq!(exec.split(2).thread_count(), 4);
        assert_eq!(exec.split(3).thread_count(), 2);
        assert_eq!(exec.split(100).thread_count(), 1);
        assert_eq!(exec.split(0).thread_count(), 8);
        // Splits get their own pool but keep backend and block width.
        let wide_cfg = ExecutorConfig::parallel().threads(8).ccd_block_width(32);
        let wide = wide_cfg.build().unwrap();
        let half = wide.split(2);
        assert_eq!(half.capabilities().backend, Backend::Parallel);
        assert_eq!(half.ccd_block_width(), 32);
        assert!(!wide.shares_pool_with(&half));
        // Splitting preserves results.
        let mut a = vec![0u64; 999];
        let mut b = vec![0u64; 999];
        let work = |i: usize, x: &mut u64| *x = (i as u64).wrapping_mul(31);
        exec.for_each_indexed(&mut a, work);
        exec.split(3).for_each_indexed(&mut b, work);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_thread_count_still_visits_everything() {
        let mut items = vec![1u64; 1000];
        parallel_with_threads(2).for_each_indexed(&mut items, |i, x| *x = i as u64);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    /// The deprecated constructors must keep working (thin wrappers over
    /// the builder) until removal; this module is their only sanctioned
    /// call site.
    #[allow(deprecated)]
    mod deprecated_constructors {
        use super::super::*;

        #[test]
        fn legacy_constructors_match_the_builder() {
            assert_eq!(Executor::scalar().capabilities().backend, Backend::Scalar);
            let p = Executor::parallel();
            assert_eq!(p.capabilities().backend, Backend::Parallel);
            assert_eq!(p.ccd_block_width(), DEFAULT_CCD_BLOCK_WIDTH);
            assert_eq!(Executor::parallel_with_threads(3).thread_count(), 3);
        }
    }
}
