//! Device memory spaces and host–device transfer accounting.
//!
//! The paper is explicit about where each piece of data lives on the GPU —
//! conformations in global memory, read-only copies and the pre-calculated
//! scoring tables in texture memory, run constants in constant memory — and
//! its Table II reports the time spent in each `memcpy` direction.  This
//! module models those placements and transfers so the profiler can emit the
//! same rows.

use crate::device::DeviceSpec;

/// The memory spaces of the CUDA-era device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySpace {
    /// Large, read-write, relatively slow device memory.
    Global,
    /// Cached read-only memory bound to arrays ("texture memory").
    Texture,
    /// Small cached read-only memory for run constants.
    Constant,
    /// Per-SM scratch memory shared by a block.
    Shared,
    /// Host (CPU) memory.
    Host,
}

/// Host/device copy directions, named as the CUDA profiler names them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransferKind {
    /// Host to device array (texture-bound).
    HtoA,
    /// Host to device global memory.
    HtoD,
    /// Device global memory to device array (texture-bound).
    DtoA,
    /// Device to host.
    DtoH,
    /// Device to device.
    DtoD,
}

impl TransferKind {
    /// All directions in the order the paper's Table II lists them.
    pub const ALL: [TransferKind; 5] = [
        TransferKind::HtoA,
        TransferKind::HtoD,
        TransferKind::DtoA,
        TransferKind::DtoH,
        TransferKind::DtoD,
    ];

    /// The CUDA profiler's method name for this direction.
    pub fn name(&self) -> &'static str {
        match self {
            TransferKind::HtoA => "memcpyHtoA",
            TransferKind::HtoD => "memcpyHtoD",
            TransferKind::DtoA => "memcpyDtoA",
            TransferKind::DtoH => "memcpyDtoH",
            TransferKind::DtoD => "memcpyDtoD",
        }
    }

    /// Whether the copy crosses the PCIe bus (host on one side).
    pub fn crosses_host_boundary(&self) -> bool {
        matches!(
            self,
            TransferKind::HtoA | TransferKind::HtoD | TransferKind::DtoH
        )
    }
}

/// Time model for one memory copy.
pub fn transfer_time_us(spec: &DeviceSpec, kind: TransferKind, bytes: usize) -> f64 {
    let bandwidth_gb_s = if kind.crosses_host_boundary() {
        spec.transfer_bandwidth_gb_s
    } else {
        spec.memory_bandwidth_gb_s
    };
    // GB/s == bytes/ns / 1e0; convert to µs: bytes / (GB/s * 1e3).
    let us = bytes as f64 / (bandwidth_gb_s * 1e3);
    spec.transfer_latency_us + us
}

/// A description of where the pipeline stages each data set, used for
/// documentation/reporting and for sizing the staged transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPlacement {
    /// Human-readable name of the data set.
    pub name: String,
    /// Where it lives during kernel execution.
    pub space: MemorySpace,
    /// Size in bytes.
    pub bytes: usize,
}

impl DataPlacement {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, space: MemorySpace, bytes: usize) -> Self {
        DataPlacement {
            name: name.into(),
            space,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_names_match_cuda_profiler() {
        assert_eq!(TransferKind::HtoD.name(), "memcpyHtoD");
        assert_eq!(TransferKind::DtoA.name(), "memcpyDtoA");
        assert_eq!(TransferKind::ALL.len(), 5);
    }

    #[test]
    fn host_crossing_transfers_are_slower() {
        let spec = DeviceSpec::gtx280();
        let bytes = 4 * 1024 * 1024;
        let across = transfer_time_us(&spec, TransferKind::HtoD, bytes);
        let on_device = transfer_time_us(&spec, TransferKind::DtoD, bytes);
        assert!(across > on_device);
    }

    #[test]
    fn transfer_time_scales_with_size_plus_latency() {
        let spec = DeviceSpec::gtx280();
        let small = transfer_time_us(&spec, TransferKind::DtoH, 1024);
        let large = transfer_time_us(&spec, TransferKind::DtoH, 1024 * 1024);
        assert!(large > small);
        // Latency floor dominates tiny copies.
        assert!(small >= spec.transfer_latency_us);
        assert!(small < spec.transfer_latency_us + 1.0);
    }

    #[test]
    fn placement_constructor() {
        let p = DataPlacement::new("triplet table", MemorySpace::Texture, 4096);
        assert_eq!(p.space, MemorySpace::Texture);
        assert_eq!(p.bytes, 4096);
        assert_eq!(p.name, "triplet table");
    }
}
