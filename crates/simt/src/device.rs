//! The simulated SIMT device.
//!
//! The paper runs on an NVIDIA GeForce GTX 280: 30 streaming multiprocessors
//! (SMs) × 8 scalar processors = 240 cores, 16 K registers and 16 KiB of
//! shared memory per SM, blocks of up to 512 threads.  We do not have CUDA
//! hardware in this environment, so the suite models the device explicitly:
//! [`DeviceSpec`] carries the resource limits that drive the occupancy
//! calculation (paper Table III) and the analytic timing model (paper
//! Table II and Figure 4), while the actual numerical work is executed by
//! the host-side executors in [`crate::executor`].

/// Static description of a SIMT device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Scalar cores per SM.
    pub cores_per_sm: usize,
    /// 32-bit registers available per SM.
    pub registers_per_sm: usize,
    /// Shared memory per SM (bytes).
    pub shared_mem_per_sm: usize,
    /// Constant memory (bytes).
    pub constant_mem: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Warp size (threads issued in lockstep).
    pub warp_size: usize,
    /// Shader clock in MHz.
    pub clock_mhz: f64,
    /// Device-memory bandwidth in GB/s (global memory).
    pub memory_bandwidth_gb_s: f64,
    /// Host-device transfer bandwidth in GB/s (PCIe).
    pub transfer_bandwidth_gb_s: f64,
    /// Fixed overhead per kernel launch (µs).
    pub launch_overhead_us: f64,
    /// Fixed latency per host/device memory copy (µs).
    pub transfer_latency_us: f64,
}

impl DeviceSpec {
    /// The NVIDIA GeForce GTX 280 used in the paper.
    pub fn gtx280() -> DeviceSpec {
        DeviceSpec {
            name: "GeForce GTX 280 (simulated)".to_string(),
            sm_count: 30,
            cores_per_sm: 8,
            registers_per_sm: 16 * 1024,
            shared_mem_per_sm: 16 * 1024,
            constant_mem: 64 * 1024,
            max_threads_per_block: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            warp_size: 32,
            clock_mhz: 1296.0,
            memory_bandwidth_gb_s: 141.7,
            transfer_bandwidth_gb_s: 5.0,
            launch_overhead_us: 6.0,
            transfer_latency_us: 8.0,
        }
    }

    /// Total scalar cores on the device.
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }
}

/// The host CPU the paper compares against (Intel 2.0 GHz quad-core); the
/// analytic "CPU implementation" time of Figure 4 / Table I is derived from
/// this model so that the reported speedups do not depend on whatever
/// machine happens to run the benchmark harness.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Marketing name.
    pub name: String,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Effective scalar operations retired per cycle on this workload.
    pub ops_per_cycle: f64,
    /// Number of cores (the paper's CPU baseline is single-threaded, but
    /// the spec records the physical core count).
    pub cores: usize,
}

impl HostSpec {
    /// The Intel 2.0 GHz quad-core host of the paper.
    pub fn paper_cpu() -> HostSpec {
        HostSpec {
            name: "Intel 2.0 GHz quad-core (modeled)".to_string(),
            clock_mhz: 2000.0,
            ops_per_cycle: 2.6,
            cores: 4,
        }
    }

    /// Scalar operations per microsecond on one core.
    pub fn ops_per_us(&self) -> f64 {
        self.clock_mhz * self.ops_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx280_matches_published_resources() {
        let d = DeviceSpec::gtx280();
        assert_eq!(d.sm_count, 30);
        assert_eq!(d.cores_per_sm, 8);
        assert_eq!(d.total_cores(), 240);
        assert_eq!(d.registers_per_sm, 16384);
        assert_eq!(d.shared_mem_per_sm, 16384);
        assert_eq!(d.max_threads_per_block, 512);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_warps_per_sm(), 32);
    }

    #[test]
    fn host_cpu_ops_rate() {
        let h = HostSpec::paper_cpu();
        assert_eq!(h.clock_mhz, 2000.0);
        assert!(h.ops_per_us() > 1000.0);
        assert_eq!(h.cores, 4);
    }
}
