//! Analytic timing model for the simulated device and the modeled host CPU.
//!
//! The wall-clock numbers in the paper's Figure 4 and Tables I/II come from
//! real CUDA hardware we do not have.  The suite therefore *models* both
//! sides from the same abstract work counts that the pipeline measures while
//! it actually executes the algorithm on the host:
//!
//! * the **device time** of a kernel launch follows a wave model — resident
//!   blocks per SM come from the occupancy calculation, blocks are processed
//!   in waves, and each wave's cycle count is the per-thread work divided by
//!   the SM's scalar cores with a latency-hiding efficiency that grows with
//!   occupancy;
//! * the **host (single-core CPU) time** for the same work is the work-unit
//!   count divided by the modeled CPU's sustained operation rate.
//!
//! Because both estimates are driven by the same measured work counts, the
//! *shape* of the paper's results (which kernel dominates, how the speedup
//! saturates with population size) is reproduced even though the absolute
//! microseconds are synthetic.  See DESIGN.md ("Substitutions").

use crate::device::{DeviceSpec, HostSpec};
use crate::kernel::{KernelKind, LaunchConfig};

/// Latency-hiding efficiency as a function of occupancy: even one resident
/// warp keeps a fraction of the pipeline busy, and efficiency approaches 1
/// as the SM fills.
fn latency_hiding_efficiency(occupancy: f64) -> f64 {
    0.30 + 0.70 * occupancy.clamp(0.0, 1.0)
}

/// The analytic timing model: a device plus the host CPU it is compared to.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// The SIMT device model.
    pub device: DeviceSpec,
    /// The host CPU model used for the "CPU implementation" baseline.
    pub host: HostSpec,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            device: DeviceSpec::gtx280(),
            host: HostSpec::paper_cpu(),
        }
    }
}

impl TimingModel {
    /// Create a model from explicit specs.
    pub fn new(device: DeviceSpec, host: HostSpec) -> Self {
        TimingModel { device, host }
    }

    /// Modeled device time (µs) for one kernel launch in which every thread
    /// performs `work_units_per_thread` abstract work units.
    pub fn kernel_time_us(
        &self,
        kernel: KernelKind,
        launch: LaunchConfig,
        work_units_per_thread: f64,
    ) -> f64 {
        if launch.blocks == 0 || launch.threads_per_block == 0 {
            return self.device.launch_overhead_us;
        }
        let occ = launch.occupancy(&self.device, kernel);
        let blocks_per_sm = occ.blocks_per_sm.max(1);
        // How many "waves" of resident blocks the grid needs.
        let resident_blocks = self.device.sm_count * blocks_per_sm;
        let waves = launch.blocks.div_ceil(resident_blocks).max(1);

        let cycles_per_thread = work_units_per_thread * kernel.cycles_per_work_unit();
        let threads_per_sm_per_wave = (blocks_per_sm * launch.threads_per_block).min(
            launch
                .total_threads()
                .div_ceil(self.device.sm_count)
                .max(launch.threads_per_block),
        );
        let efficiency = latency_hiding_efficiency(occ.occupancy);
        let wave_cycles = (threads_per_sm_per_wave as f64 * cycles_per_thread)
            / (self.device.cores_per_sm as f64 * efficiency);
        let total_cycles = waves as f64 * wave_cycles;
        self.device.launch_overhead_us + total_cycles / self.device.clock_mhz
    }

    /// Modeled single-core host time (µs) for the same total work: the CPU
    /// baseline processes every conformation sequentially.
    pub fn cpu_time_us(
        &self,
        kernel: KernelKind,
        population: usize,
        work_units_per_thread: f64,
    ) -> f64 {
        let total_work = population as f64 * work_units_per_thread;
        // The host runs the same arithmetic; charge it the same cycle count
        // per work unit scaled by the host's superscalar throughput.
        let cycles = total_work * kernel.cycles_per_work_unit();
        cycles / (self.host.clock_mhz * self.host.ops_per_cycle)
    }

    /// Modeled speedup of the device over the single-core host for one
    /// launch.
    pub fn speedup(
        &self,
        kernel: KernelKind,
        launch: LaunchConfig,
        population: usize,
        work: f64,
    ) -> f64 {
        self.cpu_time_us(kernel, population, work) / self.kernel_time_us(kernel, launch, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::default()
    }

    #[test]
    fn device_time_grows_with_work() {
        let m = model();
        let lc = LaunchConfig::for_population(15_360);
        let t1 = m.kernel_time_us(KernelKind::Ccd, lc, 100.0);
        let t2 = m.kernel_time_us(KernelKind::Ccd, lc, 1_000.0);
        assert!(t2 > t1);
    }

    #[test]
    fn device_time_is_nearly_flat_below_saturation() {
        // The device has capacity for 30 SMs x 4 blocks x 128 threads =
        // 15,360 resident CCD threads; going from 512 to 7,680 threads
        // should barely change the modeled time (one wave either way),
        // while the CPU baseline scales linearly.  This is the Figure 4
        // behaviour.
        let m = model();
        let work = 2_000.0;
        let small = m.kernel_time_us(KernelKind::Ccd, LaunchConfig::for_population(512), work);
        let large = m.kernel_time_us(KernelKind::Ccd, LaunchConfig::for_population(7_680), work);
        assert!(
            large < small * 2.0,
            "device should not scale linearly below saturation"
        );
        let cpu_small = m.cpu_time_us(KernelKind::Ccd, 512, work);
        let cpu_large = m.cpu_time_us(KernelKind::Ccd, 7_680, work);
        assert!(
            (cpu_large / cpu_small - 15.0).abs() < 1e-9,
            "CPU scales linearly"
        );
    }

    #[test]
    fn full_population_speedup_is_in_the_papers_range() {
        // At the paper's operating point (15,360 threads, 128 per block,
        // register-limited 50% occupancy) the modeled speedup for the
        // dominant kernels should land in the tens — the paper reports ~40.
        let m = model();
        let lc = LaunchConfig::for_population(15_360);
        for kernel in [KernelKind::Ccd, KernelKind::EvalDist, KernelKind::EvalVdw] {
            let s = m.speedup(kernel, lc, 15_360, 3_000.0);
            assert!(
                s > 20.0 && s < 80.0,
                "{kernel:?} speedup {s} outside plausible band"
            );
        }
    }

    #[test]
    fn tiny_populations_underutilize_the_device() {
        let m = model();
        let s_small = m.speedup(
            KernelKind::Ccd,
            LaunchConfig::for_population(256),
            256,
            3_000.0,
        );
        let s_large = m.speedup(
            KernelKind::Ccd,
            LaunchConfig::for_population(15_360),
            15_360,
            3_000.0,
        );
        assert!(
            s_small < s_large,
            "small populations must not reach full speedup"
        );
    }

    #[test]
    fn zero_block_launch_costs_only_overhead() {
        let m = model();
        let lc = LaunchConfig {
            blocks: 0,
            threads_per_block: 128,
        };
        assert_eq!(
            m.kernel_time_us(KernelKind::Ccd, lc, 100.0),
            m.device.launch_overhead_us
        );
    }

    #[test]
    fn higher_occupancy_kernels_run_relatively_faster() {
        // Same work, same launch: the 100%-occupancy fitness kernel hides
        // latency better than the register-bound CCD kernel, so its time per
        // cycle-of-work is smaller.
        let m = model();
        let lc = LaunchConfig::for_population(15_360);
        let work = 1_000.0;
        let t_ccd =
            m.kernel_time_us(KernelKind::Ccd, lc, work) / KernelKind::Ccd.cycles_per_work_unit();
        let t_fit = m.kernel_time_us(KernelKind::FitAssgPopulation, lc, work)
            / KernelKind::FitAssgPopulation.cycles_per_work_unit();
        assert!(t_fit < t_ccd);
    }
}
