//! # lms-simt
//!
//! The heterogeneous CPU–GPU platform substitute: a software model of the
//! paper's NVIDIA GTX 280 (resource limits, occupancy, kernel/memcpy timing,
//! profiler) plus host-side executors that actually run the per-conformation
//! kernels — sequentially (the CPU baseline) or data-parallel across cores
//! (the device role).
//!
//! The numerical work is always performed for real on the host; only the
//! *device timings* are modeled, which is what lets the benchmark harness
//! regenerate the paper's Figure 4 and Tables I–III without CUDA hardware.
//! See DESIGN.md ("Substitutions") for the fidelity argument.
//!
//! ## Quick example
//!
//! ```
//! use lms_simt::{DeviceSpec, ExecutorConfig, KernelKind, LaunchConfig, TimingModel};
//!
//! // Occupancy of the CCD kernel at the paper's 128-thread blocks.
//! let spec = DeviceSpec::gtx280();
//! let launch = LaunchConfig::for_population(15_360);
//! let occ = launch.occupancy(&spec, KernelKind::Ccd);
//! assert_eq!(occ.blocks_per_sm, 4);
//! assert!((occ.occupancy - 0.5).abs() < 1e-9);
//!
//! // Run a kernel over a population on all cores.
//! let executor = ExecutorConfig::parallel().build().expect("valid config");
//! let mut population = vec![0u64; 1024];
//! executor.for_each_indexed(&mut population, |i, x| *x = i as u64);
//! assert_eq!(population[1023], 1023);
//!
//! // Modeled device time for that launch.
//! let model = TimingModel::default();
//! let us = model.kernel_time_us(KernelKind::Ccd, launch, 1000.0);
//! assert!(us > 0.0);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod executor;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod kernel;
pub mod lanes;
pub mod memory;
pub mod occupancy;
pub mod profiler;
pub mod timing;

pub use device::{DeviceSpec, HostSpec};
pub use executor::{
    Backend, Capabilities, Executor, ExecutorConfig, ExecutorConfigError, KernelLaunch,
    DEFAULT_CCD_BLOCK_WIDTH, MAX_CCD_BLOCK_WIDTH,
};
#[cfg(feature = "fault-injection")]
pub use fault::{FaultKind, FaultPlan, FaultSession, FaultSite};
pub use kernel::{KernelKind, LaunchConfig};
pub use lanes::SharedLanes;
pub use memory::{transfer_time_us, DataPlacement, MemorySpace, TransferKind};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use profiler::{KernelStats, Profiler, TransferStats};
pub use timing::TimingModel;
