//! Kernel descriptions and launch configurations.
//!
//! The sampling pipeline is decomposed into the same GPU kernels as the
//! paper's implementation (its Table II): loop closure ([`KernelKind::Ccd`]),
//! the three scoring-function evaluations, fitness assignment at population
//! and complex scope, plus conformation reproduction and the Metropolis
//! acceptance step.  Each kernel carries the per-thread register footprint
//! reported in the paper's Table III (or a comparable estimate for the
//! kernels the paper folds into others), which drives the occupancy model.

use crate::device::DeviceSpec;
use crate::occupancy::{occupancy, Occupancy};

/// The GPU kernels of the multi-scoring sampling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// Cyclic Coordinate Descent loop closure.
    Ccd,
    /// Atom pair-wise distance scoring function evaluation.
    EvalDist,
    /// Soft-sphere van der Waals scoring function evaluation.
    EvalVdw,
    /// Triplet torsion-angle scoring function evaluation.
    EvalTrip,
    /// Pareto-strength fitness assignment across the whole population.
    FitAssgPopulation,
    /// Fitness assignment within one complex.
    FitAssgComplex,
    /// Generation of a new conformation by torsion mutation.
    Reproduction,
    /// Metropolis acceptance test.
    Metropolis,
    /// Candidate-structure finalisation after closure: closure-deviation
    /// readback and the RMSD-to-native observable (a staged-pipeline kernel
    /// the paper folds into its evaluation tasks).
    Rebuild,
    /// Population selection: accepted candidates overwrite their members'
    /// conformation lanes in the SoA arena.
    Select,
    /// Numerical health guard: a post-score sweep classifying every
    /// member's candidate lanes (scores, torsions, closure deviation,
    /// observables) as finite or poisoned.  A robustness kernel of this
    /// implementation, not a paper task.
    HealthSweep,
}

impl KernelKind {
    /// All kernels in the order the paper's Table II lists them (the
    /// kernels the paper does not list separately come last).
    pub const ALL: [KernelKind; 11] = [
        KernelKind::Ccd,
        KernelKind::EvalDist,
        KernelKind::EvalVdw,
        KernelKind::EvalTrip,
        KernelKind::FitAssgPopulation,
        KernelKind::FitAssgComplex,
        KernelKind::Reproduction,
        KernelKind::Metropolis,
        KernelKind::Rebuild,
        KernelKind::Select,
        KernelKind::HealthSweep,
    ];

    /// Display name matching the paper's bracketed task labels.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Ccd => "[CCD]",
            KernelKind::EvalDist => "[EvalDIST]",
            KernelKind::EvalVdw => "[EvalVDW]",
            KernelKind::EvalTrip => "[EvalTRIP]",
            KernelKind::FitAssgPopulation => "[FitAssg] within Population",
            KernelKind::FitAssgComplex => "[FitAssg] within Complex",
            KernelKind::Reproduction => "[Reproduction]",
            KernelKind::Metropolis => "[Metropolis]",
            KernelKind::Rebuild => "[Rebuild]",
            KernelKind::Select => "[Select]",
            KernelKind::HealthSweep => "[HealthSweep]",
        }
    }

    /// Registers per thread after compilation (paper Table III; estimates
    /// for the kernels the paper does not list).
    pub fn registers_per_thread(&self) -> usize {
        match self {
            KernelKind::Ccd => 32,
            KernelKind::EvalDist => 32,
            KernelKind::EvalVdw => 32,
            KernelKind::EvalTrip => 20,
            KernelKind::FitAssgPopulation => 8,
            KernelKind::FitAssgComplex => 5,
            KernelKind::Reproduction => 16,
            KernelKind::Metropolis => 10,
            KernelKind::Rebuild => 24,
            KernelKind::Select => 8,
            KernelKind::HealthSweep => 6,
        }
    }

    /// Device cycles charged per abstract work unit of this kernel.  Work
    /// units are counted by the pipeline (atom placements for CCD, scored
    /// pairs for DIST/VDW, table lookups for TRIPLET, comparisons for the
    /// fitness kernels); the factors reflect that, e.g., a CCD atom
    /// placement (trigonometry + a local frame) costs far more cycles than
    /// a fitness comparison.
    pub fn cycles_per_work_unit(&self) -> f64 {
        match self {
            KernelKind::Ccd => 90.0,
            // A DIST pair costs a distance, a bin index and an un-coalesced
            // texture fetch from the large pairwise table; a VDW contact is
            // a distance plus a branch and a multiply on in-register radii.
            KernelKind::EvalDist => 70.0,
            KernelKind::EvalVdw => 12.0,
            KernelKind::EvalTrip => 30.0,
            KernelKind::FitAssgPopulation => 3.0,
            KernelKind::FitAssgComplex => 3.0,
            KernelKind::Reproduction => 40.0,
            KernelKind::Metropolis => 12.0,
            // A Rebuild work unit is one superimposed atom of the RMSD
            // observable (Kabsch accumulation); a Select work unit is one
            // copied torsion lane element.
            KernelKind::Rebuild => 30.0,
            KernelKind::Select => 4.0,
            // A HealthSweep work unit is one finite-classification of an
            // in-register double — about as cheap as a kernel gets.
            KernelKind::HealthSweep => 2.0,
        }
    }

    /// Whether the paper's Table II lists this kernel as its own row.
    pub fn in_paper_table(&self) -> bool {
        !matches!(
            self,
            KernelKind::Reproduction
                | KernelKind::Metropolis
                | KernelKind::Rebuild
                | KernelKind::Select
                | KernelKind::HealthSweep
        )
    }
}

/// A kernel launch configuration: how the population maps onto blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
}

impl LaunchConfig {
    /// The paper's canonical configuration: 128 threads per block, one
    /// thread per conformation.
    pub fn for_population(population: usize) -> LaunchConfig {
        Self::with_block_size(population, 128)
    }

    /// A launch with an explicit block size, rounding the block count up so
    /// that every conformation gets a thread.
    pub fn with_block_size(population: usize, threads_per_block: usize) -> LaunchConfig {
        let tpb = threads_per_block.max(1);
        LaunchConfig {
            blocks: population.div_ceil(tpb),
            threads_per_block: tpb,
        }
    }

    /// Total threads launched (may exceed the population in the last block).
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }

    /// The occupancy this launch achieves for a given kernel on a device.
    pub fn occupancy(&self, spec: &DeviceSpec, kernel: KernelKind) -> Occupancy {
        occupancy(
            spec,
            kernel.registers_per_thread(),
            self.threads_per_block,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_register_counts() {
        assert_eq!(KernelKind::Ccd.registers_per_thread(), 32);
        assert_eq!(KernelKind::EvalDist.registers_per_thread(), 32);
        assert_eq!(KernelKind::EvalVdw.registers_per_thread(), 32);
        assert_eq!(KernelKind::EvalTrip.registers_per_thread(), 20);
        assert_eq!(KernelKind::FitAssgPopulation.registers_per_thread(), 8);
        assert_eq!(KernelKind::FitAssgComplex.registers_per_thread(), 5);
    }

    #[test]
    fn kernel_names_match_paper_labels() {
        assert_eq!(KernelKind::Ccd.name(), "[CCD]");
        assert_eq!(KernelKind::EvalDist.name(), "[EvalDIST]");
        assert_eq!(
            KernelKind::FitAssgComplex.name(),
            "[FitAssg] within Complex"
        );
        // Exactly the six Table II kernel rows are flagged as such.
        let in_table = KernelKind::ALL
            .iter()
            .filter(|k| k.in_paper_table())
            .count();
        assert_eq!(in_table, 6);
    }

    #[test]
    fn launch_config_covers_population() {
        let lc = LaunchConfig::for_population(15_360);
        assert_eq!(lc.threads_per_block, 128);
        assert_eq!(lc.blocks, 120);
        assert_eq!(lc.total_threads(), 15_360);

        // Non-divisible populations round the block count up.
        let lc2 = LaunchConfig::for_population(1000);
        assert_eq!(lc2.blocks, 8);
        assert!(lc2.total_threads() >= 1000);

        let lc3 = LaunchConfig::with_block_size(512, 128);
        assert_eq!(lc3.blocks, 4);
    }

    #[test]
    fn occupancy_through_launch_config() {
        let spec = DeviceSpec::gtx280();
        let lc = LaunchConfig::for_population(15_360);
        assert!((lc.occupancy(&spec, KernelKind::Ccd).occupancy - 0.5).abs() < 1e-9);
        assert!((lc.occupancy(&spec, KernelKind::FitAssgComplex).occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccd_is_the_most_expensive_per_work_unit_scoring_kernel() {
        assert!(
            KernelKind::Ccd.cycles_per_work_unit() > KernelKind::EvalDist.cycles_per_work_unit()
        );
        assert!(
            KernelKind::EvalDist.cycles_per_work_unit()
                > KernelKind::FitAssgPopulation.cycles_per_work_unit()
        );
    }
}
