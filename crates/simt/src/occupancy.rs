//! SM occupancy calculation.
//!
//! Occupancy — the ratio of resident warps to the SM's maximum — is what the
//! paper's Table III reports per kernel.  It is determined by whichever
//! resource runs out first when stacking blocks onto an SM: registers,
//! shared memory, the block-count limit, or the thread-count limit.

use crate::device::DeviceSpec;

/// Result of the occupancy calculation for one kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks that fit concurrently on one SM.
    pub blocks_per_sm: usize,
    /// Threads resident per SM.
    pub threads_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Occupancy as a fraction of the SM's maximum resident warps, in `[0, 1]`.
    pub occupancy: f64,
    /// The resource that limited the block count.
    pub limiter: OccupancyLimiter,
}

/// Which resource limits how many blocks fit on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// The register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// The hardware block-slot limit.
    BlockSlots,
    /// The resident-thread limit.
    Threads,
    /// The launch requested zero threads (degenerate).
    Degenerate,
}

/// Compute the occupancy of a kernel with the given per-thread register use
/// and per-block shared-memory use at a given block size.
pub fn occupancy(
    spec: &DeviceSpec,
    registers_per_thread: usize,
    threads_per_block: usize,
    shared_mem_per_block: usize,
) -> Occupancy {
    if threads_per_block == 0 {
        return Occupancy {
            blocks_per_sm: 0,
            threads_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: OccupancyLimiter::Degenerate,
        };
    }
    let threads_per_block = threads_per_block.min(spec.max_threads_per_block);

    // Candidate limits; the smallest wins.
    let reg_limit = if registers_per_thread == 0 {
        usize::MAX
    } else {
        spec.registers_per_sm / (registers_per_thread * threads_per_block)
    };
    let smem_limit = spec
        .shared_mem_per_sm
        .checked_div(shared_mem_per_block)
        .unwrap_or(usize::MAX);
    let slot_limit = spec.max_blocks_per_sm;
    let thread_limit = spec.max_threads_per_sm / threads_per_block;

    let blocks_per_sm = reg_limit.min(smem_limit).min(slot_limit).min(thread_limit);
    let limiter = if blocks_per_sm == reg_limit {
        OccupancyLimiter::Registers
    } else if blocks_per_sm == smem_limit {
        OccupancyLimiter::SharedMemory
    } else if blocks_per_sm == thread_limit {
        OccupancyLimiter::Threads
    } else {
        OccupancyLimiter::BlockSlots
    };

    let threads_per_sm = blocks_per_sm * threads_per_block;
    let warps_per_sm = threads_per_sm / spec.warp_size;
    let occupancy = warps_per_sm as f64 / spec.max_warps_per_sm() as f64;

    Occupancy {
        blocks_per_sm,
        threads_per_sm,
        warps_per_sm,
        occupancy,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx280() -> DeviceSpec {
        DeviceSpec::gtx280()
    }

    #[test]
    fn paper_table3_register_counts_reproduce_reported_occupancy() {
        // Table III of the paper, at the paper's 128 threads per block.
        let spec = gtx280();
        let cases = [
            (32usize, 0.50), // CCD, EvalDIST, EvalVDW
            (20, 0.75),      // EvalTRIP
            (8, 1.00),       // FitAssg within population
            (5, 1.00),       // FitAssg within complex
        ];
        for (regs, expected) in cases {
            let occ = occupancy(&spec, regs, 128, 0);
            assert!(
                (occ.occupancy - expected).abs() < 1e-9,
                "{regs} registers: expected {expected}, got {}",
                occ.occupancy
            );
        }
    }

    #[test]
    fn register_limited_case_identifies_limiter() {
        let spec = gtx280();
        let occ = occupancy(&spec, 32, 128, 0);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.threads_per_sm, 512);
        assert_eq!(occ.warps_per_sm, 16);
    }

    #[test]
    fn slot_limited_case() {
        let spec = gtx280();
        // Tiny register footprint and tiny blocks: the 8-block slot limit binds.
        let occ = occupancy(&spec, 4, 64, 0);
        assert_eq!(occ.limiter, OccupancyLimiter::BlockSlots);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.threads_per_sm, 512);
        assert!((occ.occupancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thread_limited_case() {
        let spec = gtx280();
        // 512-thread blocks with few registers: two blocks exhaust 1024 threads.
        let occ = occupancy(&spec, 8, 512, 0);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, OccupancyLimiter::Threads);
        assert!((occ.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_limited_case() {
        let spec = gtx280();
        // 6 KiB of shared memory per block allows only 2 blocks per SM.
        let occ = occupancy(&spec, 8, 128, 6 * 1024);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
        assert!((occ.occupancy - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_is_degenerate() {
        let spec = gtx280();
        let occ = occupancy(&spec, 32, 0, 0);
        assert_eq!(occ.limiter, OccupancyLimiter::Degenerate);
        assert_eq!(occ.occupancy, 0.0);
    }

    #[test]
    fn oversized_blocks_are_clamped_to_device_limit() {
        let spec = gtx280();
        let occ = occupancy(&spec, 8, 4096, 0);
        // Clamped to 512-thread blocks.
        assert_eq!(occ.threads_per_sm % 512, 0);
        assert!(occ.blocks_per_sm >= 1);
    }

    #[test]
    fn occupancy_is_monotone_in_register_pressure() {
        let spec = gtx280();
        let mut last = 2.0;
        for regs in [4, 8, 16, 20, 24, 32, 48, 64, 96, 128] {
            let occ = occupancy(&spec, regs, 128, 0).occupancy;
            assert!(
                occ <= last + 1e-12,
                "occupancy must not increase with more registers"
            );
            last = occ;
        }
    }
}
