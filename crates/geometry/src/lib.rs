//! # lms-geometry
//!
//! Geometry substrate for the loop-modeling suite: 3-D vectors, rotations,
//! internal-coordinate (torsion) geometry, RMSD with and without optimal
//! superposition, and reproducible per-stream random number generation.
//!
//! Everything in the higher-level crates — backbone building, CCD loop
//! closure, the scoring functions and the decoy analysis — is written in
//! terms of these primitives.
//!
//! ## Quick example
//!
//! ```
//! use lms_geometry::{Vec3, Rotation, dihedral_angle, place_atom, deg_to_rad};
//!
//! // Place a fourth atom at a 60 degree dihedral from three known atoms.
//! let a = Vec3::new(0.0, 1.0, 0.0);
//! let b = Vec3::ZERO;
//! let c = Vec3::new(1.5, 0.0, 0.0);
//! let d = place_atom(a, b, c, 1.53, deg_to_rad(111.0), deg_to_rad(60.0));
//! assert!((dihedral_angle(a, b, c, d) - deg_to_rad(60.0)).abs() < 1e-9);
//!
//! // Rotations compose and invert.
//! let r = Rotation::about_axis(Vec3::Z, deg_to_rad(90.0));
//! assert!(r.inverse().apply(r.apply(Vec3::X)).max_abs_diff(Vec3::X) < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod angles;
pub mod dihedral;
pub mod rmsd;
pub mod rng;
pub mod rotation;
pub mod vec3;

pub use angles::{
    angular_distance_deg, angular_distance_rad, circular_mean_rad, circular_variance_rad,
    deg_to_rad, max_torsion_deviation_deg, rad_to_deg, wrap_deg, wrap_rad,
};
pub use dihedral::{bond_angle, dihedral_angle, place_atom, InternalCoords};
pub use rmsd::{jacobi_eigen_symmetric3, kabsch, rmsd_direct, rmsd_superposed, Superposition};
pub use rng::{random_torsion, wrapped_normal, StreamRngFactory};
pub use rotation::{Mat3, Rotation};
pub use vec3::Vec3;
