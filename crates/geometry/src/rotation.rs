//! 3×3 rotation matrices and axis–angle rotations.
//!
//! Loop closure (CCD) and torsion mutation both rotate parts of the backbone
//! about a bond axis.  [`Rotation`] packages a 3×3 orthonormal matrix with a
//! small, explicit API: axis–angle construction (Rodrigues' formula),
//! composition, application to points about an arbitrary pivot, and
//! orthonormality checks used by the property tests.

use crate::vec3::Vec3;

/// A 3×3 matrix stored row-major.  Most users want [`Rotation`]; `Mat3` is
/// exposed for the Kabsch RMSD computation, which needs general matrix
/// arithmetic (covariance matrices are not rotations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 {
        rows: [[0.0; 3]; 3],
    };

    /// Build from three rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Element access (row, column).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.rows[r][c]
    }

    /// Mutable element access (row, column).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.rows[r][c] = v;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.rows;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Matrix–matrix product `self * other`.
    pub fn mul_mat(&self, other: &Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += self.rows[r][k] * other.rows[k][c];
                }
                out.rows[r][c] = s;
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        let m = &self.rows;
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.rows;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Outer product `a * bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        Mat3::from_rows(
            [a.x * b.x, a.x * b.y, a.x * b.z],
            [a.y * b.x, a.y * b.y, a.y * b.z],
            [a.z * b.x, a.z * b.y, a.z * b.z],
        )
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.rows[r][c] = self.rows[r][c] + other.rows[r][c];
            }
        }
        out
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Mat3 {
        let mut out = *self;
        for r in 0..3 {
            for c in 0..3 {
                out.rows[r][c] *= s;
            }
        }
        out
    }

    /// Frobenius norm of the difference to another matrix.
    pub fn frobenius_distance(&self, other: &Mat3) -> f64 {
        let mut s = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let d = self.rows[r][c] - other.rows[r][c];
                s += d * d;
            }
        }
        s.sqrt()
    }
}

/// A proper rotation (orthonormal matrix with determinant +1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    matrix: Mat3,
}

impl Rotation {
    /// The identity rotation.
    pub const IDENTITY: Rotation = Rotation {
        matrix: Mat3::IDENTITY,
    };

    /// Build a rotation of `angle` radians about the (not necessarily unit)
    /// `axis`, using Rodrigues' rotation formula.
    ///
    /// Returns the identity rotation when the axis is (near-)zero, which is a
    /// safe and convenient convention for degenerate CCD pivots.
    pub fn about_axis(axis: Vec3, angle: f64) -> Rotation {
        let Some(u) = axis.try_normalize() else {
            return Rotation::IDENTITY;
        };
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (u.x, u.y, u.z);
        let matrix = Mat3::from_rows(
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        );
        Rotation { matrix }
    }

    /// Wrap an existing matrix that is already known to be a proper rotation.
    ///
    /// # Panics
    /// Panics (in debug builds) if the matrix is not orthonormal with
    /// determinant ≈ +1.
    pub fn from_matrix_unchecked(matrix: Mat3) -> Rotation {
        debug_assert!(
            Rotation { matrix }.is_orthonormal(1e-6),
            "matrix is not a proper rotation"
        );
        Rotation { matrix }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Mat3 {
        &self.matrix
    }

    /// Apply the rotation to a vector (about the origin).
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        self.matrix.mul_vec(v)
    }

    /// Rotate a point about an arbitrary pivot point.
    #[inline]
    pub fn apply_about(&self, point: Vec3, pivot: Vec3) -> Vec3 {
        self.apply(point - pivot) + pivot
    }

    /// Compose rotations: the returned rotation applies `other` first, then
    /// `self`.
    pub fn compose(&self, other: &Rotation) -> Rotation {
        Rotation {
            matrix: self.matrix.mul_mat(&other.matrix),
        }
    }

    /// The inverse rotation (transpose, since the matrix is orthonormal).
    pub fn inverse(&self) -> Rotation {
        Rotation {
            matrix: self.matrix.transpose(),
        }
    }

    /// Check orthonormality and determinant +1 within `tol`.
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        let should_be_identity = self.matrix.mul_mat(&self.matrix.transpose());
        should_be_identity.frobenius_distance(&Mat3::IDENTITY) < tol
            && (self.matrix.det() - 1.0).abs() < tol
    }

    /// The rotation angle in radians, in `[0, π]`.
    pub fn angle(&self) -> f64 {
        let m = &self.matrix.rows;
        let trace = m[0][0] + m[1][1] + m[2][2];
        ((trace - 1.0) / 2.0).clamp(-1.0, 1.0).acos()
    }
}

impl Default for Rotation {
    fn default() -> Self {
        Rotation::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg_to_rad;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn vec_close(a: Vec3, b: Vec3) {
        assert!(a.max_abs_diff(b) < 1e-9, "{a} != {b}");
    }

    #[test]
    fn rotation_about_z_quarter_turn() {
        let r = Rotation::about_axis(Vec3::Z, FRAC_PI_2);
        vec_close(r.apply(Vec3::X), Vec3::Y);
        vec_close(r.apply(Vec3::Y), -Vec3::X);
        vec_close(r.apply(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn rotation_about_arbitrary_axis_preserves_axis() {
        let axis = Vec3::new(1.0, 2.0, -0.5);
        let r = Rotation::about_axis(axis, 1.234);
        vec_close(r.apply(axis), axis);
    }

    #[test]
    fn rotation_preserves_lengths_and_angles() {
        let r = Rotation::about_axis(Vec3::new(0.3, -1.2, 0.7), 2.1);
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 1.0);
        assert!((r.apply(a).norm() - a.norm()).abs() < 1e-9);
        assert!((r.apply(a).dot(r.apply(b)) - a.dot(b)).abs() < 1e-9);
    }

    #[test]
    fn zero_axis_gives_identity() {
        let r = Rotation::about_axis(Vec3::ZERO, 1.0);
        assert_eq!(r, Rotation::IDENTITY);
        vec_close(r.apply(Vec3::new(1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn inverse_undoes_rotation() {
        let r = Rotation::about_axis(Vec3::new(1.0, 1.0, 1.0), 0.77);
        let p = Vec3::new(3.0, -2.0, 0.5);
        vec_close(r.inverse().apply(r.apply(p)), p);
        let composed = r.inverse().compose(&r);
        assert!(composed.matrix().frobenius_distance(&Mat3::IDENTITY) < 1e-9);
    }

    #[test]
    fn composition_order() {
        let rz = Rotation::about_axis(Vec3::Z, FRAC_PI_2);
        let rx = Rotation::about_axis(Vec3::X, FRAC_PI_2);
        // compose applies the right-hand rotation first.
        let p = Vec3::Y;
        let combined = rx.compose(&rz); // rz first, then rx
        vec_close(combined.apply(p), rx.apply(rz.apply(p)));
    }

    #[test]
    fn rotation_about_pivot() {
        let pivot = Vec3::new(1.0, 0.0, 0.0);
        let r = Rotation::about_axis(Vec3::Z, PI);
        // Point at origin rotated 180 deg about pivot (1,0,0) lands at (2,0,0).
        vec_close(r.apply_about(Vec3::ZERO, pivot), Vec3::new(2.0, 0.0, 0.0));
        // The pivot itself is fixed.
        vec_close(r.apply_about(pivot, pivot), pivot);
    }

    #[test]
    fn angle_extraction() {
        for deg in [0.0, 10.0, 45.0, 90.0, 179.0] {
            let r = Rotation::about_axis(Vec3::new(0.2, 0.5, -1.0), deg_to_rad(deg));
            assert!((r.angle() - deg_to_rad(deg)).abs() < 1e-9, "angle {deg}");
        }
    }

    #[test]
    fn orthonormality_check() {
        let r = Rotation::about_axis(Vec3::new(3.0, -1.0, 2.0), 0.9);
        assert!(r.is_orthonormal(1e-9));
        let bad = Mat3::from_rows([2.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]);
        assert!(!Rotation { matrix: bad }.is_orthonormal(1e-6));
    }

    #[test]
    fn mat3_determinant_and_transpose() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [0.0, 1.0, 4.0], [5.0, 6.0, 0.0]);
        assert!((m.det() - 1.0).abs() < 1e-12);
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 5.0);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mat3_outer_product() {
        let o = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(o.get(0, 0), 4.0);
        assert_eq!(o.get(1, 2), 12.0);
        assert_eq!(o.get(2, 1), 15.0);
    }

    #[test]
    fn mat3_identity_is_multiplicative_identity() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        assert_eq!(m.mul_mat(&Mat3::IDENTITY), m);
        assert_eq!(Mat3::IDENTITY.mul_mat(&m), m);
        assert_eq!(
            Mat3::IDENTITY.mul_vec(Vec3::new(1.0, 2.0, 3.0)),
            Vec3::new(1.0, 2.0, 3.0)
        );
    }
}
