//! Internal-coordinate geometry: bond angles, dihedral (torsion) angles and
//! the NeRF atom-placement rule.
//!
//! Protein backbones in this suite are parameterised by torsion angles with
//! fixed bond lengths and bond angles (exactly as in the paper, which keeps
//! ω at 180° and bond lengths constant).  Converting a torsion-angle vector
//! into Cartesian atom positions therefore needs one primitive: *given three
//! already-placed atoms A–B–C and the internal coordinates (bond length
//! C–D, bond angle B–C–D, dihedral A–B–C–D), place atom D*.  That primitive
//! is [`place_atom`], the Natural Extension Reference Frame (NeRF) rule.

use crate::vec3::Vec3;

/// Bond angle (radians, in `[0, π]`) at vertex `b` formed by points
/// `a – b – c`.
///
/// Returns `0.0` when either arm is degenerate (zero length).
pub fn bond_angle(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    (a - b).angle_to(c - b)
}

/// Dihedral (torsion) angle (radians, in `(-π, π]`) defined by the four
/// points `a – b – c – d`: the signed angle between the plane (a, b, c) and
/// the plane (b, c, d), measured about the b→c axis using the IUPAC sign
/// convention (cis = 0, trans = π).
///
/// Returns `0.0` when the construction is degenerate (collinear points).
pub fn dihedral_angle(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    // Praxeolitic formulation: project the two outer bonds onto the plane
    // perpendicular to the central bond and take the signed angle between
    // the projections (positive = right-handed rotation about b->c).
    let b0 = a - b;
    let b2 = d - c;
    let b1 = match (c - b).try_normalize() {
        Some(v) => v,
        None => return 0.0,
    };

    let v = b0 - b1 * b0.dot(b1);
    let w = b2 - b1 * b2.dot(b1);
    if v.norm_sq() < 1e-20 || w.norm_sq() < 1e-20 {
        return 0.0;
    }

    let x = v.dot(w);
    let y = b1.cross(v).dot(w);
    y.atan2(x)
}

/// Place a new atom `D` given three previously placed atoms `A`, `B`, `C`
/// and the internal coordinates of `D` relative to them:
///
/// * `bond_length` — distance C–D (Å),
/// * `bond_angle` — angle B–C–D (radians),
/// * `dihedral` — torsion A–B–C–D (radians).
///
/// This is the NeRF (Natural Extension Reference Frame) construction used
/// by essentially all torsion-space protein builders.  The inputs must not
/// be collinear; if they are, the local frame is ill-defined and the
/// function falls back to extending along the B→C direction.
pub fn place_atom(
    a: Vec3,
    b: Vec3,
    c: Vec3,
    bond_length: f64,
    bond_angle: f64,
    dihedral: f64,
) -> Vec3 {
    // Local frame at C: bc is the x-axis, n is the z-axis.
    let bc = match (c - b).try_normalize() {
        Some(v) => v,
        None => Vec3::X,
    };
    let ab = b - a;
    let n = match ab.cross(bc).try_normalize() {
        Some(v) => v,
        // A, B, C collinear: pick any vector perpendicular to bc.
        None => {
            let fallback = if bc.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
            bc.cross(fallback).normalized()
        }
    };
    let m = n.cross(bc);

    // Position of D in the local frame (standard NeRF formula).
    let (sin_t, cos_t) = bond_angle.sin_cos();
    let (sin_p, cos_p) = dihedral.sin_cos();
    let d_local = Vec3::new(
        -bond_length * cos_t,
        bond_length * sin_t * cos_p,
        bond_length * sin_t * sin_p,
    );

    // Transform to global coordinates: columns of the frame are (bc, m, n).
    c + bc * d_local.x + m * d_local.y + n * d_local.z
}

/// Convenience record of the internal coordinates of one atom relative to
/// the three atoms placed before it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InternalCoords {
    /// Bond length to the previous atom (Å).
    pub bond_length: f64,
    /// Bond angle at the previous atom (radians).
    pub bond_angle: f64,
    /// Dihedral about the previous bond (radians).
    pub dihedral: f64,
}

impl InternalCoords {
    /// Construct from explicit values.
    pub fn new(bond_length: f64, bond_angle: f64, dihedral: f64) -> Self {
        InternalCoords {
            bond_length,
            bond_angle,
            dihedral,
        }
    }

    /// Measure the internal coordinates of point `d` with respect to the
    /// chain `a – b – c`.
    pub fn measure(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Self {
        InternalCoords {
            bond_length: c.distance(d),
            bond_angle: bond_angle(b, c, d),
            dihedral: dihedral_angle(a, b, c, d),
        }
    }

    /// Rebuild the Cartesian position from these internal coordinates and
    /// the three reference atoms.
    pub fn rebuild(&self, a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
        place_atom(a, b, c, self.bond_length, self.bond_angle, self.dihedral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::{deg_to_rad, rad_to_deg, wrap_rad};
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-8
    }

    #[test]
    fn bond_angle_right_angle() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::ZERO;
        let c = Vec3::new(0.0, 1.0, 0.0);
        assert!(close(bond_angle(a, b, c), PI / 2.0));
    }

    #[test]
    fn bond_angle_straight_line() {
        let a = Vec3::new(-1.0, 0.0, 0.0);
        let b = Vec3::ZERO;
        let c = Vec3::new(2.0, 0.0, 0.0);
        assert!(close(bond_angle(a, b, c), PI));
    }

    #[test]
    fn dihedral_of_planar_trans_configuration() {
        // Four points in a zig-zag within the xy plane: trans (180 deg).
        let a = Vec3::new(0.0, 1.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.0);
        let c = Vec3::new(1.0, 0.0, 0.0);
        let d = Vec3::new(1.0, -1.0, 0.0);
        assert!(close(dihedral_angle(a, b, c, d).abs(), PI));
    }

    #[test]
    fn dihedral_of_planar_cis_configuration() {
        let a = Vec3::new(0.0, 1.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.0);
        let c = Vec3::new(1.0, 0.0, 0.0);
        let d = Vec3::new(1.0, 1.0, 0.0);
        assert!(close(dihedral_angle(a, b, c, d), 0.0));
    }

    #[test]
    fn dihedral_sign_convention() {
        let a = Vec3::new(0.0, 1.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.0);
        let c = Vec3::new(1.0, 0.0, 0.0);
        // D rotated +90 deg about the b->c (x) axis from the cis position.
        let d_plus = Vec3::new(1.0, 0.0, 1.0);
        let d_minus = Vec3::new(1.0, 0.0, -1.0);
        let plus = dihedral_angle(a, b, c, d_plus);
        let minus = dihedral_angle(a, b, c, d_minus);
        assert!(close(plus, PI / 2.0), "got {}", rad_to_deg(plus));
        assert!(close(minus, -PI / 2.0), "got {}", rad_to_deg(minus));
    }

    #[test]
    fn degenerate_dihedral_returns_zero() {
        let p = Vec3::new(1.0, 1.0, 1.0);
        assert!(close(dihedral_angle(p, p, p, p), 0.0));
        // Collinear chain.
        let a = Vec3::ZERO;
        let b = Vec3::X;
        let c = Vec3::X * 2.0;
        let d = Vec3::X * 3.0;
        assert!(close(dihedral_angle(a, b, c, d), 0.0));
    }

    #[test]
    fn place_atom_reproduces_requested_internals() {
        let a = Vec3::new(0.1, -0.3, 0.2);
        let b = Vec3::new(1.4, 0.2, -0.1);
        let c = Vec3::new(2.1, 1.3, 0.4);
        for &(len, ang_deg, dih_deg) in &[
            (1.53, 110.0, 60.0),
            (1.33, 121.0, 180.0),
            (1.46, 114.0, -73.5),
            (2.0, 90.0, 0.0),
            (1.0, 45.0, -179.0),
        ] {
            let d = place_atom(a, b, c, len, deg_to_rad(ang_deg), deg_to_rad(dih_deg));
            assert!(
                close(c.distance(d), len),
                "bond length for {ang_deg}/{dih_deg}"
            );
            assert!(
                close(rad_to_deg(bond_angle(b, c, d)), ang_deg),
                "bond angle: got {}",
                rad_to_deg(bond_angle(b, c, d))
            );
            let measured = rad_to_deg(dihedral_angle(a, b, c, d));
            let diff = rad_to_deg(wrap_rad(deg_to_rad(measured - dih_deg))).abs();
            assert!(diff < 1e-6, "dihedral: requested {dih_deg}, got {measured}");
        }
    }

    #[test]
    fn place_atom_collinear_reference_does_not_panic() {
        let a = Vec3::ZERO;
        let b = Vec3::X;
        let c = Vec3::X * 2.0;
        let d = place_atom(a, b, c, 1.5, deg_to_rad(109.5), deg_to_rad(45.0));
        assert!(d.is_finite());
        assert!(close(c.distance(d), 1.5));
    }

    #[test]
    fn internal_coords_measure_rebuild_roundtrip() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.5, 0.0, 0.0);
        let c = Vec3::new(2.0, 1.4, 0.0);
        let d = Vec3::new(2.9, 1.8, 1.1);
        let ic = InternalCoords::measure(a, b, c, d);
        let rebuilt = ic.rebuild(a, b, c);
        assert!(rebuilt.max_abs_diff(d) < 1e-9);
    }
}
