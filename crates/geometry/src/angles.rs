//! Angle utilities: degree/radian conversion, wrapping, and angular
//! distances.
//!
//! Backbone torsion angles live on a circle, so "distance" between two
//! torsions and "mean" of a set of torsions must be computed circularly.
//! The sampler's decoy-distinctness rule (maximum torsion deviation ≥ 30°)
//! and the mutation move set both rely on these helpers.

use std::f64::consts::PI;

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wrap an angle in radians into the canonical interval `(-π, π]`.
pub fn wrap_rad(angle: f64) -> f64 {
    if !angle.is_finite() {
        return angle;
    }
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Wrap an angle in degrees into the canonical interval `(-180, 180]`.
pub fn wrap_deg(angle: f64) -> f64 {
    if !angle.is_finite() {
        return angle;
    }
    let mut a = angle % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// Smallest absolute angular difference between two angles in radians,
/// always in `[0, π]`.
#[inline]
pub fn angular_distance_rad(a: f64, b: f64) -> f64 {
    wrap_rad(a - b).abs()
}

/// Smallest absolute angular difference between two angles in degrees,
/// always in `[0, 180]`.
#[inline]
pub fn angular_distance_deg(a: f64, b: f64) -> f64 {
    wrap_deg(a - b).abs()
}

/// Circular mean of a set of angles (radians).  Returns `None` when the
/// slice is empty or the mean direction is undefined (vectors cancel).
pub fn circular_mean_rad(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (mut s, mut c) = (0.0, 0.0);
    for &a in angles {
        s += a.sin();
        c += a.cos();
    }
    if s.hypot(c) < 1e-12 {
        None
    } else {
        Some(s.atan2(c))
    }
}

/// Circular variance of a set of angles (radians), in `[0, 1]`:
/// 0 means all angles identical, 1 means the angles are maximally dispersed.
pub fn circular_variance_rad(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return 0.0;
    }
    let (mut s, mut c) = (0.0, 0.0);
    for &a in angles {
        s += a.sin();
        c += a.cos();
    }
    let r = s.hypot(c) / angles.len() as f64;
    1.0 - r
}

/// Maximum angular deviation between two equal-length torsion vectors,
/// returned in **degrees**.  The torsion vectors themselves are given in
/// **radians**, the unit used for torsions everywhere in the suite.  This is
/// the metric behind the paper's 30° decoy-distinctness rule.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_torsion_deviation_deg(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "torsion vectors must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| rad_to_deg(angular_distance_rad(x, y)))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-720.0, -180.0, -90.0, 0.0, 45.0, 180.0, 359.0, 1234.5] {
            assert!(close(rad_to_deg(deg_to_rad(d)), d));
        }
        assert!(close(deg_to_rad(180.0), PI));
        assert!(close(rad_to_deg(PI / 2.0), 90.0));
    }

    #[test]
    fn wrapping_radians() {
        assert!(close(wrap_rad(0.0), 0.0));
        assert!(close(wrap_rad(PI), PI));
        assert!(close(wrap_rad(-PI), PI));
        assert!(close(wrap_rad(3.0 * PI), PI));
        assert!(close(wrap_rad(2.0 * PI), 0.0));
        assert!(close(wrap_rad(-2.5 * PI), -0.5 * PI));
        assert!(wrap_rad(f64::NAN).is_nan());
    }

    #[test]
    fn wrapping_degrees() {
        assert!(close(wrap_deg(0.0), 0.0));
        assert!(close(wrap_deg(180.0), 180.0));
        assert!(close(wrap_deg(-180.0), 180.0));
        assert!(close(wrap_deg(540.0), 180.0));
        assert!(close(wrap_deg(360.0), 0.0));
        assert!(close(wrap_deg(-450.0), -90.0));
    }

    #[test]
    fn wrapped_values_are_in_range() {
        for i in -1000..1000 {
            let a = i as f64 * 0.37;
            let w = wrap_rad(a);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "{a} wrapped to {w}");
            let d = i as f64 * 7.3;
            let wd = wrap_deg(d);
            assert!(wd > -180.0 - 1e-9 && wd <= 180.0 + 1e-9);
        }
    }

    #[test]
    fn angular_distances() {
        assert!(close(angular_distance_deg(170.0, -170.0), 20.0));
        assert!(close(angular_distance_deg(-170.0, 170.0), 20.0));
        assert!(close(angular_distance_deg(0.0, 180.0), 180.0));
        assert!(close(angular_distance_deg(10.0, 10.0), 0.0));
        assert!(close(angular_distance_rad(PI - 0.1, -(PI - 0.1)), 0.2));
    }

    #[test]
    fn circular_mean_basic() {
        let m = circular_mean_rad(&[deg_to_rad(170.0), deg_to_rad(-170.0)]).unwrap();
        assert!(close(wrap_deg(rad_to_deg(m)), 180.0));
        let m2 = circular_mean_rad(&[0.1, 0.2, 0.3]).unwrap();
        assert!((m2 - 0.2).abs() < 1e-9);
        assert!(circular_mean_rad(&[]).is_none());
        // Opposite angles cancel: mean undefined.
        assert!(circular_mean_rad(&[0.0, PI]).is_none());
    }

    #[test]
    fn circular_variance_bounds() {
        assert!(close(circular_variance_rad(&[0.5, 0.5, 0.5]), 0.0));
        let v = circular_variance_rad(&[0.0, PI]);
        assert!((v - 1.0).abs() < 1e-9);
        assert!(close(circular_variance_rad(&[]), 0.0));
    }

    #[test]
    fn max_torsion_deviation() {
        let a = [deg_to_rad(10.0), deg_to_rad(170.0), deg_to_rad(-60.0)];
        let b = [deg_to_rad(15.0), deg_to_rad(-175.0), deg_to_rad(-60.0)];
        let d = max_torsion_deviation_deg(&a, &b);
        assert!(close(d, 15.0));
    }

    #[test]
    #[should_panic]
    fn max_torsion_deviation_length_mismatch() {
        let _ = max_torsion_deviation_deg(&[0.0], &[0.0, 1.0]);
    }
}
