//! Root-mean-square deviation (RMSD) between atom sets.
//!
//! Two flavours are provided:
//!
//! * [`rmsd_direct`] — RMSD between two coordinate sets *as given*, with no
//!   superposition.  This is what the paper uses for loop decoys: the loop
//!   anchors are fixed in the protein frame, so decoy and native already
//!   share a coordinate system.
//! * [`rmsd_superposed`] / [`kabsch`] — optimal-superposition RMSD via the
//!   Kabsch algorithm, used by the decoy clustering code where two decoys
//!   must be compared independent of a common frame.
//!
//! The Kabsch rotation is computed from the cross-covariance matrix using a
//! cyclic Jacobi eigen-decomposition of the associated symmetric matrix —
//! dependency-free and exact enough (|off-diagonals| < 1e-12) for 3×3
//! problems.

use crate::rotation::{Mat3, Rotation};
use crate::vec3::Vec3;

/// RMSD between two coordinate sets without any superposition.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmsd_direct(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "coordinate sets must have equal length");
    assert!(
        !a.is_empty(),
        "cannot compute RMSD of empty coordinate sets"
    );
    let sum_sq: f64 = a.iter().zip(b.iter()).map(|(p, q)| p.distance_sq(*q)).sum();
    (sum_sq / a.len() as f64).sqrt()
}

/// Result of a Kabsch superposition of a mobile set onto a reference set.
#[derive(Debug, Clone, Copy)]
pub struct Superposition {
    /// Optimal rotation to apply to the centred mobile coordinates.
    pub rotation: Rotation,
    /// Centroid of the reference set.
    pub reference_centroid: Vec3,
    /// Centroid of the mobile set.
    pub mobile_centroid: Vec3,
    /// RMSD after optimal superposition.
    pub rmsd: f64,
}

impl Superposition {
    /// Map a point from the mobile frame onto the reference frame using the
    /// fitted transform.
    pub fn transform(&self, p: Vec3) -> Vec3 {
        self.rotation.apply(p - self.mobile_centroid) + self.reference_centroid
    }
}

/// Jacobi eigen-decomposition of a symmetric 3×3 matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[i]` is the unit
/// eigenvector for `eigenvalues[i]`, sorted in *descending* eigenvalue order.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook formulation
pub fn jacobi_eigen_symmetric3(m: &Mat3) -> ([f64; 3], [Vec3; 3]) {
    let mut a = m.rows;
    // v accumulates the rotations; starts as identity.
    let mut v = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];

    for _sweep in 0..64 {
        // Sum of squared off-diagonal elements.
        let off = a[0][1] * a[0][1] + a[0][2] * a[0][2] + a[1][2] * a[1][2];
        if off < 1e-24 {
            break;
        }
        for p in 0..2 {
            for q in (p + 1)..3 {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                // Compute the Jacobi rotation that annihilates a[p][q].
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply rotation to a (both sides).
                let app = a[p][p];
                let aqq = a[q][q];
                let apq = a[p][q];
                a[p][p] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                a[q][q] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                a[p][q] = 0.0;
                a[q][p] = 0.0;
                for k in 0..3 {
                    if k != p && k != q {
                        let akp = a[k][p];
                        let akq = a[k][q];
                        a[k][p] = c * akp - s * akq;
                        a[p][k] = a[k][p];
                        a[k][q] = s * akp + c * akq;
                        a[q][k] = a[k][q];
                    }
                }
                // Accumulate eigenvectors.
                for k in 0..3 {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec3)> = (0..3)
        .map(|i| (a[i][i], Vec3::new(v[0][i], v[1][i], v[2][i])))
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
    (
        [pairs[0].0, pairs[1].0, pairs[2].0],
        [pairs[0].1, pairs[1].1, pairs[2].1],
    )
}

/// Jacobi eigen-decomposition of a symmetric 4×4 matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with `eigenvectors[i]` the unit
/// eigenvector (as a `[f64; 4]` column) for `eigenvalues[i]`, sorted in
/// descending eigenvalue order.  Used by the quaternion superposition.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook formulation
pub fn jacobi_eigen_symmetric4(m: &[[f64; 4]; 4]) -> ([f64; 4], [[f64; 4]; 4]) {
    let mut a = *m;
    let mut v = [[0.0; 4]; 4];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for _sweep in 0..128 {
        let mut off = 0.0;
        for p in 0..4 {
            for q in (p + 1)..4 {
                off += a[p][q] * a[p][q];
            }
        }
        if off < 1e-26 {
            break;
        }
        for p in 0..3 {
            for q in (p + 1)..4 {
                if a[p][q].abs() < 1e-20 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                let app = a[p][p];
                let aqq = a[q][q];
                let apq = a[p][q];
                a[p][p] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                a[q][q] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                a[p][q] = 0.0;
                a[q][p] = 0.0;
                for k in 0..4 {
                    if k != p && k != q {
                        let akp = a[k][p];
                        let akq = a[k][q];
                        a[k][p] = c * akp - s * akq;
                        a[p][k] = a[k][p];
                        a[k][q] = s * akp + c * akq;
                        a[q][k] = a[k][q];
                    }
                }
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order = [0usize, 1, 2, 3];
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).unwrap());
    let mut vals = [0.0; 4];
    let mut vecs = [[0.0; 4]; 4];
    for (slot, &i) in order.iter().enumerate() {
        vals[slot] = a[i][i];
        for k in 0..4 {
            vecs[slot][k] = v[k][i];
        }
    }
    (vals, vecs)
}

/// Build a rotation matrix from a unit quaternion `(w, x, y, z)`.
fn rotation_from_quaternion(q: [f64; 4]) -> Mat3 {
    let [w, x, y, z] = q;
    Mat3::from_rows(
        [
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - w * z),
            2.0 * (x * z + w * y),
        ],
        [
            2.0 * (x * y + w * z),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - w * x),
        ],
        [
            2.0 * (x * z - w * y),
            2.0 * (y * z + w * x),
            1.0 - 2.0 * (x * x + y * y),
        ],
    )
}

/// Compute the optimal (least-squares) superposition of `mobile` onto
/// `reference` using the quaternion (Horn) formulation of the Kabsch
/// problem, which is robust for planar and near-degenerate point sets.
///
/// # Panics
/// Panics if the sets differ in length or contain fewer than 3 points.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook formulation
pub fn kabsch(reference: &[Vec3], mobile: &[Vec3]) -> Superposition {
    assert_eq!(reference.len(), mobile.len(), "coordinate sets must match");
    assert!(reference.len() >= 3, "Kabsch needs at least 3 points");

    let rc = Vec3::centroid(reference);
    let mc = Vec3::centroid(mobile);

    // Cross-covariance S[i][j] = Σ mobile_i * reference_j over centred coords.
    let mut s = [[0.0f64; 3]; 3];
    for (r, m) in reference.iter().zip(mobile.iter()) {
        let a = *m - mc;
        let b = *r - rc;
        let av = a.to_array();
        let bv = b.to_array();
        for (i, &ai) in av.iter().enumerate() {
            for (j, &bj) in bv.iter().enumerate() {
                s[i][j] += ai * bj;
            }
        }
    }

    // Horn's symmetric 4x4 key matrix; its top eigenvector is the optimal
    // rotation quaternion mapping centred mobile onto centred reference.
    let (sxx, sxy, sxz) = (s[0][0], s[0][1], s[0][2]);
    let (syx, syy, syz) = (s[1][0], s[1][1], s[1][2]);
    let (szx, szy, szz) = (s[2][0], s[2][1], s[2][2]);
    let n = [
        [sxx + syy + szz, syz - szy, szx - sxz, sxy - syx],
        [syz - szy, sxx - syy - szz, sxy + syx, szx + sxz],
        [szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy],
        [sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz],
    ];
    let (_vals, vecs) = jacobi_eigen_symmetric4(&n);
    let q = vecs[0];
    let qn = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt();
    let q = [q[0] / qn, q[1] / qn, q[2] / qn, q[3] / qn];
    let r = rotation_from_quaternion(q);

    // A unit quaternion always yields a proper rotation; the guard protects
    // against a fully degenerate (all-zero) covariance only.
    let rotation = if (r.det() - 1.0).abs() < 1e-6 {
        Rotation::from_matrix_unchecked(r)
    } else {
        Rotation::IDENTITY
    };

    // The fitted rotation maps centred mobile coordinates onto centred
    // reference coordinates; measure the residual RMSD.
    let sum_sq: f64 = reference
        .iter()
        .zip(mobile.iter())
        .map(|(rp, mp)| {
            let mapped = rotation.apply(*mp - mc) + rc;
            mapped.distance_sq(*rp)
        })
        .sum();
    let rmsd = (sum_sq / reference.len() as f64).sqrt();

    Superposition {
        rotation,
        reference_centroid: rc,
        mobile_centroid: mc,
        rmsd,
    }
}

/// RMSD after optimal superposition (Kabsch).
pub fn rmsd_superposed(reference: &[Vec3], mobile: &[Vec3]) -> f64 {
    kabsch(reference, mobile).rmsd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg_to_rad;

    fn sample_points() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 0.2, -0.3),
            Vec3::new(2.1, 1.7, 0.4),
            Vec3::new(3.3, 2.0, 1.5),
            Vec3::new(4.0, 3.2, 1.1),
            Vec3::new(5.2, 3.3, 2.4),
            Vec3::new(6.0, 4.5, 2.0),
        ]
    }

    #[test]
    fn direct_rmsd_identical_sets_is_zero() {
        let pts = sample_points();
        assert!(rmsd_direct(&pts, &pts) < 1e-12);
    }

    #[test]
    fn direct_rmsd_known_value() {
        let a = [Vec3::ZERO, Vec3::X];
        let b = [Vec3::ZERO, Vec3::new(1.0, 1.0, 0.0)];
        // Deviations: 0 and 1 -> rmsd = sqrt(1/2)
        assert!((rmsd_direct(&a, &b) - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn direct_rmsd_translation_is_detected() {
        let pts = sample_points();
        let shifted: Vec<Vec3> = pts.iter().map(|p| *p + Vec3::new(1.0, 0.0, 0.0)).collect();
        assert!((rmsd_direct(&pts, &shifted) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn direct_rmsd_length_mismatch_panics() {
        let _ = rmsd_direct(&[Vec3::ZERO], &[Vec3::ZERO, Vec3::X]);
    }

    #[test]
    #[should_panic]
    fn direct_rmsd_empty_panics() {
        let _ = rmsd_direct(&[], &[]);
    }

    #[test]
    fn superposed_rmsd_invariant_under_rigid_motion() {
        let pts = sample_points();
        let rot = Rotation::about_axis(Vec3::new(0.3, 1.0, -0.2), deg_to_rad(73.0));
        let moved: Vec<Vec3> = pts
            .iter()
            .map(|p| rot.apply(*p) + Vec3::new(5.0, -3.0, 2.0))
            .collect();
        let r = rmsd_superposed(&pts, &moved);
        assert!(r < 1e-7, "rmsd after superposition was {r}");
    }

    #[test]
    fn superposed_rmsd_leq_direct_rmsd() {
        let pts = sample_points();
        let rot = Rotation::about_axis(Vec3::Z, deg_to_rad(30.0));
        let perturbed: Vec<Vec3> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| rot.apply(*p) + Vec3::new(0.05 * i as f64, -0.03, 0.02))
            .collect();
        let sup = rmsd_superposed(&pts, &perturbed);
        let dir = rmsd_direct(&pts, &perturbed);
        assert!(sup <= dir + 1e-9, "superposed {sup} > direct {dir}");
    }

    #[test]
    fn kabsch_transform_maps_mobile_onto_reference() {
        let pts = sample_points();
        let rot = Rotation::about_axis(Vec3::new(1.0, 2.0, 3.0), 1.1);
        let moved: Vec<Vec3> = pts
            .iter()
            .map(|p| rot.apply(*p) + Vec3::new(-2.0, 7.0, 0.5))
            .collect();
        let sup = kabsch(&pts, &moved);
        for (orig, m) in pts.iter().zip(moved.iter()) {
            assert!(sup.transform(*m).max_abs_diff(*orig) < 1e-6);
        }
    }

    #[test]
    fn kabsch_rotation_is_proper() {
        let pts = sample_points();
        let rot = Rotation::about_axis(Vec3::new(-1.0, 0.4, 0.8), 2.7);
        let moved: Vec<Vec3> = pts.iter().map(|p| rot.apply(*p)).collect();
        let sup = kabsch(&pts, &moved);
        assert!(sup.rotation.is_orthonormal(1e-6));
    }

    #[test]
    fn jacobi_eigen_diagonal_matrix() {
        let m = Mat3::from_rows([3.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 2.0]);
        let (vals, vecs) = jacobi_eigen_symmetric3(&m);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
        // Largest eigenvector should be +-x.
        assert!(vecs[0].x.abs() > 0.999);
    }

    #[test]
    fn jacobi_eigen_reconstructs_matrix() {
        let m = Mat3::from_rows([4.0, 1.0, -2.0], [1.0, 3.0, 0.5], [-2.0, 0.5, 5.0]);
        let (vals, vecs) = jacobi_eigen_symmetric3(&m);
        // Reconstruct sum lambda_i v_i v_i^T and compare.
        let mut rec = Mat3::ZERO;
        for i in 0..3 {
            rec = rec.add(&Mat3::outer(vecs[i], vecs[i]).scale(vals[i]));
        }
        assert!(rec.frobenius_distance(&m) < 1e-9);
        // Eigenvectors orthonormal.
        for i in 0..3 {
            assert!((vecs[i].norm() - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(vecs[i].dot(vecs[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kabsch_handles_planar_point_sets() {
        // All points in the z = 0 plane (rank-deficient covariance).
        let a = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ];
        let rot = Rotation::about_axis(Vec3::Z, deg_to_rad(40.0));
        let b: Vec<Vec3> = a
            .iter()
            .map(|p| rot.apply(*p) + Vec3::new(0.3, 0.1, 0.0))
            .collect();
        let r = rmsd_superposed(&a, &b);
        assert!(r < 1e-6, "planar rmsd {r}");
    }
}
