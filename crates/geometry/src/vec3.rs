//! Three-dimensional Cartesian vectors.
//!
//! [`Vec3`] is the workhorse coordinate type of the whole suite: every
//! backbone atom position, every rotation axis and every centroid is a
//! `Vec3`.  The type is a plain `Copy` struct of three `f64` so that large
//! populations of conformations can be stored contiguously and mapped over
//! in data-parallel kernels without indirection.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector / point in Cartesian space (units: Ångström throughout the
/// suite).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Create a new vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Create a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Build a vector from a `[x, y, z]` array.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Vec3 {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }

    /// Return the components as a `[x, y, z]` array.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm (length).
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Return a unit vector pointing in the same direction.
    ///
    /// Returns `None` when the vector is (numerically) zero, because a zero
    /// vector has no direction.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-12 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Return a unit vector pointing in the same direction.
    ///
    /// # Panics
    /// Panics if the vector norm is smaller than `1e-12`.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        self.try_normalize()
            .expect("cannot normalize a (near-)zero vector")
    }

    /// Whether all components are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Angle (radians, in `[0, π]`) between this vector and another.
    ///
    /// Returns `0.0` if either vector is (near-)zero.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom < 1e-12 {
            return 0.0;
        }
        // Clamp to guard against floating-point drift outside [-1, 1].
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Project this vector onto `onto`.  Returns the zero vector when `onto`
    /// is (near-)zero.
    pub fn project_onto(self, onto: Vec3) -> Vec3 {
        let d = onto.norm_sq();
        if d < 1e-24 {
            Vec3::ZERO
        } else {
            onto * (self.dot(onto) / d)
        }
    }

    /// The component of this vector perpendicular to `onto`.
    pub fn reject_from(self, onto: Vec3) -> Vec3 {
        self - self.project_onto(onto)
    }

    /// Centroid (arithmetic mean) of a set of points.
    ///
    /// Returns `Vec3::ZERO` for an empty slice.
    pub fn centroid(points: &[Vec3]) -> Vec3 {
        if points.is_empty() {
            return Vec3::ZERO;
        }
        let sum: Vec3 = points.iter().copied().sum();
        sum / points.len() as f64
    }

    /// Maximum absolute component difference to another vector, useful in
    /// approximate comparisons inside tests.
    pub fn max_abs_diff(self, other: Vec3) -> f64 {
        (self.x - other.x)
            .abs()
            .max((self.y - other.y).abs())
            .max((self.z - other.z).abs())
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
        v *= 2.0;
        assert_eq!(v, Vec3::new(2.0, 4.0, 6.0));
        v /= 2.0;
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_close(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        // Cross product is perpendicular to both operands.
        let u = Vec3::new(1.0, 2.0, 3.0);
        let v = Vec3::new(-4.0, 0.3, 2.0);
        let c = u.cross(v);
        assert_close(c.dot(u), 0.0);
        assert_close(c.dot(v), 0.0);
    }

    #[test]
    fn norms_and_distances() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_close(a.norm(), 5.0);
        assert_close(a.norm_sq(), 25.0);
        assert_close(a.distance(Vec3::ZERO), 5.0);
        assert_close(a.distance_sq(Vec3::ZERO), 25.0);
    }

    #[test]
    fn normalization() {
        let a = Vec3::new(0.0, 0.0, 10.0);
        assert_eq!(a.normalized(), Vec3::Z);
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    #[should_panic]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn angle_between_vectors() {
        assert_close(Vec3::X.angle_to(Vec3::Y), std::f64::consts::FRAC_PI_2);
        assert_close(Vec3::X.angle_to(Vec3::X), 0.0);
        assert_close(Vec3::X.angle_to(-Vec3::X), std::f64::consts::PI);
        // Zero vector yields zero angle by convention.
        assert_close(Vec3::ZERO.angle_to(Vec3::X), 0.0);
    }

    #[test]
    fn projection_and_rejection() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let p = v.project_onto(Vec3::X);
        assert_eq!(p, Vec3::new(3.0, 0.0, 0.0));
        let r = v.reject_from(Vec3::X);
        assert_eq!(r, Vec3::new(0.0, 4.0, 0.0));
        // Projection onto zero vector is zero.
        assert_eq!(v.project_onto(Vec3::ZERO), Vec3::ZERO);
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        ];
        assert_eq!(Vec3::centroid(&pts), Vec3::new(0.5, 0.5, 0.5));
        assert_eq!(Vec3::centroid(&[]), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(3.0, 6.0, 9.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn array_conversions_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.25);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
        assert_eq!(v[0], 1.5);
        assert_eq!(v[1], -2.5);
        assert_eq!(v[2], 3.25);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn min_max_and_finiteness() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
        assert!(a.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn sum_iterator() {
        let pts = vec![Vec3::X, Vec3::Y, Vec3::Z];
        let s: Vec3 = pts.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 1.0, 1.0));
    }
}
