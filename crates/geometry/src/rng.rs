//! Reproducible random-number streams.
//!
//! The paper assigns each conformation to one GPU thread and each thread
//! consumes its own random stream; the CPU and GPU versions therefore use
//! different sequences but must be *individually* reproducible.  We mirror
//! that with ChaCha8 streams derived from a master seed and a stream index:
//! stream `i` of seed `s` is always the same sequence, independent of how
//! many other streams exist or which worker thread runs it.  This is what
//! makes the `ScalarExecutor` and `ParallelExecutor` produce bit-identical
//! populations for the same seed (verified by property tests in `lms-core`).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Factory for per-conformation random streams.
///
/// The factory expands its master seed into a 256-bit ChaCha key **once**,
/// at construction.  Minting the stream for a `(stream, epoch)` pair then
/// costs only packing the pair into ChaCha's 64-bit nonce — the cipher's
/// own stream selector — instead of running a fresh key derivation per
/// member per iteration, which mirrors what a GPU implementation does with
/// one counter-based generator per thread.  Pairs outside the 32-bit
/// packing range (never reached by the sampler, whose stream index is a
/// population member and whose epoch an iteration) fall back to deriving a
/// dedicated key, so the full `u64 × u64` domain stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRngFactory {
    master_seed: u64,
    key: [u32; 8],
}

impl StreamRngFactory {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        StreamRngFactory {
            master_seed,
            key: expand_key(master_seed),
        }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Deterministically derive the RNG for stream `stream` at epoch
    /// `epoch`.  Different `(stream, epoch)` pairs give statistically
    /// independent sequences; the same pair always gives the same sequence.
    pub fn stream(&self, stream: u64, epoch: u64) -> ChaCha8Rng {
        if stream <= u32::MAX as u64 && epoch <= u32::MAX as u64 {
            // Hot path: the pair addresses a nonce of the factory's one
            // pre-expanded key.  Distinct pairs map to distinct nonces,
            // hence disjoint ChaCha keystreams — no re-keying, no mixing
            // rounds per stream.
            ChaCha8Rng::from_key_and_nonce(self.key, stream | (epoch << 32))
        } else {
            // Cold fallback for out-of-range pairs: derive a dedicated key
            // from (master_seed, stream, epoch) with SplitMix64 expansion.
            // The nonce u64::MAX keeps this family disjoint from any hot-
            // path nonce even in the astronomically unlikely event the
            // derived key collides with the factory key.
            let state = self
                .master_seed
                .wrapping_add(stream.wrapping_mul(0xA24BAED4963EE407))
                .wrapping_add(epoch.wrapping_mul(0x9FB21C651E98DF25));
            ChaCha8Rng::from_key_and_nonce(expand_key(state), u64::MAX)
        }
    }

    /// Derive a new factory for an independent phase of the computation
    /// (e.g. population initialization vs. sampling iterations).
    pub fn derive(&self, label: u64) -> StreamRngFactory {
        StreamRngFactory::new(splitmix64(
            self.master_seed
                .wrapping_add(label.wrapping_mul(0x9E3779B97F4A7C15)),
        ))
    }
}

/// Expand a 64-bit seed into a 256-bit ChaCha key with SplitMix64.
fn expand_key(seed: u64) -> [u32; 8] {
    let mut state = seed;
    let mut key = [0u32; 8];
    for pair in key.chunks_exact_mut(2) {
        state = splitmix64(state);
        pair[0] = state as u32;
        pair[1] = (state >> 32) as u32;
    }
    key
}

/// One SplitMix64 scrambling step, used to spread seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sample a torsion angle uniformly in `(-π, π]` (radians).
pub fn random_torsion<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    use std::f64::consts::PI;
    // gen::<f64>() is in [0, 1); map to (-pi, pi].
    PI - rng.gen::<f64>() * 2.0 * PI
}

/// Sample from a wrapped normal distribution on the circle: a normal
/// perturbation of `mean` with standard deviation `sigma` (radians), wrapped
/// to `(-π, π]`.
pub fn wrapped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    // Box-Muller transform; avoids a distribution dependency.
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    crate::angles::wrap_rad(mean + sigma * z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn same_stream_same_sequence() {
        let f = StreamRngFactory::new(42);
        let a: Vec<f64> = {
            let mut r = f.stream(7, 3);
            (0..32).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = f.stream(7, 3);
            (0..32).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let f = StreamRngFactory::new(42);
        let a: Vec<u64> = {
            let mut r = f.stream(0, 0);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(1, 0);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = f.stream(0, 1);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn out_of_range_pairs_use_the_fallback_and_stay_deterministic() {
        let f = StreamRngFactory::new(42);
        let big = u32::MAX as u64 + 7;
        let draw = |stream: u64, epoch: u64| -> Vec<u64> {
            let mut r = f.stream(stream, epoch);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(draw(big, 3), draw(big, 3));
        // The fallback family is distinct from nearby hot-path streams and
        // from other fallback pairs.
        assert_ne!(draw(big, 3), draw(7, 3));
        assert_ne!(draw(big, 3), draw(big, u32::MAX as u64 + 9));
    }

    #[test]
    fn derived_factories_differ_from_parent() {
        let f = StreamRngFactory::new(1234);
        let g = f.derive(1);
        let h = f.derive(2);
        assert_ne!(f.master_seed(), g.master_seed());
        assert_ne!(g.master_seed(), h.master_seed());
        // Deterministic derivation.
        assert_eq!(f.derive(1).master_seed(), g.master_seed());
    }

    #[test]
    fn random_torsion_in_range() {
        let f = StreamRngFactory::new(7);
        let mut r = f.stream(0, 0);
        for _ in 0..10_000 {
            let t = random_torsion(&mut r);
            assert!(t > -PI - 1e-12 && t <= PI + 1e-12);
        }
    }

    #[test]
    fn random_torsion_covers_both_halves() {
        let f = StreamRngFactory::new(9);
        let mut r = f.stream(0, 0);
        let samples: Vec<f64> = (0..2000).map(|_| random_torsion(&mut r)).collect();
        let pos = samples.iter().filter(|&&t| t > 0.0).count();
        assert!(
            pos > 600 && pos < 1400,
            "suspiciously skewed: {pos}/2000 positive"
        );
    }

    #[test]
    fn wrapped_normal_stays_near_mean_for_small_sigma() {
        let f = StreamRngFactory::new(11);
        let mut r = f.stream(3, 0);
        let mean = 2.0;
        for _ in 0..1000 {
            let v = wrapped_normal(&mut r, mean, 0.05);
            assert!((v - mean).abs() < 0.5, "sample {v} too far from mean");
        }
    }

    #[test]
    fn wrapped_normal_wraps_into_range() {
        let f = StreamRngFactory::new(13);
        let mut r = f.stream(0, 0);
        for _ in 0..5000 {
            let v = wrapped_normal(&mut r, PI - 0.01, 1.0);
            assert!(v > -PI - 1e-9 && v <= PI + 1e-9);
        }
    }
}
