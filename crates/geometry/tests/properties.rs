//! Property-based tests for the geometry substrate.

use lms_geometry::{
    angular_distance_deg, deg_to_rad, dihedral_angle, kabsch, place_atom, rmsd_direct,
    rmsd_superposed, wrap_deg, wrap_rad, InternalCoords, Rotation, Vec3,
};
use proptest::prelude::*;
use std::f64::consts::PI;

fn finite_coord() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (finite_coord(), finite_coord(), finite_coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_angle() -> impl Strategy<Value = f64> {
    (-10.0 * PI..10.0 * PI).prop_map(|a| a)
}

fn arb_points(n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(arb_vec3(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wrap_rad_is_idempotent(a in arb_angle()) {
        let w = wrap_rad(a);
        prop_assert!((wrap_rad(w) - w).abs() < 1e-12);
        prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
    }

    #[test]
    fn wrap_deg_preserves_direction(a in -3600.0..3600.0f64) {
        let w = wrap_deg(a);
        // sin/cos of wrapped and unwrapped angle must agree.
        prop_assert!((deg_to_rad(a).sin() - deg_to_rad(w).sin()).abs() < 1e-9);
        prop_assert!((deg_to_rad(a).cos() - deg_to_rad(w).cos()).abs() < 1e-9);
    }

    #[test]
    fn angular_distance_symmetric_and_bounded(a in -3600.0..3600.0f64, b in -3600.0..3600.0f64) {
        let d1 = angular_distance_deg(a, b);
        let d2 = angular_distance_deg(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=180.0 + 1e-9).contains(&d1));
    }

    #[test]
    fn cross_product_is_perpendicular(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6 * (1.0 + a.norm() * b.norm() * c.norm()));
        prop_assert!(c.dot(b).abs() < 1e-6 * (1.0 + a.norm() * b.norm() * c.norm()));
    }

    #[test]
    fn rotation_preserves_norm(axis in arb_vec3(), angle in arb_angle(), p in arb_vec3()) {
        let r = Rotation::about_axis(axis, angle);
        prop_assert!((r.apply(p).norm() - p.norm()).abs() < 1e-8 * (1.0 + p.norm()));
    }

    #[test]
    fn rotation_inverse_roundtrip(axis in arb_vec3(), angle in arb_angle(), p in arb_vec3()) {
        let r = Rotation::about_axis(axis, angle);
        let back = r.inverse().apply(r.apply(p));
        prop_assert!(back.max_abs_diff(p) < 1e-7 * (1.0 + p.norm()));
    }

    #[test]
    fn rotations_are_orthonormal(axis in arb_vec3(), angle in arb_angle()) {
        let r = Rotation::about_axis(axis, angle);
        prop_assert!(r.is_orthonormal(1e-8));
    }

    #[test]
    fn place_atom_respects_internal_coords(
        a in arb_vec3(),
        dir in arb_vec3(),
        dir2 in arb_vec3(),
        len in 0.8..3.0f64,
        ang in 0.2..3.0f64,
        dih in -PI..PI,
    ) {
        // Build a non-degenerate reference chain from the random inputs.
        let b = a + dir.try_normalize().unwrap_or(Vec3::X) * 1.5;
        let perp = dir2.reject_from(b - a);
        prop_assume!(perp.norm() > 1e-3);
        let c = b + (perp.normalized() + (b - a).normalized() * 0.3).normalized() * 1.4;

        let d = place_atom(a, b, c, len, ang, dih);
        prop_assert!(d.is_finite());
        prop_assert!((c.distance(d) - len).abs() < 1e-7);
        let ic = InternalCoords::measure(a, b, c, d);
        prop_assert!((ic.bond_angle - ang).abs() < 1e-6);
        let ddiff = wrap_rad(ic.dihedral - dih).abs();
        prop_assert!(ddiff < 1e-6, "dihedral mismatch: {} vs {}", ic.dihedral, dih);
    }

    #[test]
    fn dihedral_is_antisymmetric_under_reversal(
        a in arb_vec3(), b in arb_vec3(), c in arb_vec3(), d in arb_vec3()
    ) {
        prop_assume!((b - a).norm() > 0.1 && (c - b).norm() > 0.1 && (d - c).norm() > 0.1);
        prop_assume!((b - a).cross(c - b).norm() > 0.1);
        prop_assume!((c - b).cross(d - c).norm() > 0.1);
        let fwd = dihedral_angle(a, b, c, d);
        let rev = dihedral_angle(d, c, b, a);
        // Reversing the chain preserves the torsion value.
        prop_assert!(wrap_rad(fwd - rev).abs() < 1e-7, "fwd={fwd} rev={rev}");
    }

    #[test]
    fn rmsd_superposed_invariant_under_rigid_motion(
        pts in arb_points(8),
        axis in arb_vec3(),
        angle in arb_angle(),
        shift in arb_vec3(),
    ) {
        // Require a reasonably non-degenerate point cloud.
        let centroid = Vec3::centroid(&pts);
        let spread: f64 = pts.iter().map(|p| p.distance_sq(centroid)).sum::<f64>();
        prop_assume!(spread > 1.0);
        let r = Rotation::about_axis(axis, angle);
        let moved: Vec<Vec3> = pts.iter().map(|p| r.apply(*p) + shift).collect();
        let rmsd = rmsd_superposed(&pts, &moved);
        prop_assert!(rmsd < 1e-5, "rmsd {rmsd} not ~0 after rigid motion");
    }

    #[test]
    fn superposed_never_exceeds_direct(pts in arb_points(6), noise in arb_points(6)) {
        let perturbed: Vec<Vec3> = pts.iter().zip(noise.iter())
            .map(|(p, n)| *p + *n * 0.01)
            .collect();
        let sup = rmsd_superposed(&pts, &perturbed);
        let dir = rmsd_direct(&pts, &perturbed);
        prop_assert!(sup <= dir + 1e-6);
    }

    #[test]
    fn kabsch_rotation_always_proper(pts in arb_points(5), other in arb_points(5)) {
        let sup = kabsch(&pts, &other);
        prop_assert!(sup.rotation.is_orthonormal(1e-5));
    }
}
