//! Property tests for the prefix-reuse invariant of
//! [`LoopBuilder::rebuild_from`]: a suffix-only rebuild after a torsion
//! edit must be **bit-identical** (`LoopStructure: PartialEq` over raw
//! `f64`s, no tolerance) to a full [`LoopBuilder::build_into`] of the
//! edited vector — for any loop length, any sequence, any torsion vector,
//! an edit at *any* flat angle index, and under CCD-style chains of
//! ascending single-angle edits reusing one structure buffer.

use lms_geometry::{deg_to_rad, Vec3};
use lms_protein::{AminoAcid, AnchorFrame, LoopBuilder, LoopFrame, LoopStructure, Torsions};
use proptest::prelude::*;
use std::f64::consts::PI;

/// Maximum loop length exercised; strategies draw fixed-size angle vectors
/// and truncate to the sampled length.
const MAX_RES: usize = 13;

fn frame_from(params: &[f64]) -> LoopFrame {
    // A mildly perturbed but well-conditioned anchor frame.
    let n = Vec3::new(params[0] * 0.5, params[1] * 0.5, params[2] * 0.5);
    let ca = n + Vec3::new(1.458, params[3] * 0.1, params[4] * 0.1);
    let c = ca + Vec3::new(0.55, 1.4, params[5] * 0.1);
    LoopFrame {
        n_anchor: AnchorFrame::new(n, ca, c),
        n_anchor_psi: deg_to_rad(120.0 + params[0] * 40.0),
        c_anchor: AnchorFrame::new(
            Vec3::new(8.0, 3.0, 2.0),
            Vec3::new(9.2, 3.5, 2.5),
            Vec3::new(10.4, 2.8, 3.2),
        ),
        c_anchor_phi: deg_to_rad(-65.0 + params[1] * 20.0),
    }
}

fn sequence_of(len: usize, picks: &[usize]) -> Vec<AminoAcid> {
    (0..len)
        .map(|i| AminoAcid::from_index(picks[i] % 20))
        .collect()
}

fn torsions_of(len: usize, angles: &[f64]) -> Torsions {
    Torsions::from_flat(angles[..2 * len].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rebuild_from_is_bit_identical_for_random_single_edits(
        len in 1usize..(MAX_RES + 1),
        picks in prop::collection::vec(0usize..20, MAX_RES),
        angles in prop::collection::vec(-PI..PI, 2 * MAX_RES),
        edit_frac in 0.0..1.0f64,
        new_angle in -PI..PI,
        frame_params in prop::collection::vec(-1.0..1.0f64, 6),
    ) {
        let builder = LoopBuilder::default();
        let frame = frame_from(&frame_params);
        let seq = sequence_of(len, &picks);
        let t0 = torsions_of(len, &angles);
        let k = ((edit_frac * t0.n_angles() as f64) as usize).min(t0.n_angles() - 1);

        let mut t1 = t0.clone();
        t1.set_angle(k, new_angle);

        // Incremental: reuse the t0 structure, rebuild the suffix from k.
        let mut incremental = builder.build(&frame, &seq, &t0);
        builder.rebuild_from(&frame, &seq, &t1, k, &mut incremental);
        // Reference: full build of the edited vector.
        let full = builder.build(&frame, &seq, &t1);
        prop_assert_eq!(incremental, full);
    }

    #[test]
    fn rebuild_from_is_exact_at_every_angle_index(
        len in 1usize..(MAX_RES + 1),
        picks in prop::collection::vec(0usize..20, MAX_RES),
        angles in prop::collection::vec(-PI..PI, 2 * MAX_RES),
        deltas in prop::collection::vec(-PI..PI, 2 * MAX_RES),
    ) {
        // Sweep every flat index of this loop, editing each in turn.
        let builder = LoopBuilder::default();
        let frame = frame_from(&[0.2, -0.4, 0.6, 0.1, -0.3, 0.5]);
        let seq = sequence_of(len, &picks);
        let t0 = torsions_of(len, &angles);
        #[allow(clippy::needless_range_loop)] // k indexes deltas AND names the edited angle
        for k in 0..t0.n_angles() {
            let mut t1 = t0.clone();
            t1.rotate_angle(k, deltas[k]);
            let mut incremental = builder.build(&frame, &seq, &t0);
            builder.rebuild_from(&frame, &seq, &t1, k, &mut incremental);
            let full = builder.build(&frame, &seq, &t1);
            prop_assert!(incremental == full, "diverged at angle index {k}");
        }
    }

    #[test]
    fn ccd_style_edit_chains_never_drift(
        len in 2usize..(MAX_RES + 1),
        picks in prop::collection::vec(0usize..20, MAX_RES),
        angles in prop::collection::vec(-PI..PI, 2 * MAX_RES),
        deltas in prop::collection::vec(-0.5..0.5f64, 6 * MAX_RES),
    ) {
        // Three ascending sweeps of single-angle rotations, each applied
        // with a suffix-only rebuild into ONE reused buffer — exactly the
        // access pattern of `CcdCloser::close_with_scratch`.  The buffer
        // must track the from-scratch build bit for bit throughout.
        let builder = LoopBuilder::default();
        let frame = frame_from(&[-0.6, 0.3, -0.1, 0.8, 0.2, -0.7]);
        let seq = sequence_of(len, &picks);
        let mut t = torsions_of(len, &angles);
        let mut s = builder.build(&frame, &seq, &t);
        let mut d = 0usize;
        for _sweep in 0..3 {
            for k in 0..t.n_angles() {
                t.rotate_angle(k, deltas[d]);
                d += 1;
                builder.rebuild_from(&frame, &seq, &t, k, &mut s);
            }
        }
        let full = builder.build(&frame, &seq, &t);
        prop_assert_eq!(&s, &full);
        // And the reused buffer still closes the measurement round-trip.
        let measured = builder.measure_torsions(&frame, &s);
        for k in 0..t.n_angles() {
            prop_assert!((measured.angle(k) - t.angle(k)).abs() < 1e-8);
        }
    }

    #[test]
    fn noop_rebuild_preserves_the_structure(
        len in 1usize..(MAX_RES + 1),
        picks in prop::collection::vec(0usize..20, MAX_RES),
        angles in prop::collection::vec(-PI..PI, 2 * MAX_RES),
    ) {
        // Rebuilding any suffix without changing the torsions must leave
        // the structure bit-identical (the recomputed suffix reproduces the
        // stored one).
        let builder = LoopBuilder::default();
        let frame = frame_from(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let seq = sequence_of(len, &picks);
        let t = torsions_of(len, &angles);
        let reference = builder.build(&frame, &seq, &t);
        let mut s = reference.clone();
        for k in 0..=t.n_angles() {
            builder.rebuild_from(&frame, &seq, &t, k, &mut s);
            prop_assert!(s == reference, "noop rebuild from {k} drifted");
        }
    }
}

#[test]
fn rebuild_from_reuses_the_buffer_without_reallocating() {
    // The suffix rebuild writes via `out.residues[i] = …`, never push, so
    // the buffer pointer must stay put across arbitrarily many rebuilds.
    let builder = LoopBuilder::default();
    let frame = frame_from(&[0.3, 0.3, 0.3, 0.3, 0.3, 0.3]);
    let seq = sequence_of(10, &[3; 13]);
    let mut t = Torsions::from_pairs(&[(deg_to_rad(-63.0), deg_to_rad(-43.0)); 10]);
    let mut s: LoopStructure = builder.build(&frame, &seq, &t);
    let ptr_before = s.residues.as_ptr();
    for k in 0..t.n_angles() {
        t.rotate_angle(k, 0.1);
        builder.rebuild_from(&frame, &seq, &t, k, &mut s);
    }
    assert_eq!(ptr_before, s.residues.as_ptr());
}
