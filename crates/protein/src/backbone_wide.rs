//! Lane-major (member-transposed) NeRF spine math: the wide counterpart of
//! [`LoopBuilder::rebuild_spine_from`]'s placement chain.
//!
//! The lockstep-CCD batch driver marches up to four population members —
//! all rebuilding from the *same* changed torsion, and therefore from the
//! same first residue over the same suffix — through the NeRF recurrence
//! with each member's arithmetic confined to its own `f64x4` lane.  Every
//! operation here mirrors the exact scalar expression of
//! [`place_atom`](lms_geometry::place_atom) / `LoopBuilder::place_spine`:
//! the same left-associated dot products, the same cross-product component
//! expressions, the same `norm = dot(self).sqrt()` normalization, the same
//! `((c + bc·dx) + m·dy) + n·dz` association — using element-wise IEEE
//! lane operations (no FMA, no reassociation).  A wide rebuild is therefore
//! **bit-identical to the scalar rebuild by construction** whenever every
//! lane stays on the scalar fast path.
//!
//! # Degeneracy guard
//!
//! The scalar `place_atom` has two rare branches (a near-zero `bc` bond
//! direction and a collinear-context normal fallback).  Branching per lane
//! would break the lockstep shape, so the wide kernel instead applies a
//! *whole-group* guard: if any lane's normalization fails the scalar
//! `norm > 1e-12` test, the group returns `None` and the driver re-runs
//! each member through the scalar `rebuild_spine_from` (which restarts from
//! the untouched prefix, overwriting any partially scattered suffix).
//! Either way every member gets exactly the scalar result.
//!
//! # Constant pre-computation
//!
//! The three bond angles of a spine step and the ω torsion are covalent
//! constants, and the C-anchor φ is fixed per closure frame; their
//! `sin_cos` values (and the `-L·cosθ` / `L·sinθ` products `place_atom`
//! derives from them) are identical on every call, so [`SpineKernel`]
//! computes them once per batch with the same `f64::sin_cos` the scalar
//! path calls.  Only ψ and φ vary per lane; their `sin_cos` stays a
//! per-lane scalar libm call (packed into lanes afterwards), keeping
//! bit-identity with the scalar path's transcendentals.

use crate::backbone::{BackboneGeometry, LoopFrame};
use lms_geometry::Vec3;
use wide::f64x4;

/// Wide 3-vector: one component register per coordinate, four lanes
/// (population members) each.  Methods mirror the corresponding [`Vec3`]
/// operation's exact component expressions and association.
#[derive(Clone, Copy, Debug)]
pub struct WideVec3 {
    /// X components, one lane per member.
    pub x: f64x4,
    /// Y components, one lane per member.
    pub y: f64x4,
    /// Z components, one lane per member.
    pub z: f64x4,
}

impl WideVec3 {
    /// Broadcast one vector to all lanes.
    #[inline(always)]
    pub fn splat(v: Vec3) -> WideVec3 {
        WideVec3 {
            x: f64x4::splat(v.x),
            y: f64x4::splat(v.y),
            z: f64x4::splat(v.z),
        }
    }

    /// Transpose four per-member vectors into SoA lane registers.
    #[inline(always)]
    pub fn from_lanes(vs: [Vec3; 4]) -> WideVec3 {
        WideVec3 {
            x: f64x4::from_array([vs[0].x, vs[1].x, vs[2].x, vs[3].x]),
            y: f64x4::from_array([vs[0].y, vs[1].y, vs[2].y, vs[3].y]),
            z: f64x4::from_array([vs[0].z, vs[1].z, vs[2].z, vs[3].z]),
        }
    }

    /// Extract one member's vector.
    #[inline(always)]
    pub fn lane(&self, l: usize) -> Vec3 {
        Vec3::new(
            self.x.as_array_ref()[l],
            self.y.as_array_ref()[l],
            self.z.as_array_ref()[l],
        )
    }

    /// Component-wise `self + o` (as `Vec3::add`).
    #[inline(always)]
    fn add(self, o: WideVec3) -> WideVec3 {
        WideVec3 {
            x: self.x + o.x,
            y: self.y + o.y,
            z: self.z + o.z,
        }
    }

    /// Component-wise `self - o` (as `Vec3::sub`).
    #[inline(always)]
    fn sub(self, o: WideVec3) -> WideVec3 {
        WideVec3 {
            x: self.x - o.x,
            y: self.y - o.y,
            z: self.z - o.z,
        }
    }

    /// Per-lane scale (as `Vec3 * f64`, component-wise).
    #[inline(always)]
    fn scale(self, s: f64x4) -> WideVec3 {
        WideVec3 {
            x: self.x * s,
            y: self.y * s,
            z: self.z * s,
        }
    }

    /// Same left-to-right association as `Vec3::dot`.
    #[inline(always)]
    fn dot(self, o: WideVec3) -> f64x4 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Same component expressions as `Vec3::cross`.
    #[inline(always)]
    fn cross(self, o: WideVec3) -> WideVec3 {
        WideVec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// The wide `Vec3::try_normalize`: `norm = dot(self).sqrt()`, then the
    /// scalar `norm > 1e-12` test applied as a whole-group guard — `None`
    /// unless *every* lane passes — then the component-wise division
    /// `self / norm`.  Per-lane bits match the scalar path exactly on
    /// `Some`.
    #[inline(always)]
    fn try_normalize(self) -> Option<WideVec3> {
        let n = self.dot(self).sqrt();
        if !n.all_gt(1e-12) {
            return None;
        }
        Some(WideVec3 {
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        })
    }
}

/// The constant factors of one NeRF placement step: `place_atom` computes
/// `d_local = (-L·cosθ, (L·sinθ)·cosφ, (L·sinθ)·sinφ)` with the bond angle
/// θ fixed by covalent geometry, so `-L·cosθ` and `L·sinθ` are the same
/// bits on every call and can be hoisted out of the recurrence.
#[derive(Clone, Copy, Debug)]
struct StepConsts {
    /// `-bond_length * cos(bond_angle)`, the local-frame x displacement.
    neg_l_cos_t: f64,
    /// `bond_length * sin(bond_angle)`, the factor of both the y and z
    /// local displacements (scalar `place_atom` multiplies it by the
    /// dihedral's cos/sin, left-associated — exactly what hoisting gives).
    l_sin_t: f64,
}

impl StepConsts {
    fn new(bond_length: f64, bond_angle: f64) -> StepConsts {
        let (sin_t, cos_t) = bond_angle.sin_cos();
        StepConsts {
            neg_l_cos_t: -bond_length * cos_t,
            l_sin_t: bond_length * sin_t,
        }
    }
}

/// Pack per-lane `f64::sin_cos` results into `(sin, cos)` lane registers.
/// The transcendentals stay scalar libm calls — the same calls the scalar
/// rebuild makes — so the packed values are bit-identical to the scalar
/// path's.
#[inline(always)]
pub fn sin_cos_lanes(angles: [f64; 4]) -> (f64x4, f64x4) {
    let sc = angles.map(f64::sin_cos);
    (
        f64x4::from_array([sc[0].0, sc[1].0, sc[2].0, sc[3].0]),
        f64x4::from_array([sc[0].1, sc[1].1, sc[2].1, sc[3].1]),
    )
}

/// Precomputed constants of a lane-major spine rebuild over one closure
/// frame: the three per-step bond constants, the ω `sin_cos`, and the
/// C-anchor φ `sin_cos`.  Build once per `close_batch` call; reuse for
/// every rebuild group of the block.
#[derive(Clone, Copy, Debug)]
pub struct SpineKernel {
    /// N_i step: bond C'→N, angle Cα-C'-N, dihedral = previous ψ.
    n_step: StepConsts,
    /// Cα_i step: bond N→Cα, angle C'-N-Cα, dihedral = ω (constant).
    ca_step: StepConsts,
    /// C'_i step: bond Cα→C', angle N-Cα-C', dihedral = φ_i.
    c_step: StepConsts,
    omega_sin: f64,
    omega_cos: f64,
    c_anchor_phi_sin: f64,
    c_anchor_phi_cos: f64,
}

impl SpineKernel {
    /// Precompute the placement constants for one geometry and closure
    /// frame.  Uses the same `f64::sin_cos` the scalar placements call, so
    /// the hoisted values are the bits the scalar path recomputes inline.
    pub fn new(geometry: &BackboneGeometry, frame: &LoopFrame) -> SpineKernel {
        let (omega_sin, omega_cos) = geometry.omega.sin_cos();
        let (c_anchor_phi_sin, c_anchor_phi_cos) = frame.c_anchor_phi.sin_cos();
        SpineKernel {
            n_step: StepConsts::new(geometry.len_c_n, geometry.ang_ca_c_n),
            ca_step: StepConsts::new(geometry.len_n_ca, geometry.ang_c_n_ca),
            c_step: StepConsts::new(geometry.len_ca_c, geometry.ang_n_ca_c),
            omega_sin,
            omega_cos,
            c_anchor_phi_sin,
            c_anchor_phi_cos,
        }
    }

    /// The wide `place_atom`: same operation sequence as the scalar
    /// (`bc` normalize → context normal → in-plane axis → local
    /// displacement → left-associated accumulation), with the bond-angle
    /// products splatted from the precomputed constants and the dihedral
    /// `sin`/`cos` supplied per lane.  `None` if any lane would take a
    /// scalar fallback branch.
    #[inline(always)]
    fn place_atom(
        a: WideVec3,
        b: WideVec3,
        c: WideVec3,
        step: StepConsts,
        sin_p: f64x4,
        cos_p: f64x4,
    ) -> Option<WideVec3> {
        let bc = c.sub(b).try_normalize()?;
        let ab = b.sub(a);
        let n = ab.cross(bc).try_normalize()?;
        let m = n.cross(bc);
        let d_x = f64x4::splat(step.neg_l_cos_t);
        let d_y = f64x4::splat(step.l_sin_t) * cos_p;
        let d_z = f64x4::splat(step.l_sin_t) * sin_p;
        Some(c.add(bc.scale(d_x)).add(m.scale(d_y)).add(n.scale(d_z)))
    }

    /// Place one residue's N, Cα and C' for up to four members at once —
    /// the lane-major `LoopBuilder::place_spine`.  `psi_*` are the previous
    /// residues' ψ `sin_cos` lanes, `phi_*` this residue's φ lanes.
    /// Returns `None` (rebuild the group through the scalar path) if any
    /// lane hits a degeneracy branch.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // the NeRF lane context is 3 wide points + 2 wide angles
    pub fn place_spine(
        &self,
        prev_n: WideVec3,
        prev_ca: WideVec3,
        prev_c: WideVec3,
        psi_sin: f64x4,
        psi_cos: f64x4,
        phi_sin: f64x4,
        phi_cos: f64x4,
    ) -> Option<(WideVec3, WideVec3, WideVec3)> {
        let n = Self::place_atom(prev_n, prev_ca, prev_c, self.n_step, psi_sin, psi_cos)?;
        let ca = Self::place_atom(
            prev_ca,
            prev_c,
            n,
            self.ca_step,
            f64x4::splat(self.omega_sin),
            f64x4::splat(self.omega_cos),
        )?;
        let c = Self::place_atom(prev_c, n, ca, self.c_step, phi_sin, phi_cos)?;
        Some((n, ca, c))
    }

    /// Place the moving C-anchor frames — the lane-major
    /// `LoopBuilder::place_end_frame`, which is the spine step with the
    /// fixed C-anchor φ as the final dihedral.
    #[inline(always)]
    pub fn place_end_frame(
        &self,
        prev_n: WideVec3,
        prev_ca: WideVec3,
        prev_c: WideVec3,
        psi_sin: f64x4,
        psi_cos: f64x4,
    ) -> Option<(WideVec3, WideVec3, WideVec3)> {
        self.place_spine(
            prev_n,
            prev_ca,
            prev_c,
            psi_sin,
            psi_cos,
            f64x4::splat(self.c_anchor_phi_sin),
            f64x4::splat(self.c_anchor_phi_cos),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{LoopBuilder, LoopStructure};
    use crate::benchmark::BenchmarkLibrary;
    use lms_geometry::deg_to_rad;

    /// Four members rebuilt lane-major from the same changed torsion match
    /// the scalar `rebuild_spine_from` bit for bit on every spine atom and
    /// the end frame.
    #[test]
    fn lane_major_spine_matches_scalar_rebuild() {
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let kernel = SpineKernel::new(builder.geometry(), &target.frame);
        let n_res = target.n_residues();

        // Four members: the native torsions nudged differently per lane.
        let torsions: Vec<_> = (0..4)
            .map(|l| {
                let mut t = target.native_torsions.clone();
                for k in 0..t.n_angles() {
                    t.rotate_angle(k, deg_to_rad((l as f64 + 1.0) * 3.0 + k as f64));
                }
                t
            })
            .collect();

        for changed_angle in [0usize, 1, 5, 2 * n_res - 1] {
            // Scalar reference structures.
            let mut scalar: Vec<LoopStructure> = torsions
                .iter()
                .map(|t| {
                    let mut s = target.build(&builder, t);
                    builder.rebuild_spine_from(
                        &target.frame,
                        &target.sequence,
                        t,
                        changed_angle,
                        &mut s,
                    );
                    s
                })
                .collect();

            // Lane-major rebuild of the same suffix.
            let (first, _) = crate::Torsions::describe_angle(changed_angle);
            let mut wide: Vec<LoopStructure> =
                torsions.iter().map(|t| target.build(&builder, t)).collect();
            let (mut prev_n, mut prev_ca, mut prev_c, mut prev_psi) = if first == 0 {
                (
                    WideVec3::splat(target.frame.n_anchor.n),
                    WideVec3::splat(target.frame.n_anchor.ca),
                    WideVec3::splat(target.frame.n_anchor.c),
                    [target.frame.n_anchor_psi; 4],
                )
            } else {
                (
                    WideVec3::from_lanes(core::array::from_fn(|l| wide[l].residues[first - 1].n)),
                    WideVec3::from_lanes(core::array::from_fn(|l| wide[l].residues[first - 1].ca)),
                    WideVec3::from_lanes(core::array::from_fn(|l| wide[l].residues[first - 1].c)),
                    core::array::from_fn(|l| torsions[l].psi(first - 1)),
                )
            };
            for i in first..n_res {
                let (psi_sin, psi_cos) = sin_cos_lanes(prev_psi);
                let (phi_sin, phi_cos) =
                    sin_cos_lanes(core::array::from_fn(|l| torsions[l].phi(i)));
                let (n, ca, c) = kernel
                    .place_spine(prev_n, prev_ca, prev_c, psi_sin, psi_cos, phi_sin, phi_cos)
                    .expect("benchmark geometry is non-degenerate");
                for (l, w) in wide.iter_mut().enumerate() {
                    w.residues[i].n = n.lane(l);
                    w.residues[i].ca = ca.lane(l);
                    w.residues[i].c = c.lane(l);
                }
                prev_n = n;
                prev_ca = ca;
                prev_c = c;
                prev_psi = core::array::from_fn(|l| torsions[l].psi(i));
            }
            let (psi_sin, psi_cos) = sin_cos_lanes(prev_psi);
            let (n, ca, c) = kernel
                .place_end_frame(prev_n, prev_ca, prev_c, psi_sin, psi_cos)
                .expect("non-degenerate");
            for (l, w) in wide.iter_mut().enumerate() {
                w.end_frame = crate::AnchorFrame::new(n.lane(l), ca.lane(l), c.lane(l));
            }

            for l in 0..4 {
                for i in 0..n_res {
                    let (ws, ss) = (&wide[l].residues[i], &scalar[l].residues[i]);
                    assert_eq!(ws.n, ss.n, "angle {changed_angle} lane {l} residue {i} N");
                    assert_eq!(
                        ws.ca, ss.ca,
                        "angle {changed_angle} lane {l} residue {i} CA"
                    );
                    assert_eq!(ws.c, ss.c, "angle {changed_angle} lane {l} residue {i} C");
                }
                assert_eq!(
                    wide[l].end_frame.atoms(),
                    scalar[l].end_frame.atoms(),
                    "angle {changed_angle} lane {l} end frame"
                );
            }
            // Keep `scalar` alive past the comparisons for clarity.
            scalar.clear();
        }
    }

    /// A degenerate context (zero-length bond direction in some lane)
    /// makes the whole group decline rather than diverge from the scalar
    /// branch structure.
    #[test]
    fn degenerate_lane_fails_the_whole_group() {
        let target = BenchmarkLibrary::standard().target_by_name("5pti").unwrap();
        let builder = LoopBuilder::default();
        let kernel = SpineKernel::new(builder.geometry(), &target.frame);
        let p = WideVec3::splat(target.frame.n_anchor.n);
        // prev_ca == prev_c collapses the bc bond direction in every lane.
        let (s, c) = sin_cos_lanes([0.1, 0.2, 0.3, 0.4]);
        assert!(kernel.place_spine(p, p, p, s, c, s, c).is_none());
    }
}
