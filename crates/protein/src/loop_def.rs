//! Loop modeling targets.
//!
//! A [`LoopTarget`] bundles everything the sampler needs for one benchmark
//! loop: the residue range and sequence, the fixed anchor geometry
//! ([`LoopFrame`]), the fixed protein [`Environment`], and — because the
//! benchmark is synthetic — the known native conformation used to measure
//! decoy RMSD.

use crate::amino::AminoAcid;
use crate::backbone::{LoopBuilder, LoopFrame, LoopStructure};
use crate::environment::{EnvCandidates, Environment};
use crate::torsions::Torsions;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A loop-modeling target: the problem definition plus its (known) native
/// answer.
#[derive(Debug, Clone)]
pub struct LoopTarget {
    /// PDB-style identifier of the host protein (e.g. `"1cex"`).
    pub name: String,
    /// First residue of the loop in host-protein numbering.
    pub start_res: usize,
    /// Last residue of the loop in host-protein numbering (inclusive).
    pub end_res: usize,
    /// Loop residue types, N to C.
    pub sequence: Vec<AminoAcid>,
    /// Fixed anchor geometry.
    pub frame: LoopFrame,
    /// Fixed protein environment (shared, since the environment can be
    /// large and targets are cloned into worker threads).
    pub environment: Arc<Environment>,
    /// Native loop torsions.
    pub native_torsions: Torsions,
    /// Native loop structure built from `native_torsions`.
    pub native_structure: LoopStructure,
    /// Whether the loop is deeply buried in the protein (the paper's
    /// hardest case, 1xyz 813:824).
    pub buried: bool,
    /// Lazily computed environment-neighbour cache: the fixed-environment
    /// atoms reachable from this loop region, in SoA layout.  Shared across
    /// clones (worker threads score the same target) and initialised at most
    /// once per target; use [`LoopTarget::env_candidates`] to access it.
    ///
    /// **Staleness warning:** the cache is keyed to the `environment` and
    /// `frame` values present at first use and is never invalidated.  If you
    /// mutate those fields after scoring once — or build a variant target
    /// with struct-update syntax (`LoopTarget { environment: …, ..other }`),
    /// which copies the `Arc` and therefore the warmed cache — reset this
    /// field to `Default::default()` or scoring will silently use the old
    /// candidate set.
    pub env_cache: Arc<OnceLock<EnvCandidates>>,
}

/// Safety margin (Å) added to the loop reach bound when collecting
/// environment candidates; must be at least as large as the biggest contact
/// cutoff any scoring function uses (the VDW soft-sphere query uses 7 Å —
/// it asserts against this constant).
pub const ENV_CONTACT_MARGIN: f64 = 8.0;

impl LoopTarget {
    /// Number of residues in the loop.
    pub fn n_residues(&self) -> usize {
        self.sequence.len()
    }

    /// A conservative upper bound (Å) on the distance from the N-anchor Cα
    /// to any atom of any conformation of this loop.  Each residue advances
    /// the chain by at most the sum of the three backbone bond lengths
    /// (≈ 4.32 Å with ideal geometry); the bound adds slack for the anchor
    /// offset, the carbonyl oxygen and the largest side-chain centroid.
    pub fn reach_radius(&self) -> f64 {
        4.4 * (self.n_residues() as f64 + 2.0) + 6.0
    }

    /// The fixed-environment atoms that can ever be within contact range of
    /// this loop, as a flat SoA candidate set.  Computed on first use (once
    /// per target, shared across clones) so per-evaluation scoring performs
    /// no spatial-grid queries and no allocation.
    pub fn env_candidates(&self) -> &EnvCandidates {
        self.env_cache.get_or_init(|| {
            self.environment.candidates_within(
                self.frame.n_anchor.ca,
                self.reach_radius() + ENV_CONTACT_MARGIN,
            )
        })
    }

    /// Display label in the paper's `name(start:end)` convention.
    pub fn label(&self) -> String {
        format!("{}({}:{})", self.name, self.start_res, self.end_res)
    }

    /// Backbone RMSD (no superposition — anchors fix the frame) between a
    /// candidate structure and the native loop, over N, Cα, C', O atoms.
    ///
    /// Iterates the residue buffers directly (same atom order and summation
    /// order as `rmsd_direct` over `backbone_atoms()`, hence bit-identical)
    /// without materialising the atom vectors, so the sampler's hot loop can
    /// measure RMSD allocation-free.
    pub fn rmsd_to_native(&self, structure: &LoopStructure) -> f64 {
        let native = &self.native_structure.residues;
        let cand = &structure.residues;
        assert_eq!(
            native.len(),
            cand.len(),
            "RMSD over mismatched residue counts"
        );
        if native.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (a, b) in native.iter().zip(cand.iter()) {
            sum += a.n.distance_sq(b.n);
            sum += a.ca.distance_sq(b.ca);
            sum += a.c.distance_sq(b.c);
            sum += a.o.distance_sq(b.o);
        }
        (sum / (4 * native.len()) as f64).sqrt()
    }

    /// Build a structure for this target from a torsion vector.
    pub fn build(&self, builder: &LoopBuilder, torsions: &Torsions) -> LoopStructure {
        builder.build(&self.frame, &self.sequence, torsions)
    }

    /// Rebuild a structure for this target *in place* (no allocation after
    /// the first call on a given buffer); see [`LoopBuilder::build_into`].
    pub fn build_into(&self, builder: &LoopBuilder, torsions: &Torsions, out: &mut LoopStructure) {
        builder.build_into(&self.frame, &self.sequence, torsions, out);
    }

    /// Closure deviation (Å) of a candidate structure for this target.
    pub fn closure_deviation(&self, structure: &LoopStructure) -> f64 {
        structure.end_frame.rms_distance(&self.frame.c_anchor)
    }
}

impl fmt::Display for LoopTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} residues, {} environment atoms{})",
            self.label(),
            self.n_residues(),
            self.environment.len(),
            if self.buried { ", buried" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::AnchorFrame;
    use lms_geometry::{deg_to_rad, Vec3};

    fn tiny_target() -> LoopTarget {
        let builder = LoopBuilder::default();
        let sequence = vec![
            AminoAcid::Ala,
            AminoAcid::Gly,
            AminoAcid::Leu,
            AminoAcid::Ser,
        ];
        let native_torsions = Torsions::from_pairs(&[
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
            (deg_to_rad(-120.0), deg_to_rad(135.0)),
            (deg_to_rad(-75.0), deg_to_rad(150.0)),
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
        ]);
        let frame = LoopFrame {
            n_anchor: AnchorFrame::new(
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.458, 0.0, 0.0),
                Vec3::new(2.0, 1.4, 0.0),
            ),
            n_anchor_psi: deg_to_rad(130.0),
            // Use the natively-built end frame as the closure target so the
            // native closes exactly.
            c_anchor: AnchorFrame::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO),
            c_anchor_phi: deg_to_rad(-70.0),
        };
        let provisional = builder.build(&frame, &sequence, &native_torsions);
        let frame = LoopFrame {
            c_anchor: provisional.end_frame,
            ..frame
        };
        let native_structure = builder.build(&frame, &sequence, &native_torsions);
        LoopTarget {
            name: "test".to_string(),
            start_res: 10,
            end_res: 13,
            sequence,
            frame,
            environment: Arc::new(Environment::empty()),
            native_torsions,
            native_structure,
            buried: false,
            env_cache: Default::default(),
        }
    }

    #[test]
    fn label_and_len() {
        let t = tiny_target();
        assert_eq!(t.label(), "test(10:13)");
        assert_eq!(t.n_residues(), 4);
        let s = format!("{t}");
        assert!(s.contains("4 residues"));
    }

    #[test]
    fn native_has_zero_rmsd_and_closes() {
        let t = tiny_target();
        let builder = LoopBuilder::default();
        let built = t.build(&builder, &t.native_torsions);
        assert!(t.rmsd_to_native(&built) < 1e-9);
        assert!(t.closure_deviation(&built) < 1e-9);
    }

    #[test]
    fn perturbed_torsions_increase_rmsd_and_break_closure() {
        let t = tiny_target();
        let builder = LoopBuilder::default();
        let mut torsions = t.native_torsions.clone();
        torsions.set_phi(1, torsions.phi(1) + deg_to_rad(60.0));
        let built = t.build(&builder, &torsions);
        assert!(t.rmsd_to_native(&built) > 0.3);
        assert!(t.closure_deviation(&built) > 0.3);
    }
}
