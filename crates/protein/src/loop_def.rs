//! Loop modeling targets.
//!
//! A [`LoopTarget`] bundles everything the sampler needs for one benchmark
//! loop: the residue range and sequence, the fixed anchor geometry
//! ([`LoopFrame`]), the fixed protein [`Environment`], and — because the
//! benchmark is synthetic — the known native conformation used to measure
//! decoy RMSD.

use crate::amino::AminoAcid;
use crate::backbone::{LoopBuilder, LoopFrame, LoopStructure};
use crate::environment::Environment;
use crate::torsions::Torsions;
use lms_geometry::rmsd_direct;
use std::fmt;
use std::sync::Arc;

/// A loop-modeling target: the problem definition plus its (known) native
/// answer.
#[derive(Debug, Clone)]
pub struct LoopTarget {
    /// PDB-style identifier of the host protein (e.g. `"1cex"`).
    pub name: String,
    /// First residue of the loop in host-protein numbering.
    pub start_res: usize,
    /// Last residue of the loop in host-protein numbering (inclusive).
    pub end_res: usize,
    /// Loop residue types, N to C.
    pub sequence: Vec<AminoAcid>,
    /// Fixed anchor geometry.
    pub frame: LoopFrame,
    /// Fixed protein environment (shared, since the environment can be
    /// large and targets are cloned into worker threads).
    pub environment: Arc<Environment>,
    /// Native loop torsions.
    pub native_torsions: Torsions,
    /// Native loop structure built from `native_torsions`.
    pub native_structure: LoopStructure,
    /// Whether the loop is deeply buried in the protein (the paper's
    /// hardest case, 1xyz 813:824).
    pub buried: bool,
}

impl LoopTarget {
    /// Number of residues in the loop.
    pub fn n_residues(&self) -> usize {
        self.sequence.len()
    }

    /// Display label in the paper's `name(start:end)` convention.
    pub fn label(&self) -> String {
        format!("{}({}:{})", self.name, self.start_res, self.end_res)
    }

    /// Backbone RMSD (no superposition — anchors fix the frame) between a
    /// candidate structure and the native loop, over N, Cα, C', O atoms.
    pub fn rmsd_to_native(&self, structure: &LoopStructure) -> f64 {
        rmsd_direct(
            &self.native_structure.backbone_atoms(),
            &structure.backbone_atoms(),
        )
    }

    /// Build a structure for this target from a torsion vector.
    pub fn build(&self, builder: &LoopBuilder, torsions: &Torsions) -> LoopStructure {
        builder.build(&self.frame, &self.sequence, torsions)
    }

    /// Closure deviation (Å) of a candidate structure for this target.
    pub fn closure_deviation(&self, structure: &LoopStructure) -> f64 {
        structure.end_frame.rms_distance(&self.frame.c_anchor)
    }
}

impl fmt::Display for LoopTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} residues, {} environment atoms{})",
            self.label(),
            self.n_residues(),
            self.environment.len(),
            if self.buried { ", buried" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::AnchorFrame;
    use lms_geometry::{deg_to_rad, Vec3};

    fn tiny_target() -> LoopTarget {
        let builder = LoopBuilder::default();
        let sequence = vec![AminoAcid::Ala, AminoAcid::Gly, AminoAcid::Leu, AminoAcid::Ser];
        let native_torsions = Torsions::from_pairs(&[
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
            (deg_to_rad(-120.0), deg_to_rad(135.0)),
            (deg_to_rad(-75.0), deg_to_rad(150.0)),
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
        ]);
        let frame = LoopFrame {
            n_anchor: AnchorFrame::new(
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.458, 0.0, 0.0),
                Vec3::new(2.0, 1.4, 0.0),
            ),
            n_anchor_psi: deg_to_rad(130.0),
            // Use the natively-built end frame as the closure target so the
            // native closes exactly.
            c_anchor: AnchorFrame::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO),
            c_anchor_phi: deg_to_rad(-70.0),
        };
        let provisional = builder.build(&frame, &sequence, &native_torsions);
        let frame = LoopFrame { c_anchor: provisional.end_frame, ..frame };
        let native_structure = builder.build(&frame, &sequence, &native_torsions);
        LoopTarget {
            name: "test".to_string(),
            start_res: 10,
            end_res: 13,
            sequence,
            frame,
            environment: Arc::new(Environment::empty()),
            native_torsions,
            native_structure,
            buried: false,
        }
    }

    #[test]
    fn label_and_len() {
        let t = tiny_target();
        assert_eq!(t.label(), "test(10:13)");
        assert_eq!(t.n_residues(), 4);
        let s = format!("{t}");
        assert!(s.contains("4 residues"));
    }

    #[test]
    fn native_has_zero_rmsd_and_closes() {
        let t = tiny_target();
        let builder = LoopBuilder::default();
        let built = t.build(&builder, &t.native_torsions);
        assert!(t.rmsd_to_native(&built) < 1e-9);
        assert!(t.closure_deviation(&built) < 1e-9);
    }

    #[test]
    fn perturbed_torsions_increase_rmsd_and_break_closure() {
        let t = tiny_target();
        let builder = LoopBuilder::default();
        let mut torsions = t.native_torsions.clone();
        torsions.set_phi(1, torsions.phi(1) + deg_to_rad(60.0));
        let built = t.build(&builder, &torsions);
        assert!(t.rmsd_to_native(&built) > 0.3);
        assert!(t.closure_deviation(&built) > 0.3);
    }
}
