//! Ramachandran torsion-angle statistics.
//!
//! The TRIPLET scoring function of the paper is a knowledge-based potential
//! derived from the distribution of `(φ, ψ)` pairs observed in a large loop
//! library.  We do not have that proprietary library, so the suite carries a
//! compact generative stand-in: a per-residue-class mixture of wrapped
//! Gaussian basins centred on the classical Ramachandran regions (right-
//! handed α, β/extended, polyproline-II and left-handed α).  The mixture is
//! used twice:
//!
//! 1. the synthetic benchmark generator samples *native* loop torsions from
//!    it, and
//! 2. the synthetic knowledge base in `lms-scoring` is built by histogramming
//!    a large sample drawn from it — mimicking how the real potential is
//!    derived from a real loop library.

use crate::amino::RamaClass;
use lms_geometry::{deg_to_rad, wrap_rad, wrapped_normal};
use rand::Rng;
use std::f64::consts::PI;

/// One basin (mode) of the Ramachandran mixture: a wrapped, axis-aligned
/// Gaussian in `(φ, ψ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RamaBasin {
    /// Mixture weight (relative, need not be normalised).
    pub weight: f64,
    /// Mean φ (radians).
    pub phi_mean: f64,
    /// Mean ψ (radians).
    pub psi_mean: f64,
    /// Standard deviation of φ (radians).
    pub phi_sigma: f64,
    /// Standard deviation of ψ (radians).
    pub psi_sigma: f64,
}

impl RamaBasin {
    fn new_deg(weight: f64, phi: f64, psi: f64, sphi: f64, spsi: f64) -> Self {
        RamaBasin {
            weight,
            phi_mean: deg_to_rad(phi),
            psi_mean: deg_to_rad(psi),
            phi_sigma: deg_to_rad(sphi),
            psi_sigma: deg_to_rad(spsi),
        }
    }

    /// Unnormalised density contribution of this basin at `(φ, ψ)`.
    fn density(&self, phi: f64, psi: f64) -> f64 {
        let dphi = wrap_rad(phi - self.phi_mean) / self.phi_sigma;
        let dpsi = wrap_rad(psi - self.psi_mean) / self.psi_sigma;
        self.weight * (-0.5 * (dphi * dphi + dpsi * dpsi)).exp() / (self.phi_sigma * self.psi_sigma)
    }
}

/// The Ramachandran mixture model for one residue class.
#[derive(Debug, Clone, PartialEq)]
pub struct RamaModel {
    class: RamaClass,
    basins: Vec<RamaBasin>,
    total_weight: f64,
}

impl RamaModel {
    /// The model for a residue class.
    pub fn for_class(class: RamaClass) -> RamaModel {
        let basins = match class {
            RamaClass::General => vec![
                // right-handed alpha helix
                RamaBasin::new_deg(0.42, -63.0, -43.0, 12.0, 13.0),
                // beta / extended
                RamaBasin::new_deg(0.32, -120.0, 135.0, 25.0, 22.0),
                // polyproline II
                RamaBasin::new_deg(0.18, -75.0, 150.0, 15.0, 18.0),
                // left-handed alpha
                RamaBasin::new_deg(0.08, 57.0, 45.0, 12.0, 12.0),
            ],
            RamaClass::Glycine => vec![
                RamaBasin::new_deg(0.25, -63.0, -43.0, 15.0, 15.0),
                RamaBasin::new_deg(0.25, 63.0, 43.0, 15.0, 15.0),
                RamaBasin::new_deg(0.20, -120.0, 140.0, 28.0, 25.0),
                RamaBasin::new_deg(0.20, 120.0, -140.0, 28.0, 25.0),
                RamaBasin::new_deg(0.10, 80.0, -170.0, 20.0, 20.0),
            ],
            RamaClass::Proline => vec![
                RamaBasin::new_deg(0.55, -65.0, 150.0, 10.0, 18.0),
                RamaBasin::new_deg(0.35, -65.0, -35.0, 10.0, 14.0),
                RamaBasin::new_deg(0.10, -85.0, 70.0, 12.0, 18.0),
            ],
        };
        let total_weight = basins.iter().map(|b| b.weight).sum();
        RamaModel {
            class,
            basins,
            total_weight,
        }
    }

    /// The residue class this model describes.
    pub fn class(&self) -> RamaClass {
        self.class
    }

    /// The basins of the mixture.
    pub fn basins(&self) -> &[RamaBasin] {
        &self.basins
    }

    /// Sample a `(φ, ψ)` pair from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let mut pick = rng.gen::<f64>() * self.total_weight;
        let mut chosen = &self.basins[self.basins.len() - 1];
        for b in &self.basins {
            if pick < b.weight {
                chosen = b;
                break;
            }
            pick -= b.weight;
        }
        (
            wrapped_normal(rng, chosen.phi_mean, chosen.phi_sigma),
            wrapped_normal(rng, chosen.psi_mean, chosen.psi_sigma),
        )
    }

    /// Probability density (up to the mixture normalisation constant over
    /// the torus) at `(φ, ψ)`.
    pub fn density(&self, phi: f64, psi: f64) -> f64 {
        self.basins.iter().map(|b| b.density(phi, psi)).sum::<f64>() / self.total_weight
    }

    /// Negative log density, clamped to avoid infinities in empty regions.
    pub fn energy(&self, phi: f64, psi: f64) -> f64 {
        -(self.density(phi, psi).max(1e-12)).ln()
    }
}

/// Convenience bundle with one model per residue class.
#[derive(Debug, Clone)]
pub struct RamaLibrary {
    models: [RamaModel; RamaClass::COUNT],
}

impl Default for RamaLibrary {
    fn default() -> Self {
        RamaLibrary {
            models: [
                RamaModel::for_class(RamaClass::General),
                RamaModel::for_class(RamaClass::Glycine),
                RamaModel::for_class(RamaClass::Proline),
            ],
        }
    }
}

impl RamaLibrary {
    /// The model for a residue class.
    pub fn model(&self, class: RamaClass) -> &RamaModel {
        &self.models[class.index()]
    }
}

/// Check that an angle pair is inside the torus domain `(-π, π]²`.
pub fn in_torsion_domain(phi: f64, psi: f64) -> bool {
    phi > -PI - 1e-9 && phi <= PI + 1e-9 && psi > -PI - 1e-9 && psi <= PI + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::StreamRngFactory;

    #[test]
    fn samples_stay_in_domain() {
        let lib = RamaLibrary::default();
        let mut rng = StreamRngFactory::new(1).stream(0, 0);
        for class in [RamaClass::General, RamaClass::Glycine, RamaClass::Proline] {
            let model = lib.model(class);
            for _ in 0..2000 {
                let (phi, psi) = model.sample(&mut rng);
                assert!(in_torsion_domain(phi, psi), "({phi}, {psi}) outside domain");
            }
        }
    }

    #[test]
    fn general_class_favours_alpha_and_beta() {
        let model = RamaModel::for_class(RamaClass::General);
        let alpha = model.density(deg_to_rad(-63.0), deg_to_rad(-43.0));
        let beta = model.density(deg_to_rad(-120.0), deg_to_rad(135.0));
        let forbidden = model.density(deg_to_rad(60.0), deg_to_rad(-120.0));
        assert!(
            alpha > forbidden * 50.0,
            "alpha {alpha} vs forbidden {forbidden}"
        );
        assert!(
            beta > forbidden * 10.0,
            "beta {beta} vs forbidden {forbidden}"
        );
    }

    #[test]
    fn proline_phi_is_restricted() {
        let model = RamaModel::for_class(RamaClass::Proline);
        let mut rng = StreamRngFactory::new(2).stream(0, 0);
        let mut count_near = 0;
        let total = 3000;
        for _ in 0..total {
            let (phi, _) = model.sample(&mut rng);
            if (phi.to_degrees() + 65.0).abs() < 40.0 {
                count_near += 1;
            }
        }
        assert!(
            count_near as f64 > 0.85 * total as f64,
            "only {count_near}/{total} proline samples near phi=-65"
        );
    }

    #[test]
    fn glycine_allows_positive_phi() {
        let model = RamaModel::for_class(RamaClass::Glycine);
        let mut rng = StreamRngFactory::new(3).stream(0, 0);
        let mut positive = 0;
        let total = 3000;
        for _ in 0..total {
            let (phi, _) = model.sample(&mut rng);
            if phi > 0.0 {
                positive += 1;
            }
        }
        // Glycine's map is nearly symmetric: a large fraction at positive phi.
        assert!(positive as f64 > 0.3 * total as f64, "{positive}/{total}");
        // Whereas the general class almost never goes there.
        let general = RamaModel::for_class(RamaClass::General);
        let mut pos_gen = 0;
        for _ in 0..total {
            let (phi, _) = general.sample(&mut rng);
            if phi > 0.0 {
                pos_gen += 1;
            }
        }
        assert!(
            pos_gen < positive,
            "general {pos_gen} >= glycine {positive}"
        );
    }

    #[test]
    fn energy_is_negative_log_density() {
        let model = RamaModel::for_class(RamaClass::General);
        let (phi, psi) = (deg_to_rad(-63.0), deg_to_rad(-43.0));
        let e = model.energy(phi, psi);
        let d = model.density(phi, psi);
        assert!((e + d.ln()).abs() < 1e-12);
        // Low-density regions have higher (worse) energy.
        assert!(model.energy(deg_to_rad(60.0), deg_to_rad(-120.0)) > e);
    }

    #[test]
    fn density_is_periodic() {
        let model = RamaModel::for_class(RamaClass::General);
        let d1 = model.density(deg_to_rad(-63.0), deg_to_rad(-43.0));
        let d2 = model.density(deg_to_rad(-63.0 + 360.0), deg_to_rad(-43.0 - 360.0));
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_reproducible_per_stream() {
        let model = RamaModel::for_class(RamaClass::General);
        let f = StreamRngFactory::new(77);
        let a: Vec<(f64, f64)> = {
            let mut r = f.stream(5, 0);
            (0..16).map(|_| model.sample(&mut r)).collect()
        };
        let b: Vec<(f64, f64)> = {
            let mut r = f.stream(5, 0);
            (0..16).map(|_| model.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn library_exposes_all_classes() {
        let lib = RamaLibrary::default();
        assert_eq!(lib.model(RamaClass::General).class(), RamaClass::General);
        assert_eq!(lib.model(RamaClass::Glycine).class(), RamaClass::Glycine);
        assert_eq!(lib.model(RamaClass::Proline).class(), RamaClass::Proline);
        assert!(!lib.model(RamaClass::General).basins().is_empty());
    }
}
