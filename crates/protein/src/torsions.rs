//! Torsion-angle vectors.
//!
//! A loop conformation with `n` residues is represented — exactly as in the
//! paper — by the vector `(φ1, ψ1, …, φn, ψn)` with ω fixed at 180° and all
//! bond lengths/angles ideal.  [`Torsions`] wraps that flat vector with
//! typed accessors so that the sampler, the closure algorithm and the
//! scoring functions cannot mix up φ and ψ indices.

use lms_geometry::{max_torsion_deviation_deg, wrap_rad};
use std::fmt;

/// A loop conformation's torsion-angle vector `(φ1, ψ1, …, φn, ψn)`, all in
/// radians.
#[derive(Debug, Clone, PartialEq)]
pub struct Torsions {
    values: Vec<f64>,
}

impl Torsions {
    /// Create a torsion vector of `n_residues` residues, all angles zero.
    pub fn zeros(n_residues: usize) -> Self {
        Torsions {
            values: vec![0.0; 2 * n_residues],
        }
    }

    /// Create from a flat `(φ1, ψ1, …, φn, ψn)` vector.
    ///
    /// # Panics
    /// Panics if the length is odd.
    pub fn from_flat(values: Vec<f64>) -> Self {
        assert!(
            values.len().is_multiple_of(2),
            "torsion vector length must be even"
        );
        Torsions { values }
    }

    /// Create from per-residue `(φ, ψ)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let mut values = Vec::with_capacity(pairs.len() * 2);
        for &(phi, psi) in pairs {
            values.push(phi);
            values.push(psi);
        }
        Torsions { values }
    }

    /// Number of residues.
    #[inline]
    pub fn n_residues(&self) -> usize {
        self.values.len() / 2
    }

    /// Number of torsion angles (2 × residues).
    #[inline]
    pub fn n_angles(&self) -> usize {
        self.values.len()
    }

    /// φ of residue `i` (0-based).
    #[inline]
    pub fn phi(&self, i: usize) -> f64 {
        self.values[2 * i]
    }

    /// ψ of residue `i` (0-based).
    #[inline]
    pub fn psi(&self, i: usize) -> f64 {
        self.values[2 * i + 1]
    }

    /// Set φ of residue `i`, wrapping into `(-π, π]`.
    #[inline]
    pub fn set_phi(&mut self, i: usize, value: f64) {
        self.values[2 * i] = wrap_rad(value);
    }

    /// Set ψ of residue `i`, wrapping into `(-π, π]`.
    #[inline]
    pub fn set_psi(&mut self, i: usize, value: f64) {
        self.values[2 * i + 1] = wrap_rad(value);
    }

    /// Get an angle by flat index (even = φ, odd = ψ).
    #[inline]
    pub fn angle(&self, flat_index: usize) -> f64 {
        self.values[flat_index]
    }

    /// Set an angle by flat index, wrapping into `(-π, π]`.
    #[inline]
    pub fn set_angle(&mut self, flat_index: usize, value: f64) {
        self.values[flat_index] = wrap_rad(value);
    }

    /// Add `delta` to an angle by flat index, wrapping into `(-π, π]`.
    #[inline]
    pub fn rotate_angle(&mut self, flat_index: usize, delta: f64) {
        self.values[flat_index] = wrap_rad(self.values[flat_index] + delta);
    }

    /// The residue index an angle belongs to, and whether it is φ.
    #[inline]
    pub fn describe_angle(flat_index: usize) -> (usize, TorsionKind) {
        (
            flat_index / 2,
            if flat_index.is_multiple_of(2) {
                TorsionKind::Phi
            } else {
                TorsionKind::Psi
            },
        )
    }

    /// The flat torsion vector.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Copy another torsion vector into this one, reusing the existing
    /// buffer (no allocation when the capacity suffices, which is always
    /// the case for equal-length vectors).  The derived `Clone` cannot make
    /// that guarantee, so the zero-allocation sampler paths use this.
    #[inline]
    pub fn copy_from(&mut self, other: &Torsions) {
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }

    /// Copy a flat `(φ1, ψ1, …, φn, ψn)` lane into this vector, reusing the
    /// existing buffer.  This is how the population-batched sampler loads a
    /// member's torsions out of the SoA arena (and
    /// [`Torsions::as_slice`] stores them back).
    ///
    /// # Panics
    /// Panics if the lane length is odd.
    #[inline]
    pub fn copy_from_flat(&mut self, lane: &[f64]) {
        assert!(
            lane.len().is_multiple_of(2),
            "torsion lane length must be even"
        );
        self.values.clear();
        self.values.extend_from_slice(lane);
    }

    /// `(φ, ψ)` of residue `i`.
    #[inline]
    pub fn pair(&self, i: usize) -> (f64, f64) {
        (self.phi(i), self.psi(i))
    }

    /// Maximum angular deviation to another torsion vector, in degrees —
    /// the paper's decoy-distinctness metric (new decoys must deviate by at
    /// least 30° in some torsion from every decoy already in the set).
    pub fn max_deviation_deg(&self, other: &Torsions) -> f64 {
        max_torsion_deviation_deg(&self.values, &other.values)
    }

    /// Whether this conformation is structurally distinct from `other`
    /// under the paper's rule (max torsion deviation ≥ `threshold_deg`).
    pub fn is_distinct_from(&self, other: &Torsions, threshold_deg: f64) -> bool {
        self.max_deviation_deg(other) >= threshold_deg
    }
}

impl fmt::Display for Torsions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.n_residues() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "({:.1}, {:.1})",
                self.phi(i).to_degrees(),
                self.psi(i).to_degrees()
            )?;
        }
        write!(f, "]")
    }
}

/// Which of the two backbone torsions an index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TorsionKind {
    /// The φ torsion (C' – N – Cα – C').
    Phi,
    /// The ψ torsion (N – Cα – C' – N).
    Psi,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn construction_and_accessors() {
        let t = Torsions::from_pairs(&[(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)]);
        assert_eq!(t.n_residues(), 3);
        assert_eq!(t.n_angles(), 6);
        assert_eq!(t.phi(0), 0.1);
        assert_eq!(t.psi(0), 0.2);
        assert_eq!(t.phi(2), 0.5);
        assert_eq!(t.psi(2), 0.6);
        assert_eq!(t.pair(1), (0.3, 0.4));
        assert_eq!(t.as_slice(), &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
    }

    #[test]
    fn zeros_and_from_flat() {
        let z = Torsions::zeros(4);
        assert_eq!(z.n_residues(), 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Torsions::from_flat(vec![1.0, 2.0]);
        assert_eq!(f.n_residues(), 1);
    }

    #[test]
    #[should_panic]
    fn odd_flat_vector_panics() {
        let _ = Torsions::from_flat(vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn setters_wrap_angles() {
        let mut t = Torsions::zeros(2);
        t.set_phi(0, 3.0 * PI);
        assert!((t.phi(0) - PI).abs() < 1e-12);
        t.set_psi(1, -3.0 * PI);
        assert!((t.psi(1) - PI).abs() < 1e-12);
        t.set_angle(2, 2.0 * PI + 0.5);
        assert!((t.angle(2) - 0.5).abs() < 1e-12);
        t.rotate_angle(2, 2.0 * PI);
        assert!((t.angle(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn describe_angle_maps_indices() {
        assert_eq!(Torsions::describe_angle(0), (0, TorsionKind::Phi));
        assert_eq!(Torsions::describe_angle(1), (0, TorsionKind::Psi));
        assert_eq!(Torsions::describe_angle(4), (2, TorsionKind::Phi));
        assert_eq!(Torsions::describe_angle(7), (3, TorsionKind::Psi));
    }

    #[test]
    fn deviation_and_distinctness() {
        let a = Torsions::from_pairs(&[(0.0, 0.0), (1.0, -1.0)]);
        let mut b = a.clone();
        assert_eq!(a.max_deviation_deg(&b), 0.0);
        assert!(!a.is_distinct_from(&b, 30.0));
        // Move one torsion by 45 degrees.
        b.set_psi(1, -1.0 + 45f64.to_radians());
        assert!((a.max_deviation_deg(&b) - 45.0).abs() < 1e-9);
        assert!(a.is_distinct_from(&b, 30.0));
        assert!(!a.is_distinct_from(&b, 60.0));
    }

    #[test]
    fn deviation_handles_wraparound() {
        let a = Torsions::from_pairs(&[(PI - 0.01, 0.0)]);
        let b = Torsions::from_pairs(&[(-PI + 0.01, 0.0)]);
        // Wrapped distance is ~1.15 degrees, not ~358.
        assert!(a.max_deviation_deg(&b) < 2.0);
    }

    #[test]
    fn display_is_in_degrees() {
        let t = Torsions::from_pairs(&[(PI / 2.0, -PI / 2.0)]);
        let s = format!("{t}");
        assert!(s.contains("90.0"), "{s}");
        assert!(s.contains("-90.0"), "{s}");
    }
}
