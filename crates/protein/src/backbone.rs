//! Backbone construction from torsion angles.
//!
//! The paper keeps ω at 180° and all bond lengths/angles at their ideal
//! values, so a loop conformation is fully determined by its `(φ, ψ)`
//! torsion vector plus the fixed N-terminal anchor.  [`LoopBuilder::build`]
//! turns such a vector into Cartesian backbone atoms (N, Cα, C', O and a
//! side-chain centroid pseudo-atom per residue) with the NeRF rule, and also
//! places the *moving* copies of the C-terminal anchor atoms that the CCD
//! closure algorithm tries to align with their fixed targets.
//!
//! ## The prefix-reuse invariant
//!
//! NeRF is a strict left-to-right recurrence: the atoms of residue `i`
//! depend only on torsions with flat index `≤ 2i + 1` (φᵢ places C'ᵢ and the
//! centroid, ψᵢ places only Oᵢ and everything from residue `i + 1` onward).
//! Consequently a structure built from one torsion vector remains *bit-exact*
//! for every residue strictly before the residue owning the first changed
//! flat index.  [`LoopBuilder::rebuild_from`] exploits this: it keeps the
//! untouched prefix in the caller's buffer and re-runs the identical
//! placement code only from the changed residue onward, which is what makes
//! CCD's per-rotation rebuild O(suffix) instead of O(loop) without altering
//! a single output bit.  Both `build_into` and `rebuild_from` funnel through
//! the same private `place_residue`/`place_end_frame` helpers, so the
//! equivalence is structural, not coincidental (and is property-tested in
//! `tests/incremental_rebuild.rs`).

use crate::amino::AminoAcid;
use crate::torsions::Torsions;
use lms_geometry::{deg_to_rad, dihedral_angle, place_atom, Vec3};
use std::f64::consts::PI;

/// Ideal backbone covalent geometry (Engh–Huber-like values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackboneGeometry {
    /// N–Cα bond length (Å).
    pub len_n_ca: f64,
    /// Cα–C' bond length (Å).
    pub len_ca_c: f64,
    /// C'–N peptide bond length (Å).
    pub len_c_n: f64,
    /// C'=O bond length (Å).
    pub len_c_o: f64,
    /// N–Cα–C' bond angle (radians).
    pub ang_n_ca_c: f64,
    /// Cα–C'–N bond angle (radians).
    pub ang_ca_c_n: f64,
    /// C'–N–Cα bond angle (radians).
    pub ang_c_n_ca: f64,
    /// Cα–C'=O bond angle (radians).
    pub ang_ca_c_o: f64,
    /// Cα–Cβ(centroid direction) bond angle C'–Cα–Cβ (radians).
    pub ang_c_ca_cb: f64,
    /// Improper dihedral N–C'–Cα–Cβ (radians) fixing Cβ chirality.
    pub dih_n_c_ca_cb: f64,
    /// The ω torsion (radians); kept at 180° as in the paper.
    pub omega: f64,
}

impl Default for BackboneGeometry {
    fn default() -> Self {
        BackboneGeometry {
            len_n_ca: 1.458,
            len_ca_c: 1.525,
            len_c_n: 1.329,
            len_c_o: 1.231,
            ang_n_ca_c: deg_to_rad(111.2),
            ang_ca_c_n: deg_to_rad(116.2),
            ang_c_n_ca: deg_to_rad(121.7),
            ang_ca_c_o: deg_to_rad(120.8),
            ang_c_ca_cb: deg_to_rad(110.1),
            dih_n_c_ca_cb: deg_to_rad(-122.6),
            omega: PI,
        }
    }
}

/// The three backbone atoms of an anchor residue (N, Cα, C'), in the fixed
/// protein frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorFrame {
    /// Backbone nitrogen.
    pub n: Vec3,
    /// Alpha carbon.
    pub ca: Vec3,
    /// Carbonyl carbon.
    pub c: Vec3,
}

impl AnchorFrame {
    /// Construct from the three atom positions.
    pub fn new(n: Vec3, ca: Vec3, c: Vec3) -> Self {
        AnchorFrame { n, ca, c }
    }

    /// The three positions in N, Cα, C' order.
    pub fn atoms(&self) -> [Vec3; 3] {
        [self.n, self.ca, self.c]
    }

    /// Root-mean-square distance to another frame, atom by atom — the loop
    /// closure deviation metric.
    pub fn rms_distance(&self, other: &AnchorFrame) -> f64 {
        let s = self.n.distance_sq(other.n)
            + self.ca.distance_sq(other.ca)
            + self.c.distance_sq(other.c);
        (s / 3.0).sqrt()
    }
}

/// Backbone atoms of one built loop residue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidueAtoms {
    /// Backbone nitrogen.
    pub n: Vec3,
    /// Alpha carbon.
    pub ca: Vec3,
    /// Carbonyl carbon.
    pub c: Vec3,
    /// Carbonyl oxygen.
    pub o: Vec3,
    /// Side-chain centroid pseudo-atom (absent for glycine).
    pub centroid: Option<Vec3>,
}

impl ResidueAtoms {
    /// The four backbone heavy atoms in N, Cα, C', O order.
    pub fn backbone(&self) -> [Vec3; 4] {
        [self.n, self.ca, self.c, self.o]
    }
}

/// A fully built loop conformation in Cartesian space.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStructure {
    /// Built residues in N-to-C order.
    pub residues: Vec<ResidueAtoms>,
    /// Moving copy of the C-anchor residue's backbone (N, Cα, C'); closure
    /// means this frame coincides with the fixed C-anchor.
    pub end_frame: AnchorFrame,
}

impl LoopStructure {
    /// An empty structure whose residue buffer has capacity for `n_residues`
    /// residues; intended as the reusable target of
    /// [`LoopBuilder::build_into`] so steady-state rebuilds never allocate.
    pub fn with_capacity(n_residues: usize) -> Self {
        LoopStructure {
            residues: Vec::with_capacity(n_residues),
            end_frame: AnchorFrame::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO),
        }
    }

    /// Number of loop residues.
    pub fn n_residues(&self) -> usize {
        self.residues.len()
    }

    /// All backbone heavy atoms (N, Cα, C', O per residue), in order.  This
    /// is the atom set used for RMSD-to-native in the paper's tables.
    pub fn backbone_atoms(&self) -> Vec<Vec3> {
        let mut out = Vec::with_capacity(self.residues.len() * 4);
        for r in &self.residues {
            out.extend_from_slice(&r.backbone());
        }
        out
    }

    /// Cα trace only.
    pub fn ca_atoms(&self) -> Vec<Vec3> {
        self.residues.iter().map(|r| r.ca).collect()
    }

    /// Side-chain centroid pseudo-atoms (skipping glycine residues).
    pub fn centroids(&self) -> Vec<Vec3> {
        self.residues.iter().filter_map(|r| r.centroid).collect()
    }

    /// Total number of heavy atoms represented (backbone + centroids).
    pub fn atom_count(&self) -> usize {
        self.residues.len() * 4 + self.centroids().len()
    }
}

/// Builds loop structures from torsion vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopBuilder {
    geometry: BackboneGeometry,
}

/// Everything that stays fixed while a loop's torsions vary: the anchors
/// and the anchor-residue torsions that connect the loop to the rest of the
/// protein.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopFrame {
    /// Backbone frame of the residue immediately before the loop.
    pub n_anchor: AnchorFrame,
    /// ψ of the N-anchor residue (fixed at its native value).
    pub n_anchor_psi: f64,
    /// Fixed target backbone frame of the residue immediately after the
    /// loop (the closure target).
    pub c_anchor: AnchorFrame,
    /// φ of the C-anchor residue (fixed at its native value); needed to
    /// place the moving copy of the C-anchor C' atom.
    pub c_anchor_phi: f64,
}

impl LoopBuilder {
    /// Create a builder with the given covalent geometry.
    pub fn new(geometry: BackboneGeometry) -> Self {
        LoopBuilder { geometry }
    }

    /// The covalent geometry in use.
    pub fn geometry(&self) -> &BackboneGeometry {
        &self.geometry
    }

    /// Build the Cartesian structure of a loop from its torsion vector.
    ///
    /// # Panics
    /// Panics if `torsions.n_residues() != sequence.len()`.
    pub fn build(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &Torsions,
    ) -> LoopStructure {
        let mut out = LoopStructure::with_capacity(sequence.len());
        self.build_into(frame, sequence, torsions, &mut out);
        out
    }

    /// Rebuild a loop structure *in place*: identical to [`LoopBuilder::build`]
    /// but writing into a caller-owned [`LoopStructure`], reusing its residue
    /// buffer.  After the first call on a given buffer, rebuilding performs no
    /// heap allocation — this is the primitive the zero-allocation scoring
    /// pipeline and the CCD inner loop are built on.
    ///
    /// # Panics
    /// Panics if `torsions.n_residues() != sequence.len()`.
    pub fn build_into(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &Torsions,
        out: &mut LoopStructure,
    ) {
        assert_eq!(
            torsions.n_residues(),
            sequence.len(),
            "torsion vector and sequence must have the same number of residues"
        );
        let residues = &mut out.residues;
        residues.clear();

        let mut prev_n = frame.n_anchor.n;
        let mut prev_ca = frame.n_anchor.ca;
        let mut prev_c = frame.n_anchor.c;
        let mut prev_psi = frame.n_anchor_psi;

        for (i, &aa) in sequence.iter().enumerate() {
            let r = self.place_residue(
                prev_n,
                prev_ca,
                prev_c,
                prev_psi,
                aa,
                torsions.phi(i),
                torsions.psi(i),
            );
            residues.push(r);
            prev_n = r.n;
            prev_ca = r.ca;
            prev_c = r.c;
            prev_psi = torsions.psi(i);
        }

        out.end_frame = self.place_end_frame(prev_n, prev_ca, prev_c, prev_psi, frame.c_anchor_phi);
    }

    /// Rebuild only the *suffix* of a previously built structure after a
    /// single-torsion edit: the residues strictly before the residue owning
    /// `changed_angle` are left untouched (they are invariant under any
    /// rotation at or after that flat index — see the module docs), and the
    /// placement recurrence is re-run from the changed residue through the
    /// end frame.  The result is **bit-identical** to a full
    /// [`LoopBuilder::build_into`] of `torsions`: the suffix runs the same
    /// helper code on the same inputs, and the prefix is the same bits it
    /// would recompute.
    ///
    /// # Contract
    /// `out` must hold a structure previously built (by `build_into` or an
    /// earlier `rebuild_from`) from a torsion vector that agrees with
    /// `torsions` on every flat index `< changed_angle`.  A
    /// `changed_angle ≥ torsions.n_angles()` means nothing changed and the
    /// call is a no-op.  This is exactly the state CCD maintains when it
    /// sweeps torsions in ascending order and rebuilds after each accepted
    /// rotation.
    ///
    /// # Panics
    /// Panics if `torsions`, `sequence` and `out` disagree on residue count.
    pub fn rebuild_from(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &Torsions,
        changed_angle: usize,
        out: &mut LoopStructure,
    ) {
        assert_eq!(
            torsions.n_residues(),
            sequence.len(),
            "torsion vector and sequence must have the same number of residues"
        );
        assert_eq!(
            out.n_residues(),
            sequence.len(),
            "rebuild_from requires a structure previously built for this loop"
        );
        if changed_angle >= torsions.n_angles() {
            return;
        }
        let (first, _) = Torsions::describe_angle(changed_angle);

        // Placement context entering residue `first`: the fixed anchor for
        // residue 0, otherwise the (invariant) atoms of residue `first - 1`.
        let (mut prev_n, mut prev_ca, mut prev_c, mut prev_psi) = if first == 0 {
            (
                frame.n_anchor.n,
                frame.n_anchor.ca,
                frame.n_anchor.c,
                frame.n_anchor_psi,
            )
        } else {
            let p = &out.residues[first - 1];
            (p.n, p.ca, p.c, torsions.psi(first - 1))
        };

        #[allow(clippy::needless_range_loop)] // indexes sequence and torsions together
        for i in first..sequence.len() {
            let r = self.place_residue(
                prev_n,
                prev_ca,
                prev_c,
                prev_psi,
                sequence[i],
                torsions.phi(i),
                torsions.psi(i),
            );
            out.residues[i] = r;
            prev_n = r.n;
            prev_ca = r.ca;
            prev_c = r.c;
            prev_psi = torsions.psi(i);
        }

        out.end_frame = self.place_end_frame(prev_n, prev_ca, prev_c, prev_psi, frame.c_anchor_phi);
    }

    /// Rebuild only the *backbone spine* (N, Cα, C' plus the end frame) of
    /// the suffix after a single-torsion edit, leaving every residue's O
    /// atom and side-chain centroid **stale**.
    ///
    /// The NeRF recurrence consumes only the spine: O and centroid hang off
    /// a residue's own N/Cα/C' and never feed a later placement.  A closure
    /// sweep that only needs rotation pivots/axes (spine atoms) and the
    /// moving end frame — exactly CCD's inner loop — can therefore skip
    /// ~2/5 of every suffix rebuild and recover the full structure with one
    /// [`LoopBuilder::build_into`] at the end.  The spine and end-frame
    /// coordinates this produces are bit-identical to
    /// [`LoopBuilder::rebuild_from`]'s (the placement calls are the same
    /// code on the same inputs); only O/centroid are left behind.
    ///
    /// # Contract
    /// As [`LoopBuilder::rebuild_from`], except that the O/centroid fields
    /// of `out` are unspecified afterwards until a full rebuild.
    ///
    /// # Panics
    /// Panics if `torsions`, `sequence` and `out` disagree on residue count.
    pub fn rebuild_spine_from(
        &self,
        frame: &LoopFrame,
        sequence: &[AminoAcid],
        torsions: &Torsions,
        changed_angle: usize,
        out: &mut LoopStructure,
    ) {
        assert_eq!(
            torsions.n_residues(),
            sequence.len(),
            "torsion vector and sequence must have the same number of residues"
        );
        assert_eq!(
            out.n_residues(),
            sequence.len(),
            "rebuild_spine_from requires a structure previously built for this loop"
        );
        if changed_angle >= torsions.n_angles() {
            return;
        }
        let (first, _) = Torsions::describe_angle(changed_angle);
        let (mut prev_n, mut prev_ca, mut prev_c, mut prev_psi) = if first == 0 {
            (
                frame.n_anchor.n,
                frame.n_anchor.ca,
                frame.n_anchor.c,
                frame.n_anchor_psi,
            )
        } else {
            let p = &out.residues[first - 1];
            (p.n, p.ca, p.c, torsions.psi(first - 1))
        };

        for i in first..sequence.len() {
            let (n, ca, c) = self.place_spine(prev_n, prev_ca, prev_c, prev_psi, torsions.phi(i));
            let r = &mut out.residues[i];
            r.n = n;
            r.ca = ca;
            r.c = c;
            prev_n = n;
            prev_ca = ca;
            prev_c = c;
            prev_psi = torsions.psi(i);
        }

        out.end_frame = self.place_end_frame(prev_n, prev_ca, prev_c, prev_psi, frame.c_anchor_phi);
    }

    /// Place one residue's N, Cα and C' by the NeRF recurrence — the part of
    /// [`LoopBuilder::place_residue`] that feeds the next residue.
    #[inline]
    fn place_spine(
        &self,
        prev_n: Vec3,
        prev_ca: Vec3,
        prev_c: Vec3,
        prev_psi: f64,
        phi: f64,
    ) -> (Vec3, Vec3, Vec3) {
        let g = &self.geometry;
        // N_i: extends the previous residue's C' along its psi.
        let n = place_atom(prev_n, prev_ca, prev_c, g.len_c_n, g.ang_ca_c_n, prev_psi);
        // CA_i: the omega torsion (fixed trans).
        let ca = place_atom(prev_ca, prev_c, n, g.len_n_ca, g.ang_c_n_ca, g.omega);
        // C'_i: this residue's phi.
        let c = place_atom(prev_c, n, ca, g.len_ca_c, g.ang_n_ca_c, phi);
        (n, ca, c)
    }

    /// Place one residue's atoms by the NeRF recurrence, given the previous
    /// residue's backbone and ψ.  The single placement routine both
    /// [`LoopBuilder::build_into`] and [`LoopBuilder::rebuild_from`] run, so
    /// the two are bit-identical by construction.
    #[inline]
    #[allow(clippy::too_many_arguments)] // the NeRF recurrence context is 4 values + 3 angles
    fn place_residue(
        &self,
        prev_n: Vec3,
        prev_ca: Vec3,
        prev_c: Vec3,
        prev_psi: f64,
        aa: AminoAcid,
        phi: f64,
        psi: f64,
    ) -> ResidueAtoms {
        let g = &self.geometry;
        let (n, ca, c) = self.place_spine(prev_n, prev_ca, prev_c, prev_psi, phi);
        // O_i: anti-periplanar to the next N, i.e. psi + 180 deg.
        let o = place_atom(n, ca, c, g.len_c_o, g.ang_ca_c_o, psi + PI);
        // Side-chain centroid along the Cβ direction (absent for Gly).
        let centroid = if aa.is_glycine() {
            None
        } else {
            let cb_dir = place_atom(n, c, ca, 1.0, g.ang_c_ca_cb, g.dih_n_c_ca_cb) - ca;
            Some(ca + cb_dir.normalized() * aa.centroid_distance())
        };
        ResidueAtoms {
            n,
            ca,
            c,
            o,
            centroid,
        }
    }

    /// Place the moving copies of the C-anchor backbone: N from the last
    /// residue's ψ, Cα from ω, C' from the (fixed) φ of the anchor residue.
    #[inline]
    fn place_end_frame(
        &self,
        prev_n: Vec3,
        prev_ca: Vec3,
        prev_c: Vec3,
        prev_psi: f64,
        c_anchor_phi: f64,
    ) -> AnchorFrame {
        let g = &self.geometry;
        let end_n = place_atom(prev_n, prev_ca, prev_c, g.len_c_n, g.ang_ca_c_n, prev_psi);
        let end_ca = place_atom(prev_ca, prev_c, end_n, g.len_n_ca, g.ang_c_n_ca, g.omega);
        let end_c = place_atom(
            prev_c,
            end_n,
            end_ca,
            g.len_ca_c,
            g.ang_n_ca_c,
            c_anchor_phi,
        );
        AnchorFrame::new(end_n, end_ca, end_c)
    }

    /// Measure the `(φ, ψ)` torsions realised by a built structure.  Used in
    /// tests to verify build/measure round-trips and by the decoy analysis.
    pub fn measure_torsions(&self, frame: &LoopFrame, structure: &LoopStructure) -> Torsions {
        let n_res = structure.n_residues();
        let mut t = Torsions::zeros(n_res);
        for i in 0..n_res {
            let prev_c = if i == 0 {
                frame.n_anchor.c
            } else {
                structure.residues[i - 1].c
            };
            let r = &structure.residues[i];
            let next_n = if i + 1 < n_res {
                structure.residues[i + 1].n
            } else {
                structure.end_frame.n
            };
            t.set_phi(i, dihedral_angle(prev_c, r.n, r.ca, r.c));
            t.set_psi(i, dihedral_angle(r.n, r.ca, r.c, next_n));
        }
        t
    }

    /// Closure deviation of a built structure: RMS distance between the
    /// moving end frame and the fixed C-anchor target.
    pub fn closure_deviation(&self, frame: &LoopFrame, structure: &LoopStructure) -> f64 {
        structure.end_frame.rms_distance(&frame.c_anchor)
    }
}

/// Build an arbitrary-length backbone segment *de novo* (no pre-existing
/// anchor), returning the built residues.  The first residue is placed in a
/// canonical frame at the origin.  Used by the synthetic benchmark generator
/// to create host proteins from scratch.
pub fn build_segment_de_novo(
    builder: &LoopBuilder,
    sequence: &[AminoAcid],
    torsions: &Torsions,
) -> LoopStructure {
    let g = builder.geometry();
    // Canonical anchor frame: a virtual residue placed so that the first
    // real residue starts near the origin in a standard orientation.
    let n = Vec3::new(-g.len_c_n - g.len_n_ca, 0.8, 0.0);
    let ca = Vec3::new(-g.len_c_n - 0.4, 0.0, 0.0);
    let c = Vec3::new(-g.len_c_n, 0.0, 0.0) + Vec3::new(0.35, 0.2, 0.0);
    let frame = LoopFrame {
        n_anchor: AnchorFrame::new(n, ca, c),
        n_anchor_psi: deg_to_rad(140.0),
        c_anchor: AnchorFrame::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO),
        c_anchor_phi: deg_to_rad(-70.0),
    };
    builder.build(&frame, sequence, torsions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::{bond_angle, rad_to_deg, wrap_rad};

    fn test_sequence(n: usize) -> Vec<AminoAcid> {
        (0..n)
            .map(|i| AminoAcid::from_index((i * 7 + 3) % 20))
            .collect()
    }

    fn test_frame() -> LoopFrame {
        // A plausible anchor frame: one residue's backbone laid out with
        // roughly ideal internal geometry.
        let n = Vec3::new(0.0, 0.0, 0.0);
        let ca = Vec3::new(1.458, 0.0, 0.0);
        let c = Vec3::new(2.0, 1.4, 0.0);
        let target = AnchorFrame::new(
            Vec3::new(8.0, 3.0, 2.0),
            Vec3::new(9.2, 3.5, 2.5),
            Vec3::new(10.4, 2.8, 3.2),
        );
        LoopFrame {
            n_anchor: AnchorFrame::new(n, ca, c),
            n_anchor_psi: deg_to_rad(135.0),
            c_anchor: target,
            c_anchor_phi: deg_to_rad(-65.0),
        }
    }

    fn alpha_torsions(n: usize) -> Torsions {
        Torsions::from_pairs(&vec![(deg_to_rad(-63.0), deg_to_rad(-43.0)); n])
    }

    #[test]
    fn build_produces_expected_atom_counts() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(8);
        let s = builder.build(&test_frame(), &seq, &alpha_torsions(8));
        assert_eq!(s.n_residues(), 8);
        assert_eq!(s.backbone_atoms().len(), 32);
        assert_eq!(s.ca_atoms().len(), 8);
        // No glycine in this sequence slice -> every residue has a centroid.
        let n_gly = seq.iter().filter(|a| a.is_glycine()).count();
        assert_eq!(s.centroids().len(), 8 - n_gly);
        assert_eq!(s.atom_count(), 32 + 8 - n_gly);
    }

    #[test]
    fn built_bond_lengths_match_ideal_geometry() {
        let builder = LoopBuilder::default();
        let g = *builder.geometry();
        let seq = test_sequence(6);
        let s = builder.build(&test_frame(), &seq, &alpha_torsions(6));
        for (i, r) in s.residues.iter().enumerate() {
            assert!(
                (r.n.distance(r.ca) - g.len_n_ca).abs() < 1e-9,
                "N-CA at {i}"
            );
            assert!(
                (r.ca.distance(r.c) - g.len_ca_c).abs() < 1e-9,
                "CA-C at {i}"
            );
            assert!((r.c.distance(r.o) - g.len_c_o).abs() < 1e-9, "C-O at {i}");
            if i > 0 {
                let prev = &s.residues[i - 1];
                assert!(
                    (prev.c.distance(r.n) - g.len_c_n).abs() < 1e-9,
                    "C-N at {i}"
                );
            }
        }
        // Peptide bond to the moving end frame.
        let last = s.residues.last().unwrap();
        assert!((last.c.distance(s.end_frame.n) - g.len_c_n).abs() < 1e-9);
    }

    #[test]
    fn built_bond_angles_match_ideal_geometry() {
        let builder = LoopBuilder::default();
        let g = *builder.geometry();
        let seq = test_sequence(5);
        let s = builder.build(&test_frame(), &seq, &alpha_torsions(5));
        for r in &s.residues {
            assert!((bond_angle(r.n, r.ca, r.c) - g.ang_n_ca_c).abs() < 1e-9);
            assert!((bond_angle(r.ca, r.c, r.o) - g.ang_ca_c_o).abs() < 1e-9);
        }
    }

    #[test]
    fn torsion_build_measure_roundtrip() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(10);
        let mut torsions = Torsions::zeros(10);
        // A mix of basins to exercise the full torsion range.
        let pairs = [
            (-63.0, -43.0),
            (-120.0, 135.0),
            (57.0, 45.0),
            (-75.0, 150.0),
            (-100.0, 10.0),
            (-63.0, -40.0),
            (80.0, 5.0),
            (-140.0, 160.0),
            (-60.0, -45.0),
            (-90.0, 120.0),
        ];
        for (i, &(phi, psi)) in pairs.iter().enumerate() {
            torsions.set_phi(i, deg_to_rad(phi));
            torsions.set_psi(i, deg_to_rad(psi));
        }
        let frame = test_frame();
        let s = builder.build(&frame, &seq, &torsions);
        let measured = builder.measure_torsions(&frame, &s);
        #[allow(clippy::needless_range_loop)] // indexes measured, torsions and pairs together
        for i in 0..10 {
            let dphi = wrap_rad(measured.phi(i) - torsions.phi(i)).abs();
            let dpsi = wrap_rad(measured.psi(i) - torsions.psi(i)).abs();
            assert!(
                dphi < 1e-8,
                "phi {i}: {} vs {}",
                rad_to_deg(measured.phi(i)),
                pairs[i].0
            );
            assert!(
                dpsi < 1e-8,
                "psi {i}: {} vs {}",
                rad_to_deg(measured.psi(i)),
                pairs[i].1
            );
        }
    }

    #[test]
    fn identical_torsions_give_identical_structures() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(7);
        let t = alpha_torsions(7);
        let a = builder.build(&test_frame(), &seq, &t);
        let b = builder.build(&test_frame(), &seq, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn changing_one_torsion_moves_downstream_atoms_only() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(8);
        let frame = test_frame();
        let t0 = alpha_torsions(8);
        let mut t1 = t0.clone();
        t1.set_phi(4, deg_to_rad(100.0));
        let a = builder.build(&frame, &seq, &t0);
        let b = builder.build(&frame, &seq, &t1);
        // Residues 0..4 N/CA identical; the C of residue 4 and beyond move.
        for i in 0..4 {
            assert!(a.residues[i].n.max_abs_diff(b.residues[i].n) < 1e-12);
            assert!(a.residues[i].c.max_abs_diff(b.residues[i].c) < 1e-12);
        }
        assert!(a.residues[4].n.max_abs_diff(b.residues[4].n) < 1e-12);
        assert!(a.residues[4].ca.max_abs_diff(b.residues[4].ca) < 1e-12);
        assert!(a.residues[4].c.max_abs_diff(b.residues[4].c) > 1e-3);
        assert!(a.residues[7].ca.max_abs_diff(b.residues[7].ca) > 1e-3);
        assert!(a.end_frame.n.max_abs_diff(b.end_frame.n) > 1e-3);
    }

    #[test]
    fn glycine_has_no_centroid() {
        let builder = LoopBuilder::default();
        let seq = vec![AminoAcid::Gly, AminoAcid::Ala, AminoAcid::Gly];
        let s = builder.build(&test_frame(), &seq, &alpha_torsions(3));
        assert!(s.residues[0].centroid.is_none());
        assert!(s.residues[1].centroid.is_some());
        assert!(s.residues[2].centroid.is_none());
    }

    #[test]
    fn centroid_distance_respects_residue_type() {
        let builder = LoopBuilder::default();
        let seq = vec![AminoAcid::Ala, AminoAcid::Trp];
        let s = builder.build(&test_frame(), &seq, &alpha_torsions(2));
        let d_ala = s.residues[0].centroid.unwrap().distance(s.residues[0].ca);
        let d_trp = s.residues[1].centroid.unwrap().distance(s.residues[1].ca);
        assert!((d_ala - AminoAcid::Ala.centroid_distance()).abs() < 1e-9);
        assert!((d_trp - AminoAcid::Trp.centroid_distance()).abs() < 1e-9);
        assert!(d_trp > d_ala);
    }

    #[test]
    #[should_panic]
    fn mismatched_sequence_and_torsions_panic() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(4);
        let _ = builder.build(&test_frame(), &seq, &alpha_torsions(5));
    }

    #[test]
    fn closure_deviation_is_distance_to_target() {
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(6);
        let s = builder.build(&frame, &seq, &alpha_torsions(6));
        let dev = builder.closure_deviation(&frame, &s);
        assert!(dev > 0.0);
        // Self-consistency with the AnchorFrame metric.
        assert!((dev - s.end_frame.rms_distance(&frame.c_anchor)).abs() < 1e-12);
    }

    #[test]
    fn de_novo_segment_has_valid_geometry() {
        let builder = LoopBuilder::default();
        let seq = test_sequence(12);
        let t = alpha_torsions(12);
        let s = build_segment_de_novo(&builder, &seq, &t);
        assert_eq!(s.n_residues(), 12);
        for atom in s.backbone_atoms() {
            assert!(atom.is_finite());
        }
        // Alpha-helical torsions give a compact segment: CA(i)-CA(i+3) < 7 A.
        let cas = s.ca_atoms();
        for i in 0..(cas.len() - 3) {
            assert!(cas[i].distance(cas[i + 3]) < 7.0);
        }
    }

    #[test]
    fn rebuild_from_matches_full_build_at_every_angle() {
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(9);
        let t0 = alpha_torsions(9);
        for k in 0..t0.n_angles() {
            let mut t1 = t0.clone();
            t1.set_angle(k, deg_to_rad(97.0) + 0.01 * k as f64);
            // Incremental: start from the t0 structure, edit angle k.
            let mut incremental = builder.build(&frame, &seq, &t0);
            builder.rebuild_from(&frame, &seq, &t1, k, &mut incremental);
            // Reference: full rebuild from scratch.
            let full = builder.build(&frame, &seq, &t1);
            assert_eq!(incremental, full, "suffix rebuild diverged at angle {k}");
        }
    }

    #[test]
    fn rebuild_from_chained_edits_stay_exact() {
        // A CCD-like ascending sweep of single-angle edits, each applied
        // with a suffix-only rebuild, must track the full rebuild exactly.
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(7);
        let mut t = alpha_torsions(7);
        let mut s = builder.build(&frame, &seq, &t);
        for sweep in 0..3 {
            for k in 0..t.n_angles() {
                t.rotate_angle(k, deg_to_rad(5.0 + sweep as f64 + k as f64));
                builder.rebuild_from(&frame, &seq, &t, k, &mut s);
                assert_eq!(s, builder.build(&frame, &seq, &t));
            }
        }
    }

    #[test]
    fn spine_rebuild_tracks_full_rebuild_on_spine_and_end_frame() {
        // A CCD-like chain of single-angle edits applied with spine-only
        // rebuilds must keep N/CA/C' and the end frame bit-identical to the
        // full incremental rebuild; a final full build recovers O/centroid.
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(8);
        let mut t = alpha_torsions(8);
        let mut spine = builder.build(&frame, &seq, &t);
        let mut full = spine.clone();
        for sweep in 0..2 {
            for k in 0..t.n_angles() {
                t.rotate_angle(k, deg_to_rad(4.0 + sweep as f64) * 0.5);
                builder.rebuild_spine_from(&frame, &seq, &t, k, &mut spine);
                builder.rebuild_from(&frame, &seq, &t, k, &mut full);
                for (a, b) in spine.residues.iter().zip(full.residues.iter()) {
                    assert_eq!(a.n, b.n);
                    assert_eq!(a.ca, b.ca);
                    assert_eq!(a.c, b.c);
                }
                assert_eq!(spine.end_frame, full.end_frame);
            }
        }
        // One full rebuild from the final torsions restores everything.
        builder.build_into(&frame, &seq, &t, &mut spine);
        assert_eq!(spine, full);
    }

    #[test]
    fn rebuild_from_past_the_end_is_a_noop() {
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(4);
        let t = alpha_torsions(4);
        let mut s = builder.build(&frame, &seq, &t);
        let reference = s.clone();
        builder.rebuild_from(&frame, &seq, &t, t.n_angles(), &mut s);
        builder.rebuild_from(&frame, &seq, &t, t.n_angles() + 5, &mut s);
        assert_eq!(s, reference);
    }

    #[test]
    #[should_panic]
    fn rebuild_from_rejects_unbuilt_structure() {
        let builder = LoopBuilder::default();
        let frame = test_frame();
        let seq = test_sequence(5);
        let t = alpha_torsions(5);
        let mut empty = LoopStructure::with_capacity(5);
        builder.rebuild_from(&frame, &seq, &t, 0, &mut empty);
    }

    #[test]
    fn anchor_frame_rms_distance() {
        let a = AnchorFrame::new(Vec3::ZERO, Vec3::X, Vec3::Y);
        let b = AnchorFrame::new(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::X + Vec3::new(1.0, 0.0, 0.0),
            Vec3::Y + Vec3::new(1.0, 0.0, 0.0),
        );
        assert!((a.rms_distance(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.rms_distance(&a), 0.0);
    }
}
