//! The fixed protein environment surrounding a loop.
//!
//! The VDW soft-sphere scoring function estimates clashes both *within* the
//! loop and *between* the loop and "the residues in the rest of the
//! protein" (the paper's wording).  [`Environment`] holds that fixed atom
//! set together with a uniform spatial hash grid so that clash evaluation
//! only visits nearby atoms instead of the whole protein.

use lms_geometry::Vec3;
use std::collections::HashMap;

/// One fixed atom of the protein environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvAtom {
    /// Position in the protein frame (Å).
    pub position: Vec3,
    /// Soft-sphere radius (Å).
    pub radius: f64,
    /// Whether this is a side-chain centroid pseudo-atom (as opposed to a
    /// backbone heavy atom); the VDW function treats centroid contacts with
    /// a softer weight.
    pub is_centroid: bool,
}

impl EnvAtom {
    /// A backbone heavy atom with the given radius.
    pub fn backbone(position: Vec3, radius: f64) -> Self {
        EnvAtom {
            position,
            radius,
            is_centroid: false,
        }
    }

    /// A side-chain centroid pseudo-atom with the given radius.
    pub fn centroid(position: Vec3, radius: f64) -> Self {
        EnvAtom {
            position,
            radius,
            is_centroid: true,
        }
    }
}

/// Uniform spatial hash grid over environment atoms.
#[derive(Debug, Clone)]
struct SpatialGrid {
    cell_size: f64,
    cells: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl SpatialGrid {
    fn build(atoms: &[EnvAtom], cell_size: f64) -> Self {
        let mut cells: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, a) in atoms.iter().enumerate() {
            cells
                .entry(Self::key(a.position, cell_size))
                .or_default()
                .push(i as u32);
        }
        SpatialGrid { cell_size, cells }
    }

    fn key(p: Vec3, cell: f64) -> (i32, i32, i32) {
        (
            (p.x / cell).floor() as i32,
            (p.y / cell).floor() as i32,
            (p.z / cell).floor() as i32,
        )
    }

    /// Indices of atoms in all cells overlapping a sphere of `radius`
    /// around `p` (conservative superset of the true neighbours).
    fn candidate_indices(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let span = (radius / self.cell_size).ceil() as i32;
        let (cx, cy, cz) = Self::key(p, self.cell_size);
        for dx in -span..=span {
            for dy in -span..=span {
                for dz in -span..=span {
                    if let Some(v) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        out.extend_from_slice(v);
                    }
                }
            }
        }
    }
}

/// The fixed protein environment around a loop: an atom list plus a spatial
/// index for fast neighbourhood queries.
#[derive(Debug, Clone)]
pub struct Environment {
    atoms: Vec<EnvAtom>,
    grid: SpatialGrid,
}

/// A precomputed, flat structure-of-arrays snapshot of the environment atoms
/// that can ever interact with a loop region.
///
/// Scoring functions walk these parallel arrays linearly instead of querying
/// the spatial grid per loop atom per evaluation: the inner contact loop
/// becomes branch-light, auto-vectorizable, and — because the candidate set
/// is computed once per target — entirely allocation-free at evaluation
/// time.  The set is a conservative superset (every atom within the caller's
/// reach radius), so kernels that skip non-overlapping pairs produce results
/// identical to an exact neighbour query.
#[derive(Debug, Clone, Default)]
pub struct EnvCandidates {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    radii: Vec<f64>,
    centroid: Vec<bool>,
}

impl EnvCandidates {
    /// Number of candidate atoms.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no environment atom is in reach of the loop region.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Candidate x coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Candidate y coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Candidate z coordinates.
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// Candidate soft-sphere radii.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Per-candidate centroid flags (`true` = side-chain centroid
    /// pseudo-atom, `false` = backbone heavy atom).
    pub fn centroid_flags(&self) -> &[bool] {
        &self.centroid
    }
}

/// Default grid cell size (Å).  Chosen near the typical clash cutoff so a
/// query touches at most 27 cells.
pub const DEFAULT_CELL_SIZE: f64 = 4.0;

impl Environment {
    /// Build an environment (and its spatial index) from an atom list.
    pub fn new(atoms: Vec<EnvAtom>) -> Self {
        let grid = SpatialGrid::build(&atoms, DEFAULT_CELL_SIZE);
        Environment { atoms, grid }
    }

    /// An environment with no atoms (loops on an isolated peptide).
    pub fn empty() -> Self {
        Environment::new(Vec::new())
    }

    /// Number of environment atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the environment has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All atoms.
    pub fn atoms(&self) -> &[EnvAtom] {
        &self.atoms
    }

    /// Visit every environment atom whose *centre* lies within `radius` of
    /// `p`.
    pub fn for_each_within<F: FnMut(&EnvAtom)>(&self, p: Vec3, radius: f64, mut f: F) {
        let mut scratch = Vec::with_capacity(32);
        self.grid.candidate_indices(p, radius, &mut scratch);
        let r2 = radius * radius;
        for &i in &scratch {
            let a = &self.atoms[i as usize];
            if a.position.distance_sq(p) <= r2 {
                f(a);
            }
        }
    }

    /// Collect the environment atoms within `radius` of `p`.
    pub fn neighbors_within(&self, p: Vec3, radius: f64) -> Vec<EnvAtom> {
        let mut out = Vec::new();
        self.for_each_within(p, radius, |a| out.push(*a));
        out
    }

    /// Number of environment atoms within `radius` of `p`; a cheap measure
    /// of how buried a position is.
    pub fn burial_count(&self, p: Vec3, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(p, radius, |_| n += 1);
        n
    }

    /// Collect a flat SoA candidate set of every atom whose centre lies
    /// within `radius` of `center`.  Computed once per loop target (the
    /// caller passes a conservative reach bound) and then scanned linearly
    /// by the scoring kernels.
    pub fn candidates_within(&self, center: Vec3, radius: f64) -> EnvCandidates {
        let mut out = EnvCandidates::default();
        let r2 = radius * radius;
        for a in &self.atoms {
            if a.position.distance_sq(center) <= r2 {
                out.xs.push(a.position.x);
                out.ys.push(a.position.y);
                out.zs.push(a.position.z);
                out.radii.push(a.radius);
                out.centroid.push(a.is_centroid);
            }
        }
        out
    }

    /// Minimum distance from `p` to any environment atom centre, or `None`
    /// when the environment is empty.  (Exact: falls back to a full scan, so
    /// use for diagnostics rather than inner loops.)
    pub fn min_distance(&self, p: Vec3) -> Option<f64> {
        self.atoms
            .iter()
            .map(|a| a.position.distance(p))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of_atoms(n: i32, spacing: f64) -> Vec<EnvAtom> {
        let mut atoms = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    atoms.push(EnvAtom::backbone(
                        Vec3::new(x as f64 * spacing, y as f64 * spacing, z as f64 * spacing),
                        1.7,
                    ));
                }
            }
        }
        atoms
    }

    #[test]
    fn empty_environment() {
        let env = Environment::empty();
        assert!(env.is_empty());
        assert_eq!(env.len(), 0);
        assert_eq!(env.burial_count(Vec3::ZERO, 10.0), 0);
        assert!(env.min_distance(Vec3::ZERO).is_none());
        assert!(env.neighbors_within(Vec3::ZERO, 5.0).is_empty());
    }

    #[test]
    fn neighbor_query_matches_brute_force() {
        let atoms = grid_of_atoms(5, 2.5);
        let env = Environment::new(atoms.clone());
        for &(p, r) in &[
            (Vec3::new(5.0, 5.0, 5.0), 3.0),
            (Vec3::new(0.0, 0.0, 0.0), 4.5),
            (Vec3::new(12.0, 1.0, 6.0), 6.0),
            (Vec3::new(-3.0, -3.0, -3.0), 2.0),
            (Vec3::new(6.1, 6.1, 6.1), 0.5),
        ] {
            let brute: usize = atoms.iter().filter(|a| a.position.distance(p) <= r).count();
            assert_eq!(env.burial_count(p, r), brute, "query at {p} r={r}");
        }
    }

    #[test]
    fn neighbors_within_returns_actual_atoms() {
        let atoms = vec![
            EnvAtom::backbone(Vec3::ZERO, 1.7),
            EnvAtom::centroid(Vec3::new(1.0, 0.0, 0.0), 2.3),
            EnvAtom::backbone(Vec3::new(10.0, 0.0, 0.0), 1.7),
        ];
        let env = Environment::new(atoms);
        let near = env.neighbors_within(Vec3::ZERO, 2.0);
        assert_eq!(near.len(), 2);
        assert!(near.iter().any(|a| a.is_centroid));
        let far = env.neighbors_within(Vec3::new(10.0, 0.0, 0.0), 0.5);
        assert_eq!(far.len(), 1);
        assert!(!far[0].is_centroid);
    }

    #[test]
    fn min_distance_is_exact() {
        let atoms = vec![
            EnvAtom::backbone(Vec3::new(3.0, 0.0, 0.0), 1.7),
            EnvAtom::backbone(Vec3::new(0.0, 4.0, 0.0), 1.7),
        ];
        let env = Environment::new(atoms);
        assert!((env.min_distance(Vec3::ZERO).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn query_radius_larger_than_grid_span_is_safe() {
        let env = Environment::new(grid_of_atoms(3, 3.0));
        // Radius covering everything.
        assert_eq!(env.burial_count(Vec3::new(3.0, 3.0, 3.0), 100.0), 27);
    }

    #[test]
    fn atom_constructors() {
        let b = EnvAtom::backbone(Vec3::X, 1.6);
        assert!(!b.is_centroid);
        assert_eq!(b.radius, 1.6);
        let c = EnvAtom::centroid(Vec3::Y, 2.5);
        assert!(c.is_centroid);
        assert_eq!(c.position, Vec3::Y);
    }
}
