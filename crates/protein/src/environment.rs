//! The fixed protein environment surrounding a loop.
//!
//! The VDW soft-sphere scoring function estimates clashes both *within* the
//! loop and *between* the loop and "the residues in the rest of the
//! protein" (the paper's wording).  [`Environment`] holds that fixed atom
//! set together with a uniform spatial hash grid for one-off neighbourhood
//! queries; [`EnvCandidates`] is the per-target snapshot the scoring hot
//! path actually consumes — flat SoA coordinate arrays plus a CSR cell
//! list (see its docs for the layout), built once per target so
//! per-evaluation queries touch no `HashMap` and allocate nothing.

use lms_geometry::Vec3;
use std::collections::HashMap;

/// One fixed atom of the protein environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvAtom {
    /// Position in the protein frame (Å).
    pub position: Vec3,
    /// Soft-sphere radius (Å).
    pub radius: f64,
    /// Whether this is a side-chain centroid pseudo-atom (as opposed to a
    /// backbone heavy atom); the VDW function treats centroid contacts with
    /// a softer weight.
    pub is_centroid: bool,
}

impl EnvAtom {
    /// A backbone heavy atom with the given radius.
    pub fn backbone(position: Vec3, radius: f64) -> Self {
        EnvAtom {
            position,
            radius,
            is_centroid: false,
        }
    }

    /// A side-chain centroid pseudo-atom with the given radius.
    pub fn centroid(position: Vec3, radius: f64) -> Self {
        EnvAtom {
            position,
            radius,
            is_centroid: true,
        }
    }
}

/// Uniform spatial hash grid over environment atoms.
#[derive(Debug, Clone)]
struct SpatialGrid {
    cell_size: f64,
    cells: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl SpatialGrid {
    fn build(atoms: &[EnvAtom], cell_size: f64) -> Self {
        let mut cells: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, a) in atoms.iter().enumerate() {
            cells
                .entry(Self::key(a.position, cell_size))
                .or_default()
                .push(i as u32);
        }
        SpatialGrid { cell_size, cells }
    }

    fn key(p: Vec3, cell: f64) -> (i32, i32, i32) {
        (
            (p.x / cell).floor() as i32,
            (p.y / cell).floor() as i32,
            (p.z / cell).floor() as i32,
        )
    }

    /// Indices of atoms in all cells overlapping a sphere of `radius`
    /// around `p` (conservative superset of the true neighbours).
    fn candidate_indices(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let span = (radius / self.cell_size).ceil() as i32;
        let (cx, cy, cz) = Self::key(p, self.cell_size);
        for dx in -span..=span {
            for dy in -span..=span {
                for dz in -span..=span {
                    if let Some(v) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        out.extend_from_slice(v);
                    }
                }
            }
        }
    }
}

/// The fixed protein environment around a loop: an atom list plus a spatial
/// index for fast neighbourhood queries.
#[derive(Debug, Clone)]
pub struct Environment {
    atoms: Vec<EnvAtom>,
    grid: SpatialGrid,
}

/// A precomputed, flat structure-of-arrays snapshot of the environment atoms
/// that can ever interact with a loop region, plus a flat cell list over
/// them for O(local density) per-site queries.
///
/// Scoring functions historically walked these parallel arrays linearly per
/// loop site, which degrades toward O(total protein atoms) per evaluation on
/// full-size environments: the candidate reach bound covers the *whole*
/// loop, so on a real protein the candidate set is large even though each
/// individual site only ever contacts a handful of atoms.  The cell list
/// restores locality without giving up the flat-array, allocation-free
/// evaluation discipline.
///
/// ## Cell-list layout (CSR, no hashing on the hot path)
///
/// Candidates are binned once — at construction, i.e. once per target — into
/// a uniform grid of [`DEFAULT_CELL_SIZE`] cubes covering their bounding
/// box.  The grid is stored structure-of-arrays, CSR-style:
///
/// * `cell_starts[c]..cell_starts[c + 1]` is the slice of `cell_atoms`
///   holding the candidate indices that fall in flat cell `c`
///   (x-major: `c = (cz * ny + cy) * nx + cx`);
/// * `cell_atoms` is a permutation of `0..len()` grouped by cell via a
///   counting sort, **ascending within each cell** so queries can restore
///   global index order cheaply.
///
/// [`EnvCandidates::gather_within`] visits only the cells overlapping a
/// query sphere's bounding box and appends their candidate indices to a
/// caller-owned buffer — a conservative superset of the true neighbours, so
/// kernels that apply their own distance cutoff produce results identical
/// to the linear scan (the scoring crate property-tests this equivalence).
#[derive(Debug, Clone, Default)]
pub struct EnvCandidates {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    radii: Vec<f64>,
    centroid: Vec<bool>,
    /// Largest candidate soft-sphere radius (0 when empty); callers use it
    /// to bound per-site query radii.
    max_radius: f64,
    /// Minimum corner of the candidate bounding box (grid origin).
    origin: Vec3,
    /// Grid dimensions (cells per axis).
    nx: usize,
    ny: usize,
    nz: usize,
    /// CSR row offsets: `cell_starts.len() == nx * ny * nz + 1`.
    cell_starts: Vec<u32>,
    /// Candidate indices grouped by cell, ascending within each cell.
    cell_atoms: Vec<u32>,
}

impl EnvCandidates {
    /// Number of candidate atoms.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no environment atom is in reach of the loop region.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Candidate x coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Candidate y coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Candidate z coordinates.
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// Candidate soft-sphere radii.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Per-candidate centroid flags (`true` = side-chain centroid
    /// pseudo-atom, `false` = backbone heavy atom).
    pub fn centroid_flags(&self) -> &[bool] {
        &self.centroid
    }

    /// Largest candidate soft-sphere radius (0 for an empty set); bounds the
    /// query radius any contact kernel needs per site.
    pub fn max_radius(&self) -> f64 {
        self.max_radius
    }

    /// Bin the candidates into the CSR cell list.  Called once at
    /// construction; O(len) via a counting sort that keeps indices
    /// ascending within each cell.
    fn build_cells(&mut self) {
        let n = self.len();
        self.max_radius = self.radii.iter().fold(0.0f64, |m, &r| m.max(r));
        if n == 0 {
            self.origin = Vec3::ZERO;
            self.nx = 0;
            self.ny = 0;
            self.nz = 0;
            self.cell_starts = vec![0];
            self.cell_atoms.clear();
            return;
        }
        let fold =
            |init: f64, vs: &[f64], f: fn(f64, f64) -> f64| vs.iter().fold(init, |m, &v| f(m, v));
        let min = Vec3::new(
            fold(f64::INFINITY, &self.xs, f64::min),
            fold(f64::INFINITY, &self.ys, f64::min),
            fold(f64::INFINITY, &self.zs, f64::min),
        );
        let max = Vec3::new(
            fold(f64::NEG_INFINITY, &self.xs, f64::max),
            fold(f64::NEG_INFINITY, &self.ys, f64::max),
            fold(f64::NEG_INFINITY, &self.zs, f64::max),
        );
        self.origin = min;
        let cells_along = |lo: f64, hi: f64| ((hi - lo) / DEFAULT_CELL_SIZE).floor() as usize + 1;
        self.nx = cells_along(min.x, max.x);
        self.ny = cells_along(min.y, max.y);
        self.nz = cells_along(min.z, max.z);

        // Counting sort into CSR: count per cell, prefix-sum, then place the
        // atoms in index order so each cell's slice stays ascending.
        let n_cells = self.nx * self.ny * self.nz;
        let mut counts = vec![0u32; n_cells + 1];
        let flat: Vec<usize> = (0..n)
            .map(|i| self.flat_cell_of(Vec3::new(self.xs[i], self.ys[i], self.zs[i])))
            .collect();
        for &c in &flat {
            counts[c + 1] += 1;
        }
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        self.cell_starts = counts.clone();
        self.cell_atoms = vec![0u32; n];
        let mut cursor = counts;
        for (i, &c) in flat.iter().enumerate() {
            self.cell_atoms[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
    }

    /// Flat cell index of a position (which must lie inside the bounding
    /// box used to build the grid).
    #[inline]
    fn flat_cell_of(&self, p: Vec3) -> usize {
        let inv = 1.0 / DEFAULT_CELL_SIZE;
        let cx = (((p.x - self.origin.x) * inv) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin.y) * inv) as usize).min(self.ny - 1);
        let cz = (((p.z - self.origin.z) * inv) as usize).min(self.nz - 1);
        (cz * self.ny + cy) * self.nx + cx
    }

    /// Append to `out` the indices of every candidate in a cell overlapping
    /// the axis-aligned bounding box of the sphere `(p, radius)` — a
    /// conservative superset of the candidates whose centres lie within
    /// `radius` of `p`.  Indices are ascending within each visited cell but
    /// not globally; callers needing a deterministic global order (e.g. for
    /// bit-stable floating-point accumulation) sort the buffer afterwards.
    ///
    /// `out` is *not* cleared: steady-state callers own the buffer and
    /// `clear()` it themselves, so the query allocates nothing once the
    /// buffer's capacity covers the local density high-water mark
    /// (`len()` is always a sufficient capacity).
    ///
    /// Returns the number of indices appended, so a caller that shares one
    /// gather between several consumers (e.g. the VDW environment sum and
    /// the BURIAL contact counts) knows which slice of `out` this query
    /// produced.
    pub fn gather_within(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) -> usize {
        let before = out.len();
        if self.cell_atoms.is_empty() {
            return 0;
        }
        let inv = 1.0 / DEFAULT_CELL_SIZE;
        // Per-axis inclusive cell ranges of the bbox, intersected with the
        // grid; an empty intersection on any axis means no candidates.
        let axis_range = |lo: f64, n: usize, coord: f64| -> Option<(usize, usize)> {
            let a = ((coord - radius - lo) * inv).floor() as i64;
            let b = ((coord + radius - lo) * inv).floor() as i64;
            let a = a.max(0);
            let b = b.min(n as i64 - 1);
            if a > b {
                None
            } else {
                Some((a as usize, b as usize))
            }
        };
        let Some((x0, x1)) = axis_range(self.origin.x, self.nx, p.x) else {
            return 0;
        };
        let Some((y0, y1)) = axis_range(self.origin.y, self.ny, p.y) else {
            return 0;
        };
        let Some((z0, z1)) = axis_range(self.origin.z, self.nz, p.z) else {
            return 0;
        };
        for cz in z0..=z1 {
            for cy in y0..=y1 {
                let row = (cz * self.ny + cy) * self.nx;
                let start = self.cell_starts[row + x0] as usize;
                let end = self.cell_starts[row + x1 + 1] as usize;
                // Cells are contiguous along x, so one slice covers the
                // whole x-run of this (y, z) row.
                out.extend_from_slice(&self.cell_atoms[start..end]);
            }
        }
        out.len() - before
    }

    /// Count how many of the candidate `indices` have their centre within
    /// `radius` of `p` — the exact-distance filter a contact-number consumer
    /// applies to a (conservative) [`EnvCandidates::gather_within`] result.
    /// Because the count is an integer, any superset of the true neighbours
    /// yields the identical value, so a gather performed at a larger radius
    /// for another consumer can be shared without error.
    pub fn count_within(&self, p: Vec3, radius: f64, indices: &[u32]) -> u32 {
        let r2 = radius * radius;
        let mut n = 0u32;
        for &i in indices {
            let i = i as usize;
            let dx = p.x - self.xs[i];
            let dy = p.y - self.ys[i];
            let dz = p.z - self.zs[i];
            if dx * dx + dy * dy + dz * dz <= r2 {
                n += 1;
            }
        }
        n
    }

    /// The explicitly-wide [`EnvCandidates::count_within`]: four gathered
    /// candidates' squared distances per iteration in wide-`f64` lanes,
    /// with a scalar tail.  Per lane it performs exactly the scalar pass's
    /// subtractions, products and left-associated `dx·dx + dy·dy + dz·dz`
    /// accumulation, and the `d² <= r²` test is the same ordered
    /// comparison — and since the result is an integer *count*, the wide
    /// pass is trivially identical to [`EnvCandidates::count_within`] on
    /// any input.
    #[cfg(feature = "simd")]
    pub fn count_within_wide(&self, p: Vec3, radius: f64, indices: &[u32]) -> u32 {
        use wide::f64x4;
        const W: usize = wide::f64x4::LANES;
        let r2 = f64x4::splat(radius * radius);
        let px = f64x4::splat(p.x);
        let py = f64x4::splat(p.y);
        let pz = f64x4::splat(p.z);
        let mut n = 0u32;
        let chunks = indices.len() / W;
        for c in 0..chunks {
            let idx = &indices[c * W..c * W + W];
            let gather = |src: &[f64]| {
                f64x4::from_array([
                    src[idx[0] as usize],
                    src[idx[1] as usize],
                    src[idx[2] as usize],
                    src[idx[3] as usize],
                ])
            };
            let dx = px - gather(&self.xs);
            let dy = py - gather(&self.ys);
            let dz = pz - gather(&self.zs);
            let d2 = dx * dx + dy * dy + dz * dz;
            n += d2.le_bitmask(r2).count_ones();
        }
        for &i in &indices[chunks * W..] {
            let i = i as usize;
            let dx = p.x - self.xs[i];
            let dy = p.y - self.ys[i];
            let dz = p.z - self.zs[i];
            if dx * dx + dy * dy + dz * dz <= radius * radius {
                n += 1;
            }
        }
        n
    }

    /// Exhaustive linear-scan count of the candidates whose centre lies
    /// within `radius` of `p` — the reference implementation any cell-list
    /// path must match exactly.
    pub fn count_within_linear(&self, p: Vec3, radius: f64) -> u32 {
        let r2 = radius * radius;
        let mut n = 0u32;
        for i in 0..self.len() {
            let dx = p.x - self.xs[i];
            let dy = p.y - self.ys[i];
            let dz = p.z - self.zs[i];
            if dx * dx + dy * dy + dz * dz <= r2 {
                n += 1;
            }
        }
        n
    }
}

/// Default grid cell size (Å).  Chosen near the typical clash cutoff so a
/// query touches at most 27 cells.
pub const DEFAULT_CELL_SIZE: f64 = 4.0;

impl Environment {
    /// Build an environment (and its spatial index) from an atom list.
    pub fn new(atoms: Vec<EnvAtom>) -> Self {
        let grid = SpatialGrid::build(&atoms, DEFAULT_CELL_SIZE);
        Environment { atoms, grid }
    }

    /// An environment with no atoms (loops on an isolated peptide).
    pub fn empty() -> Self {
        Environment::new(Vec::new())
    }

    /// Number of environment atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the environment has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All atoms.
    pub fn atoms(&self) -> &[EnvAtom] {
        &self.atoms
    }

    /// Visit every environment atom whose *centre* lies within `radius` of
    /// `p`.
    pub fn for_each_within<F: FnMut(&EnvAtom)>(&self, p: Vec3, radius: f64, mut f: F) {
        let mut scratch = Vec::with_capacity(32);
        self.grid.candidate_indices(p, radius, &mut scratch);
        let r2 = radius * radius;
        for &i in &scratch {
            let a = &self.atoms[i as usize];
            if a.position.distance_sq(p) <= r2 {
                f(a);
            }
        }
    }

    /// Collect the environment atoms within `radius` of `p`.
    pub fn neighbors_within(&self, p: Vec3, radius: f64) -> Vec<EnvAtom> {
        let mut out = Vec::new();
        self.for_each_within(p, radius, |a| out.push(*a));
        out
    }

    /// Number of environment atoms within `radius` of `p`; a cheap measure
    /// of how buried a position is.
    pub fn burial_count(&self, p: Vec3, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(p, radius, |_| n += 1);
        n
    }

    /// Collect a flat SoA candidate set of every atom whose centre lies
    /// within `radius` of `center`, together with its CSR cell list.
    /// Computed once per loop target (the caller passes a conservative reach
    /// bound); the scoring kernels then query the cell list per site (or
    /// scan the arrays linearly) with no per-evaluation allocation.
    pub fn candidates_within(&self, center: Vec3, radius: f64) -> EnvCandidates {
        let mut out = EnvCandidates::default();
        let r2 = radius * radius;
        for a in &self.atoms {
            if a.position.distance_sq(center) <= r2 {
                out.xs.push(a.position.x);
                out.ys.push(a.position.y);
                out.zs.push(a.position.z);
                out.radii.push(a.radius);
                out.centroid.push(a.is_centroid);
            }
        }
        out.build_cells();
        out
    }

    /// Minimum distance from `p` to any environment atom centre, or `None`
    /// when the environment is empty.  (Exact: falls back to a full scan, so
    /// use for diagnostics rather than inner loops.)
    pub fn min_distance(&self, p: Vec3) -> Option<f64> {
        self.atoms
            .iter()
            .map(|a| a.position.distance(p))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of_atoms(n: i32, spacing: f64) -> Vec<EnvAtom> {
        let mut atoms = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    atoms.push(EnvAtom::backbone(
                        Vec3::new(x as f64 * spacing, y as f64 * spacing, z as f64 * spacing),
                        1.7,
                    ));
                }
            }
        }
        atoms
    }

    #[test]
    fn empty_environment() {
        let env = Environment::empty();
        assert!(env.is_empty());
        assert_eq!(env.len(), 0);
        assert_eq!(env.burial_count(Vec3::ZERO, 10.0), 0);
        assert!(env.min_distance(Vec3::ZERO).is_none());
        assert!(env.neighbors_within(Vec3::ZERO, 5.0).is_empty());
    }

    #[test]
    fn neighbor_query_matches_brute_force() {
        let atoms = grid_of_atoms(5, 2.5);
        let env = Environment::new(atoms.clone());
        for &(p, r) in &[
            (Vec3::new(5.0, 5.0, 5.0), 3.0),
            (Vec3::new(0.0, 0.0, 0.0), 4.5),
            (Vec3::new(12.0, 1.0, 6.0), 6.0),
            (Vec3::new(-3.0, -3.0, -3.0), 2.0),
            (Vec3::new(6.1, 6.1, 6.1), 0.5),
        ] {
            let brute: usize = atoms.iter().filter(|a| a.position.distance(p) <= r).count();
            assert_eq!(env.burial_count(p, r), brute, "query at {p} r={r}");
        }
    }

    #[test]
    fn neighbors_within_returns_actual_atoms() {
        let atoms = vec![
            EnvAtom::backbone(Vec3::ZERO, 1.7),
            EnvAtom::centroid(Vec3::new(1.0, 0.0, 0.0), 2.3),
            EnvAtom::backbone(Vec3::new(10.0, 0.0, 0.0), 1.7),
        ];
        let env = Environment::new(atoms);
        let near = env.neighbors_within(Vec3::ZERO, 2.0);
        assert_eq!(near.len(), 2);
        assert!(near.iter().any(|a| a.is_centroid));
        let far = env.neighbors_within(Vec3::new(10.0, 0.0, 0.0), 0.5);
        assert_eq!(far.len(), 1);
        assert!(!far[0].is_centroid);
    }

    #[test]
    fn min_distance_is_exact() {
        let atoms = vec![
            EnvAtom::backbone(Vec3::new(3.0, 0.0, 0.0), 1.7),
            EnvAtom::backbone(Vec3::new(0.0, 4.0, 0.0), 1.7),
        ];
        let env = Environment::new(atoms);
        assert!((env.min_distance(Vec3::ZERO).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn query_radius_larger_than_grid_span_is_safe() {
        let env = Environment::new(grid_of_atoms(3, 3.0));
        // Radius covering everything.
        assert_eq!(env.burial_count(Vec3::new(3.0, 3.0, 3.0), 100.0), 27);
    }

    #[test]
    fn gather_within_is_a_superset_of_true_neighbors() {
        let atoms = grid_of_atoms(6, 2.1);
        let env = Environment::new(atoms);
        let cand = env.candidates_within(Vec3::new(5.0, 5.0, 5.0), 100.0);
        assert_eq!(cand.len(), 216);
        let mut buf = Vec::new();
        for &(p, r) in &[
            (Vec3::new(5.0, 5.0, 5.0), 3.0),
            (Vec3::new(0.0, 0.0, 0.0), 4.5),
            (Vec3::new(10.6, 1.0, 6.0), 6.0),
            (Vec3::new(-9.0, -9.0, -9.0), 2.0),
            (Vec3::new(50.0, 50.0, 50.0), 3.0),
            (Vec3::new(6.1, 6.1, 6.1), 0.25),
        ] {
            buf.clear();
            cand.gather_within(p, r, &mut buf);
            // No duplicates.
            let mut sorted = buf.clone();
            sorted.sort_unstable();
            let mut dedup = sorted.clone();
            dedup.dedup();
            assert_eq!(sorted, dedup, "duplicate indices at {p} r={r}");
            // Every true neighbour is gathered.
            let r2 = r * r;
            for i in 0..cand.len() {
                let q = Vec3::new(cand.xs()[i], cand.ys()[i], cand.zs()[i]);
                if q.distance_sq(p) <= r2 {
                    assert!(
                        buf.contains(&(i as u32)),
                        "missed neighbour {i} at {p} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_candidates_gather_nothing() {
        let env = Environment::empty();
        let cand = env.candidates_within(Vec3::ZERO, 50.0);
        assert!(cand.is_empty());
        assert_eq!(cand.max_radius(), 0.0);
        let mut buf = Vec::new();
        cand.gather_within(Vec3::ZERO, 10.0, &mut buf);
        assert!(buf.is_empty());
        // A default (never-built) candidate set behaves the same.
        let default = EnvCandidates::default();
        default.gather_within(Vec3::ZERO, 10.0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn single_cell_candidates_gather_everything_in_range() {
        // All atoms inside one grid cell.
        let atoms = vec![
            EnvAtom::backbone(Vec3::new(0.1, 0.2, 0.3), 1.7),
            EnvAtom::centroid(Vec3::new(0.4, 0.1, 0.2), 2.3),
            EnvAtom::backbone(Vec3::new(0.2, 0.3, 0.1), 1.5),
        ];
        let env = Environment::new(atoms);
        let cand = env.candidates_within(Vec3::ZERO, 10.0);
        assert_eq!(cand.len(), 3);
        assert!((cand.max_radius() - 2.3).abs() < 1e-12);
        let mut buf = Vec::new();
        cand.gather_within(Vec3::ZERO, 1.0, &mut buf);
        buf.sort_unstable();
        assert_eq!(buf, vec![0, 1, 2]);
        // A query far away touches no cells at all.
        buf.clear();
        cand.gather_within(Vec3::new(100.0, 0.0, 0.0), 1.0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn cell_slices_are_ascending_within_each_cell() {
        let atoms = grid_of_atoms(4, 3.7);
        let env = Environment::new(atoms);
        let cand = env.candidates_within(Vec3::new(5.0, 5.0, 5.0), 100.0);
        let mut buf = Vec::new();
        // Gather one tight query per atom position: each visits a handful
        // of cells whose slices must each be ascending runs.
        for i in 0..cand.len() {
            buf.clear();
            let p = Vec3::new(cand.xs()[i], cand.ys()[i], cand.zs()[i]);
            cand.gather_within(p, 0.5, &mut buf);
            assert!(buf.contains(&(i as u32)));
        }
    }

    #[test]
    fn count_within_matches_linear_reference() {
        let atoms = grid_of_atoms(6, 2.1);
        let env = Environment::new(atoms);
        let cand = env.candidates_within(Vec3::new(5.0, 5.0, 5.0), 100.0);
        let mut buf = Vec::new();
        for &(p, r) in &[
            (Vec3::new(5.0, 5.0, 5.0), 3.0),
            (Vec3::new(0.0, 0.0, 0.0), 4.5),
            (Vec3::new(10.6, 1.0, 6.0), 6.0),
            (Vec3::new(50.0, 50.0, 50.0), 3.0),
        ] {
            buf.clear();
            // Gather at a deliberately larger radius: the superset must not
            // change the exact-distance count.
            let appended = cand.gather_within(p, r + 3.0, &mut buf);
            assert_eq!(appended, buf.len());
            assert_eq!(
                cand.count_within(p, r, &buf),
                cand.count_within_linear(p, r),
                "count mismatch at {p} r={r}"
            );
        }
    }

    #[test]
    fn atom_constructors() {
        let b = EnvAtom::backbone(Vec3::X, 1.6);
        assert!(!b.is_centroid);
        assert_eq!(b.radius, 1.6);
        let c = EnvAtom::centroid(Vec3::Y, 2.5);
        assert!(c.is_centroid);
        assert_eq!(c.position, Vec3::Y);
    }
}
