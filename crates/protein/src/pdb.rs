//! Minimal PDB-format output (and a matching reader) for loop structures.
//!
//! The examples and the Figure 6 harness write best decoys and natives out
//! as PDB `ATOM` records so they can be inspected in any molecular viewer.
//! Only the subset of the format needed for backbone models is implemented.

use crate::amino::AminoAcid;
use crate::backbone::LoopStructure;
use lms_geometry::Vec3;
use std::fmt::Write as _;

/// Render a loop structure as PDB `ATOM` records.
///
/// * `chain` — chain identifier character.
/// * `first_res` — residue number assigned to the first loop residue.
pub fn to_pdb(
    structure: &LoopStructure,
    sequence: &[AminoAcid],
    chain: char,
    first_res: usize,
) -> String {
    assert_eq!(
        structure.n_residues(),
        sequence.len(),
        "structure and sequence must have the same number of residues"
    );
    let mut out = String::new();
    let mut serial = 1usize;
    for (i, (res, aa)) in structure.residues.iter().zip(sequence.iter()).enumerate() {
        let resnum = first_res + i;
        let atoms: Vec<(&str, Vec3)> = {
            let mut v = vec![("N", res.n), ("CA", res.ca), ("C", res.c), ("O", res.o)];
            if let Some(cen) = res.centroid {
                v.push(("CB", cen));
            }
            v
        };
        for (name, pos) in atoms {
            writeln!(
                out,
                "ATOM  {serial:5} {name:<4} {res_name:>3} {chain}{resnum:4}    {x:8.3}{y:8.3}{z:8.3}{occ:6.2}{b:6.2}          {elem:>2}",
                serial = serial,
                name = name,
                res_name = aa.three_letter(),
                chain = chain,
                resnum = resnum,
                x = pos.x,
                y = pos.y,
                z = pos.z,
                occ = 1.0,
                b = 0.0,
                elem = &name[..1],
            )
            .expect("writing to a String cannot fail");
            serial += 1;
        }
    }
    out.push_str("TER\nEND\n");
    out
}

/// A single parsed `ATOM` record.
#[derive(Debug, Clone, PartialEq)]
pub struct PdbAtom {
    /// Atom name (e.g. `"CA"`).
    pub name: String,
    /// Residue three-letter code.
    pub residue: String,
    /// Residue sequence number.
    pub res_seq: usize,
    /// Position.
    pub position: Vec3,
}

/// Parse the `ATOM` records out of PDB-formatted text.  Lines that are not
/// `ATOM` records are ignored; malformed `ATOM` lines produce an error.
pub fn parse_pdb_atoms(text: &str) -> Result<Vec<PdbAtom>, String> {
    let mut atoms = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if !line.starts_with("ATOM") {
            continue;
        }
        if line.len() < 54 {
            return Err(format!("line {}: ATOM record too short", lineno + 1));
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, String> {
            s.trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        let name = line[12..16].trim().to_string();
        let residue = line[17..20].trim().to_string();
        let res_seq = line[22..26]
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("line {}: bad residue number: {e}", lineno + 1))?;
        let x = parse_f(&line[30..38], "x coordinate")?;
        let y = parse_f(&line[38..46], "y coordinate")?;
        let z = parse_f(&line[46..54], "z coordinate")?;
        atoms.push(PdbAtom {
            name,
            residue,
            res_seq,
            position: Vec3::new(x, y, z),
        });
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{AnchorFrame, LoopBuilder, LoopFrame};
    use crate::torsions::Torsions;
    use lms_geometry::deg_to_rad;

    fn sample_structure() -> (LoopStructure, Vec<AminoAcid>) {
        let builder = LoopBuilder::default();
        let sequence = vec![AminoAcid::Ala, AminoAcid::Gly, AminoAcid::Trp];
        let torsions = Torsions::from_pairs(&[
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
            (deg_to_rad(-120.0), deg_to_rad(135.0)),
            (deg_to_rad(-75.0), deg_to_rad(150.0)),
        ]);
        let frame = LoopFrame {
            n_anchor: AnchorFrame::new(
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.458, 0.0, 0.0),
                Vec3::new(2.0, 1.4, 0.0),
            ),
            n_anchor_psi: deg_to_rad(120.0),
            c_anchor: AnchorFrame::new(Vec3::X, Vec3::Y, Vec3::Z),
            c_anchor_phi: deg_to_rad(-65.0),
        };
        (builder.build(&frame, &sequence, &torsions), sequence)
    }

    #[test]
    fn pdb_roundtrip_preserves_backbone_coordinates() {
        let (s, seq) = sample_structure();
        let text = to_pdb(&s, &seq, 'A', 40);
        let atoms = parse_pdb_atoms(&text).unwrap();
        // 4 backbone atoms per residue + CB for non-Gly (2 of 3 residues).
        assert_eq!(atoms.len(), 3 * 4 + 2);
        // First residue's CA matches (to PDB's 3-decimal precision).
        let ca = atoms
            .iter()
            .find(|a| a.name == "CA" && a.res_seq == 40)
            .unwrap();
        assert!(ca.position.max_abs_diff(s.residues[0].ca) < 1e-3);
        assert_eq!(ca.residue, "ALA");
        // Glycine residue has no CB record.
        assert!(!atoms.iter().any(|a| a.name == "CB" && a.res_seq == 41));
        // Residue numbering starts where requested.
        assert_eq!(atoms.iter().map(|a| a.res_seq).min().unwrap(), 40);
        assert_eq!(atoms.iter().map(|a| a.res_seq).max().unwrap(), 42);
    }

    #[test]
    fn pdb_output_has_ter_and_end() {
        let (s, seq) = sample_structure();
        let text = to_pdb(&s, &seq, 'B', 1);
        assert!(text.contains("TER"));
        assert!(text.trim_end().ends_with("END"));
        assert!(text.contains(" B"), "chain identifier present");
    }

    #[test]
    fn parser_ignores_non_atom_lines_and_flags_bad_ones() {
        let good = "HEADER test\nATOM      1 N    ALA A  40       1.000   2.000   3.000  1.00  0.00           N\nEND\n";
        let atoms = parse_pdb_atoms(good).unwrap();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].position, Vec3::new(1.0, 2.0, 3.0));

        let truncated = "ATOM      1 N    ALA A  40       1.000\n";
        assert!(parse_pdb_atoms(truncated).is_err());

        let bad_number =
            "ATOM      1 N    ALA A  4x       1.000   2.000   3.000  1.00  0.00           N\n";
        assert!(parse_pdb_atoms(bad_number).is_err());
    }

    #[test]
    #[should_panic]
    fn mismatched_sequence_panics() {
        let (s, _) = sample_structure();
        let _ = to_pdb(&s, &[AminoAcid::Ala], 'A', 1);
    }
}
