//! # lms-protein
//!
//! Protein model substrate for the loop-modeling suite: amino-acid types,
//! torsion-angle loop representation, NeRF backbone construction, the fixed
//! protein environment with a spatial index, Ramachandran torsion
//! statistics, the 53-target synthetic long-loop benchmark library, and a
//! minimal PDB writer/reader.
//!
//! ## Quick example
//!
//! ```
//! use lms_protein::{BenchmarkLibrary, LoopBuilder};
//!
//! // Generate the paper's 1cex(40:51) target (synthetic stand-in) and
//! // rebuild its native loop from its torsion vector.
//! let library = BenchmarkLibrary::standard();
//! let target = library.target_by_name("1cex").expect("1cex is in the benchmark");
//! let builder = LoopBuilder::default();
//! let native = target.build(&builder, &target.native_torsions);
//! assert!(target.rmsd_to_native(&native) < 1e-9);
//! assert!(target.closure_deviation(&native) < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod amino;
pub mod backbone;
#[cfg(feature = "simd")]
pub mod backbone_wide;
pub mod benchmark;
pub mod environment;
pub mod loop_def;
pub mod pdb;
pub mod ramachandran;
pub mod torsions;

pub use amino::{format_sequence, parse_sequence, AminoAcid, RamaClass};
pub use backbone::{
    build_segment_de_novo, AnchorFrame, BackboneGeometry, LoopBuilder, LoopFrame, LoopStructure,
    ResidueAtoms,
};
#[cfg(feature = "simd")]
pub use backbone_wide::{sin_cos_lanes, SpineKernel, WideVec3};
pub use benchmark::{standard_specs, BenchmarkLibrary, TargetSpec};
pub use environment::{EnvAtom, EnvCandidates, Environment};
pub use loop_def::{LoopTarget, ENV_CONTACT_MARGIN};
pub use pdb::{parse_pdb_atoms, to_pdb, PdbAtom};
pub use ramachandran::{RamaBasin, RamaLibrary, RamaModel};
pub use torsions::{TorsionKind, Torsions};
