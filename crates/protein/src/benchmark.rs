//! The synthetic long-loop benchmark library.
//!
//! The paper evaluates on the 53 loops of 10+ residues from the filtered
//! Jacobson loop-decoy benchmark.  Those are real crystal structures we do
//! not ship; instead this module generates, deterministically from a seed, a
//! set of 53 synthetic targets with the same composition (27 × 10-residue,
//! 17 × 11-residue, 9 × 12-residue loops) and the same names for the loops
//! the paper discusses individually (1cex 40:51, 1akz 181:192, the buried
//! 1xyz 813:824, 1ixh 160:171, 153l 98:109, 1dim 213:224, 3pte 91:101,
//! 5pti 7:17).  Each target is a self-consistent loop problem: a native
//! conformation drawn from Ramachandran statistics, anchors taken from a
//! host segment built around it, and an environment shell of pseudo-atoms
//! that the native does not clash with (except for the deliberately buried
//! 1xyz case, which gets a dense, close shell).  See DESIGN.md for why this
//! substitution preserves the behaviour the paper measures.

use crate::amino::AminoAcid;
use crate::backbone::{build_segment_de_novo, AnchorFrame, LoopBuilder, LoopFrame, LoopStructure};
use crate::environment::{EnvAtom, Environment};
use crate::loop_def::LoopTarget;
use crate::ramachandran::RamaLibrary;
use crate::torsions::Torsions;
use lms_geometry::{StreamRngFactory, Vec3};
use rand::Rng;
use std::sync::Arc;

/// Number of stem residues built on each side of the loop to derive anchor
/// geometry and near-anchor environment atoms.
const STEM_RESIDUES: usize = 3;

/// Minimum clearance (Å) required between the native loop atoms and any
/// generated environment shell atom for ordinary (surface) loops.
const SURFACE_CLEARANCE: f64 = 3.8;

/// Clearance for the deliberately buried target — tight enough that even the
/// native picks up soft-sphere overlap, as the paper reports for 1xyz.
const BURIED_CLEARANCE: f64 = 3.0;

/// Static description of one benchmark target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetSpec {
    /// Host protein name (PDB-style identifier).
    pub name: &'static str,
    /// First loop residue number in host numbering.
    pub start: usize,
    /// Loop length in residues.
    pub len: usize,
    /// Whether the loop should be generated deeply buried.
    pub buried: bool,
}

impl TargetSpec {
    /// Last loop residue number (inclusive).
    pub fn end(&self) -> usize {
        self.start + self.len - 1
    }

    /// Label in the paper's `name(start:end)` convention.
    pub fn label(&self) -> String {
        format!("{}({}:{})", self.name, self.start, self.end())
    }
}

/// The 53-target specification mirroring the paper's benchmark composition:
/// 27 ten-residue, 17 eleven-residue and 9 twelve-residue loops.
pub fn standard_specs() -> Vec<TargetSpec> {
    let mut specs = Vec::with_capacity(53);

    // Twelve-residue loops (9) — the six from Table I plus three fillers.
    let twelve: [(&'static str, usize, bool); 9] = [
        ("1cex", 40, false),
        ("1akz", 181, false),
        ("1xyz", 813, true),
        ("1ixh", 160, false),
        ("153l", 98, false),
        ("1dim", 213, false),
        ("1arb", 182, false),
        ("2exo", 293, false),
        ("1tml", 243, false),
    ];
    for (name, start, buried) in twelve {
        specs.push(TargetSpec {
            name,
            start,
            len: 12,
            buried,
        });
    }

    // Eleven-residue loops (17) — includes 3pte(91:101) and 5pti(7:17).
    let eleven: [(&'static str, usize); 17] = [
        ("3pte", 91),
        ("5pti", 7),
        ("1bhe", 121),
        ("1cb0", 40),
        ("1dpg", 354),
        ("1eco", 35),
        ("1f46", 64),
        ("1g8f", 202),
        ("1hfc", 155),
        ("1iib", 71),
        ("1jp4", 90),
        ("1k7c", 161),
        ("1lki", 62),
        ("1m3s", 117),
        ("1nwp", 15),
        ("1oyc", 203),
        ("1pbe", 130),
    ];
    for (name, start) in eleven {
        specs.push(TargetSpec {
            name,
            start,
            len: 11,
            buried: false,
        });
    }

    // Ten-residue loops (27).
    let ten: [(&'static str, usize); 27] = [
        ("1ads", 280),
        ("1bkf", 13),
        ("1c5e", 80),
        ("1cnv", 110),
        ("1cs6", 145),
        ("1d8w", 334),
        ("1dys", 290),
        ("1egu", 200),
        ("1ezm", 121),
        ("1f74", 54),
        ("1g12", 88),
        ("1h4a", 301),
        ("1i7w", 43),
        ("1j53", 160),
        ("1k20", 72),
        ("1l8a", 215),
        ("1m40", 99),
        ("1n29", 187),
        ("1o08", 140),
        ("1p1m", 66),
        ("1qlw", 231),
        ("1r6x", 19),
        ("1sbp", 266),
        ("1t1d", 111),
        ("1u09", 84),
        ("1v7z", 177),
        ("1w66", 36),
    ];
    for (name, start) in ten {
        specs.push(TargetSpec {
            name,
            start,
            len: 10,
            buried: false,
        });
    }

    debug_assert_eq!(specs.len(), 53);
    specs
}

/// Deterministic generator for synthetic benchmark targets.
#[derive(Debug, Clone)]
pub struct BenchmarkLibrary {
    seed: u64,
    rama: RamaLibrary,
    builder: LoopBuilder,
}

impl BenchmarkLibrary {
    /// Create a library rooted at a master seed.  The same seed always
    /// produces byte-identical targets.
    pub fn new(seed: u64) -> Self {
        BenchmarkLibrary {
            seed,
            rama: RamaLibrary::default(),
            builder: LoopBuilder::default(),
        }
    }

    /// The library used throughout the experiment harness.
    pub fn standard() -> Self {
        BenchmarkLibrary::new(2010)
    }

    /// Specifications of all 53 targets.
    pub fn specs(&self) -> Vec<TargetSpec> {
        standard_specs()
    }

    /// Generate every target in the standard benchmark.
    pub fn all_targets(&self) -> Vec<LoopTarget> {
        self.specs().iter().map(|s| self.generate(s)).collect()
    }

    /// Generate one target by its host-protein name (e.g. `"1cex"`).
    pub fn target_by_name(&self, name: &str) -> Option<LoopTarget> {
        self.specs()
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .map(|s| self.generate(s))
    }

    /// Generate the target described by `spec`.
    pub fn generate(&self, spec: &TargetSpec) -> LoopTarget {
        // Every target derives its own stream family from the master seed
        // and a stable hash of the name, so the library can be generated in
        // any order (or in parallel) with identical results.
        let name_hash = stable_name_hash(spec.name);
        let factory = StreamRngFactory::new(self.seed).derive(name_hash);

        for attempt in 0..64 {
            if let Some(target) = self.try_generate(spec, &factory, attempt) {
                return target;
            }
        }
        panic!(
            "failed to generate an acceptable synthetic target for {} after 64 attempts",
            spec.label()
        );
    }

    #[allow(clippy::needless_range_loop)] // parallel index into sequence and torsions
    fn try_generate(
        &self,
        spec: &TargetSpec,
        factory: &StreamRngFactory,
        attempt: u64,
    ) -> Option<LoopTarget> {
        let mut rng = factory.stream(attempt, 0);
        let total_len = spec.len + 2 * STEM_RESIDUES;

        // -- Sequence -----------------------------------------------------
        let sequence = self.random_sequence(&mut rng, total_len, spec.buried);

        // -- Host segment torsions ----------------------------------------
        let mut torsions = Torsions::zeros(total_len);
        for i in 0..total_len {
            let model = self.rama.model(sequence[i].rama_class());
            let (phi, psi) = model.sample(&mut rng);
            torsions.set_phi(i, phi);
            torsions.set_psi(i, psi);
        }

        // -- Build the host segment and carve out the loop -----------------
        let segment = build_segment_de_novo(&self.builder, &sequence, &torsions);
        if !segment_is_self_consistent(&segment) {
            return None;
        }

        let loop_first = STEM_RESIDUES;
        let loop_last = STEM_RESIDUES + spec.len - 1;
        let post_anchor = loop_last + 1;

        let pre = &segment.residues[loop_first - 1];
        let post = &segment.residues[post_anchor];
        let frame = LoopFrame {
            n_anchor: AnchorFrame::new(pre.n, pre.ca, pre.c),
            n_anchor_psi: torsions.psi(loop_first - 1),
            c_anchor: AnchorFrame::new(post.n, post.ca, post.c),
            c_anchor_phi: torsions.phi(post_anchor),
        };

        let loop_sequence: Vec<AminoAcid> = sequence[loop_first..=loop_last].to_vec();
        let native_pairs: Vec<(f64, f64)> =
            (loop_first..=loop_last).map(|i| torsions.pair(i)).collect();
        let native_torsions = Torsions::from_pairs(&native_pairs);

        let native_structure = self.builder.build(&frame, &loop_sequence, &native_torsions);
        // Sanity: the carved-out native must close onto the post-stem anchor
        // essentially exactly (same math built it).
        if native_structure.end_frame.rms_distance(&frame.c_anchor) > 1e-6 {
            return None;
        }
        if has_internal_clashes(&native_structure) {
            return None;
        }

        // -- Environment ---------------------------------------------------
        let native_atoms = native_structure.backbone_atoms();
        let mut env_atoms = Vec::new();

        // Stem residues become fixed environment atoms (skipping the anchor
        // backbone itself is unnecessary — the loop is bonded to it, and the
        // VDW function excludes contacts below the bonded-distance floor).
        for (i, r) in segment.residues.iter().enumerate() {
            if (loop_first..=loop_last).contains(&i) {
                continue;
            }
            for a in r.backbone() {
                env_atoms.push(EnvAtom::backbone(a, 1.7));
            }
            if let Some(c) = r.centroid {
                env_atoms.push(EnvAtom::centroid(c, sequence[i].centroid_radius()));
            }
        }

        // Shell of pseudo-atoms approximating the rest of the protein.
        let clearance = if spec.buried {
            BURIED_CLEARANCE
        } else {
            SURFACE_CLEARANCE
        };
        let shell_per_residue = if spec.buried { 14 } else { 6 };
        let n_shell = shell_per_residue * spec.len;
        let mut placed = 0usize;
        let mut tries = 0usize;
        while placed < n_shell && tries < n_shell * 80 {
            tries += 1;
            let anchor_atom = native_atoms[rng.gen_range(0..native_atoms.len())];
            let dir = random_unit_vector(&mut rng);
            let dist = if spec.buried {
                clearance + rng.gen::<f64>() * 3.0
            } else {
                clearance + rng.gen::<f64>() * 5.0
            };
            let pos = anchor_atom + dir * dist;
            let min_to_native = native_atoms
                .iter()
                .map(|a| a.distance(pos))
                .fold(f64::INFINITY, f64::min);
            if min_to_native < clearance {
                continue;
            }
            // Keep shell atoms from piling on top of each other.
            let too_close_to_shell = env_atoms
                .iter()
                .rev()
                .take(256)
                .any(|e| e.position.distance(pos) < 2.6);
            if too_close_to_shell {
                continue;
            }
            env_atoms.push(EnvAtom::backbone(pos, 1.7));
            placed += 1;
        }
        if placed < n_shell / 2 {
            // The geometry left too little room for the shell; try again.
            return None;
        }

        Some(LoopTarget {
            name: spec.name.to_string(),
            start_res: spec.start,
            end_res: spec.end(),
            sequence: loop_sequence,
            frame,
            environment: Arc::new(Environment::new(env_atoms)),
            native_torsions,
            native_structure,
            buried: spec.buried,
            env_cache: Default::default(),
        })
    }

    fn random_sequence<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        len: usize,
        buried: bool,
    ) -> Vec<AminoAcid> {
        (0..len)
            .map(|_| loop {
                let aa = AminoAcid::from_index(rng.gen_range(0..20));
                // Keep proline rare (it restricts closure) and bias buried
                // loops towards hydrophobic residues.
                if aa.is_proline() && rng.gen::<f64>() > 0.3 {
                    continue;
                }
                if buried && aa.hydropathy() < 0.0 && rng.gen::<f64>() > 0.35 {
                    continue;
                }
                break aa;
            })
            .collect()
    }
}

/// Stable 64-bit hash of a target name (FNV-1a), independent of the std
/// hasher's randomisation.
fn stable_name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn random_unit_vector<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        );
        let n = v.norm();
        if n > 1e-3 && n <= 1.0 {
            return v / n;
        }
    }
}

/// Reject host segments whose backbone atoms collide badly with themselves
/// (random torsion draws occasionally produce knots).
fn segment_is_self_consistent(segment: &LoopStructure) -> bool {
    !has_internal_clashes(segment)
}

/// Severe internal clash check: any pair of backbone atoms from residues at
/// sequence separation ≥ 2 closer than 2.4 Å.
fn has_internal_clashes(structure: &LoopStructure) -> bool {
    let n = structure.n_residues();
    for i in 0..n {
        for j in (i + 2)..n {
            for a in structure.residues[i].backbone() {
                for b in structure.residues[j].backbone() {
                    if a.distance_sq(b) < 2.4 * 2.4 {
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_composition_matches_paper() {
        let specs = standard_specs();
        assert_eq!(specs.len(), 53);
        assert_eq!(specs.iter().filter(|s| s.len == 10).count(), 27);
        assert_eq!(specs.iter().filter(|s| s.len == 11).count(), 17);
        assert_eq!(specs.iter().filter(|s| s.len == 12).count(), 9);
        // Exactly one buried target: 1xyz.
        let buried: Vec<_> = specs.iter().filter(|s| s.buried).collect();
        assert_eq!(buried.len(), 1);
        assert_eq!(buried[0].name, "1xyz");
        // Names unique.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 53);
    }

    #[test]
    fn paper_labels_are_reproduced() {
        let specs = standard_specs();
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        for expected in [
            "1cex(40:51)",
            "1akz(181:192)",
            "1xyz(813:824)",
            "1ixh(160:171)",
            "153l(98:109)",
            "1dim(213:224)",
            "3pte(91:101)",
            "5pti(7:17)",
        ] {
            assert!(labels.iter().any(|l| l == expected), "missing {expected}");
        }
    }

    #[test]
    fn generated_target_native_closes_and_scores_zero_rmsd() {
        let lib = BenchmarkLibrary::standard();
        let t = lib.target_by_name("1cex").unwrap();
        assert_eq!(t.n_residues(), 12);
        assert_eq!(t.label(), "1cex(40:51)");
        let builder = LoopBuilder::default();
        let built = t.build(&builder, &t.native_torsions);
        assert!(t.rmsd_to_native(&built) < 1e-9);
        assert!(t.closure_deviation(&built) < 1e-6);
    }

    #[test]
    fn generation_is_deterministic() {
        let lib1 = BenchmarkLibrary::new(99);
        let lib2 = BenchmarkLibrary::new(99);
        let a = lib1.target_by_name("5pti").unwrap();
        let b = lib2.target_by_name("5pti").unwrap();
        assert_eq!(a.native_torsions, b.native_torsions);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.environment.len(), b.environment.len());
        // Different seeds give different targets.
        let c = BenchmarkLibrary::new(100).target_by_name("5pti").unwrap();
        assert_ne!(a.native_torsions, c.native_torsions);
    }

    #[test]
    fn native_does_not_clash_with_surface_environment() {
        let lib = BenchmarkLibrary::standard();
        let t = lib.target_by_name("3pte").unwrap();
        assert!(!t.buried);
        // Every native backbone atom keeps the surface clearance to the
        // generated shell (stem atoms bonded to the anchors may be closer).
        let shell_min: f64 = t
            .native_structure
            .backbone_atoms()
            .iter()
            .map(|a| {
                t.environment
                    .atoms()
                    .iter()
                    .filter(|e| !e.is_centroid || e.radius > 0.0)
                    .map(|e| e.position.distance(*a))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::INFINITY, f64::min);
        // Bonded stem neighbours sit at covalent distance, so only require
        // that the shell did not generate atoms *inside* the loop.
        assert!(shell_min > 1.0, "shell min distance {shell_min}");
    }

    #[test]
    fn buried_target_has_denser_environment() {
        let lib = BenchmarkLibrary::standard();
        let buried = lib.target_by_name("1xyz").unwrap();
        let surface = lib.target_by_name("1cex").unwrap();
        assert!(buried.buried);
        assert!(
            buried.environment.len() > surface.environment.len(),
            "buried {} <= surface {}",
            buried.environment.len(),
            surface.environment.len()
        );
        // Burial count around the buried native loop is higher.
        let burial = |t: &LoopTarget| -> usize {
            t.native_structure
                .ca_atoms()
                .iter()
                .map(|ca| t.environment.burial_count(*ca, 8.0))
                .sum()
        };
        assert!(burial(&buried) > burial(&surface));
    }

    #[test]
    fn unknown_target_name_returns_none() {
        let lib = BenchmarkLibrary::standard();
        assert!(lib.target_by_name("9zzz").is_none());
        assert!(
            lib.target_by_name("1CEX").is_some(),
            "name lookup is case-insensitive"
        );
    }

    #[test]
    fn stable_hash_differs_between_names() {
        assert_ne!(stable_name_hash("1cex"), stable_name_hash("1akz"));
        assert_eq!(stable_name_hash("1cex"), stable_name_hash("1cex"));
    }

    #[test]
    #[ignore = "generates all 53 targets; run with --ignored for the full check"]
    fn all_targets_generate_successfully() {
        let lib = BenchmarkLibrary::standard();
        let targets = lib.all_targets();
        assert_eq!(targets.len(), 53);
        let builder = LoopBuilder::default();
        for t in &targets {
            let built = t.build(&builder, &t.native_torsions);
            assert!(t.rmsd_to_native(&built) < 1e-9, "{}", t.label());
            assert!(t.closure_deviation(&built) < 1e-6, "{}", t.label());
            assert!(t.environment.len() > 20, "{}", t.label());
        }
    }
}
