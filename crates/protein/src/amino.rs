//! Amino-acid types and the per-residue parameters the backbone scoring
//! functions need (side chains are only represented implicitly, through a
//! per-residue-type centroid pseudo-atom, exactly as in the paper's
//! backbone-only scoring functions).

use std::fmt;
use std::str::FromStr;

/// The twenty standard amino acids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AminoAcid {
    Ala,
    Arg,
    Asn,
    Asp,
    Cys,
    Gln,
    Glu,
    Gly,
    His,
    Ile,
    Leu,
    Lys,
    Met,
    Phe,
    Pro,
    Ser,
    Thr,
    Trp,
    Tyr,
    Val,
}

/// Error returned when parsing an amino-acid code fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAminoAcidError(pub String);

impl fmt::Display for ParseAminoAcidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown amino acid code: {:?}", self.0)
    }
}

impl std::error::Error for ParseAminoAcidError {}

impl AminoAcid {
    /// All twenty amino acids, in alphabetical three-letter-code order.
    pub const ALL: [AminoAcid; 20] = [
        AminoAcid::Ala,
        AminoAcid::Arg,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Cys,
        AminoAcid::Gln,
        AminoAcid::Glu,
        AminoAcid::Gly,
        AminoAcid::His,
        AminoAcid::Ile,
        AminoAcid::Leu,
        AminoAcid::Lys,
        AminoAcid::Met,
        AminoAcid::Phe,
        AminoAcid::Pro,
        AminoAcid::Ser,
        AminoAcid::Thr,
        AminoAcid::Trp,
        AminoAcid::Tyr,
        AminoAcid::Val,
    ];

    /// One-letter code.
    pub fn one_letter(self) -> char {
        match self {
            AminoAcid::Ala => 'A',
            AminoAcid::Arg => 'R',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Cys => 'C',
            AminoAcid::Gln => 'Q',
            AminoAcid::Glu => 'E',
            AminoAcid::Gly => 'G',
            AminoAcid::His => 'H',
            AminoAcid::Ile => 'I',
            AminoAcid::Leu => 'L',
            AminoAcid::Lys => 'K',
            AminoAcid::Met => 'M',
            AminoAcid::Phe => 'F',
            AminoAcid::Pro => 'P',
            AminoAcid::Ser => 'S',
            AminoAcid::Thr => 'T',
            AminoAcid::Trp => 'W',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Val => 'V',
        }
    }

    /// Three-letter code (upper case, as used in PDB files).
    pub fn three_letter(self) -> &'static str {
        match self {
            AminoAcid::Ala => "ALA",
            AminoAcid::Arg => "ARG",
            AminoAcid::Asn => "ASN",
            AminoAcid::Asp => "ASP",
            AminoAcid::Cys => "CYS",
            AminoAcid::Gln => "GLN",
            AminoAcid::Glu => "GLU",
            AminoAcid::Gly => "GLY",
            AminoAcid::His => "HIS",
            AminoAcid::Ile => "ILE",
            AminoAcid::Leu => "LEU",
            AminoAcid::Lys => "LYS",
            AminoAcid::Met => "MET",
            AminoAcid::Phe => "PHE",
            AminoAcid::Pro => "PRO",
            AminoAcid::Ser => "SER",
            AminoAcid::Thr => "THR",
            AminoAcid::Trp => "TRP",
            AminoAcid::Tyr => "TYR",
            AminoAcid::Val => "VAL",
        }
    }

    /// Parse a one-letter code.
    pub fn from_one_letter(c: char) -> Result<AminoAcid, ParseAminoAcidError> {
        AminoAcid::ALL
            .iter()
            .copied()
            .find(|aa| aa.one_letter() == c.to_ascii_uppercase())
            .ok_or_else(|| ParseAminoAcidError(c.to_string()))
    }

    /// Index in `[0, 20)`, stable across runs; used by the knowledge-based
    /// scoring tables.
    pub fn index(self) -> usize {
        AminoAcid::ALL
            .iter()
            .position(|&aa| aa == self)
            .expect("amino acid in ALL")
    }

    /// Build from an index in `[0, 20)`.
    ///
    /// # Panics
    /// Panics if `idx >= 20`.
    pub fn from_index(idx: usize) -> AminoAcid {
        AminoAcid::ALL[idx]
    }

    /// Whether this residue type has no side chain beyond Cβ hydrogens.
    pub fn is_glycine(self) -> bool {
        self == AminoAcid::Gly
    }

    /// Whether this residue type is proline (restricted φ).
    pub fn is_proline(self) -> bool {
        self == AminoAcid::Pro
    }

    /// Radius (Å) of the soft-sphere side-chain centroid pseudo-atom used by
    /// the VDW scoring function.  Values follow the spirit of Zhang et al.
    /// (1997): larger side chains get larger spheres; glycine has no
    /// centroid (radius 0).
    pub fn centroid_radius(self) -> f64 {
        match self {
            AminoAcid::Gly => 0.0,
            AminoAcid::Ala => 1.9,
            AminoAcid::Ser => 2.0,
            AminoAcid::Cys => 2.1,
            AminoAcid::Thr => 2.2,
            AminoAcid::Val => 2.3,
            AminoAcid::Pro => 2.3,
            AminoAcid::Asp => 2.4,
            AminoAcid::Asn => 2.4,
            AminoAcid::Ile => 2.5,
            AminoAcid::Leu => 2.5,
            AminoAcid::Glu => 2.6,
            AminoAcid::Gln => 2.6,
            AminoAcid::Met => 2.6,
            AminoAcid::His => 2.7,
            AminoAcid::Lys => 2.8,
            AminoAcid::Phe => 2.9,
            AminoAcid::Arg => 2.9,
            AminoAcid::Tyr => 3.0,
            AminoAcid::Trp => 3.2,
        }
    }

    /// Distance (Å) from Cα at which the side-chain centroid pseudo-atom is
    /// placed along the Cβ direction.  Glycine returns 0 (no centroid).
    pub fn centroid_distance(self) -> f64 {
        match self {
            AminoAcid::Gly => 0.0,
            AminoAcid::Ala => 1.5,
            AminoAcid::Ser | AminoAcid::Cys | AminoAcid::Thr | AminoAcid::Val | AminoAcid::Pro => {
                1.9
            }
            AminoAcid::Asp | AminoAcid::Asn | AminoAcid::Ile | AminoAcid::Leu => 2.3,
            AminoAcid::Glu | AminoAcid::Gln | AminoAcid::Met | AminoAcid::His => 2.7,
            AminoAcid::Lys | AminoAcid::Phe => 3.0,
            AminoAcid::Arg | AminoAcid::Tyr => 3.4,
            AminoAcid::Trp => 3.3,
        }
    }

    /// Kyte-Doolittle hydropathy index, used by the synthetic benchmark
    /// generator to bias buried loops towards hydrophobic sequences.
    pub fn hydropathy(self) -> f64 {
        match self {
            AminoAcid::Ile => 4.5,
            AminoAcid::Val => 4.2,
            AminoAcid::Leu => 3.8,
            AminoAcid::Phe => 2.8,
            AminoAcid::Cys => 2.5,
            AminoAcid::Met => 1.9,
            AminoAcid::Ala => 1.8,
            AminoAcid::Gly => -0.4,
            AminoAcid::Thr => -0.7,
            AminoAcid::Ser => -0.8,
            AminoAcid::Trp => -0.9,
            AminoAcid::Tyr => -1.3,
            AminoAcid::Pro => -1.6,
            AminoAcid::His => -3.2,
            AminoAcid::Glu => -3.5,
            AminoAcid::Gln => -3.5,
            AminoAcid::Asp => -3.5,
            AminoAcid::Asn => -3.5,
            AminoAcid::Lys => -3.9,
            AminoAcid::Arg => -4.5,
        }
    }

    /// The Ramachandran residue class used by the torsion statistics.
    pub fn rama_class(self) -> RamaClass {
        match self {
            AminoAcid::Gly => RamaClass::Glycine,
            AminoAcid::Pro => RamaClass::Proline,
            _ => RamaClass::General,
        }
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.three_letter())
    }
}

impl FromStr for AminoAcid {
    type Err = ParseAminoAcidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        if up.len() == 1 {
            return AminoAcid::from_one_letter(up.chars().next().unwrap());
        }
        AminoAcid::ALL
            .iter()
            .copied()
            .find(|aa| aa.three_letter() == up)
            .ok_or(ParseAminoAcidError(up))
    }
}

/// Torsion-statistics class of a residue: glycine and proline have their own
/// backbone torsion distributions; every other residue type shares the
/// "general" distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RamaClass {
    /// All residues except glycine and proline.
    General,
    /// Glycine (no Cβ, symmetric Ramachandran map).
    Glycine,
    /// Proline (φ restricted near -65°).
    Proline,
}

impl RamaClass {
    /// Stable index in `[0, 3)` used by the scoring tables.
    pub fn index(self) -> usize {
        match self {
            RamaClass::General => 0,
            RamaClass::Glycine => 1,
            RamaClass::Proline => 2,
        }
    }

    /// Number of distinct classes.
    pub const COUNT: usize = 3;
}

/// Parse a protein sequence given in one-letter codes.
pub fn parse_sequence(s: &str) -> Result<Vec<AminoAcid>, ParseAminoAcidError> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(AminoAcid::from_one_letter)
        .collect()
}

/// Format a sequence as one-letter codes.
pub fn format_sequence(seq: &[AminoAcid]) -> String {
    seq.iter().map(|aa| aa.one_letter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_amino_acids_with_unique_codes() {
        assert_eq!(AminoAcid::ALL.len(), 20);
        let mut ones: Vec<char> = AminoAcid::ALL.iter().map(|a| a.one_letter()).collect();
        ones.sort_unstable();
        ones.dedup();
        assert_eq!(ones.len(), 20, "one-letter codes must be unique");
        let mut threes: Vec<&str> = AminoAcid::ALL.iter().map(|a| a.three_letter()).collect();
        threes.sort_unstable();
        threes.dedup();
        assert_eq!(threes.len(), 20, "three-letter codes must be unique");
    }

    #[test]
    fn index_roundtrip() {
        for aa in AminoAcid::ALL {
            assert_eq!(AminoAcid::from_index(aa.index()), aa);
        }
    }

    #[test]
    fn one_letter_roundtrip() {
        for aa in AminoAcid::ALL {
            assert_eq!(AminoAcid::from_one_letter(aa.one_letter()).unwrap(), aa);
            // lower case accepted too
            assert_eq!(
                AminoAcid::from_one_letter(aa.one_letter().to_ascii_lowercase()).unwrap(),
                aa
            );
        }
        assert!(AminoAcid::from_one_letter('X').is_err());
        assert!(AminoAcid::from_one_letter('B').is_err());
    }

    #[test]
    fn from_str_accepts_both_code_lengths() {
        assert_eq!("ALA".parse::<AminoAcid>().unwrap(), AminoAcid::Ala);
        assert_eq!("trp".parse::<AminoAcid>().unwrap(), AminoAcid::Trp);
        assert_eq!("G".parse::<AminoAcid>().unwrap(), AminoAcid::Gly);
        assert!("XYZ".parse::<AminoAcid>().is_err());
        assert!("".parse::<AminoAcid>().is_err());
    }

    #[test]
    fn glycine_and_proline_flags() {
        assert!(AminoAcid::Gly.is_glycine());
        assert!(!AminoAcid::Ala.is_glycine());
        assert!(AminoAcid::Pro.is_proline());
        assert!(!AminoAcid::Gly.is_proline());
    }

    #[test]
    fn centroid_parameters_are_sane() {
        for aa in AminoAcid::ALL {
            let r = aa.centroid_radius();
            let d = aa.centroid_distance();
            if aa.is_glycine() {
                assert_eq!(r, 0.0);
                assert_eq!(d, 0.0);
            } else {
                assert!(r > 1.0 && r < 4.0, "{aa} radius {r}");
                assert!(d > 1.0 && d < 4.0, "{aa} distance {d}");
            }
        }
        // Bigger side chains get bigger spheres.
        assert!(AminoAcid::Trp.centroid_radius() > AminoAcid::Ala.centroid_radius());
    }

    #[test]
    fn rama_classes() {
        assert_eq!(AminoAcid::Gly.rama_class(), RamaClass::Glycine);
        assert_eq!(AminoAcid::Pro.rama_class(), RamaClass::Proline);
        assert_eq!(AminoAcid::Leu.rama_class(), RamaClass::General);
        assert_eq!(RamaClass::COUNT, 3);
        let mut idx: Vec<usize> = [RamaClass::General, RamaClass::Glycine, RamaClass::Proline]
            .iter()
            .map(|c| c.index())
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn sequence_parse_format_roundtrip() {
        let seq = parse_sequence("ACDEFGHIKLMNPQRSTVWY").unwrap();
        assert_eq!(seq.len(), 20);
        assert_eq!(format_sequence(&seq), "ACDEFGHIKLMNPQRSTVWY");
        // Whitespace is ignored.
        let seq2 = parse_sequence("AC DE\nFG").unwrap();
        assert_eq!(format_sequence(&seq2), "ACDEFG");
        assert!(parse_sequence("AB").is_err());
    }

    #[test]
    fn hydropathy_ordering() {
        assert!(AminoAcid::Ile.hydropathy() > AminoAcid::Arg.hydropathy());
        assert!(AminoAcid::Val.hydropathy() > 0.0);
        assert!(AminoAcid::Lys.hydropathy() < 0.0);
    }
}
