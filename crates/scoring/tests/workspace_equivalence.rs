//! Property tests for the zero-allocation scoring pipeline, in two tiers:
//!
//! 1. **Wrapper identity** — `score_with` (workspace path) and the legacy
//!    `score` wrapper must be **bit-identical** for any torsion vector, on
//!    all three scoring functions and the combined multi-scorer.  This pins
//!    the wrapper/scratch-reuse contract, but since `score` delegates to
//!    `score_with` it cannot detect a defect in the rewritten kernels.
//! 2. **Seed-math equivalence** — the SoA kernels must agree with an
//!    *independent* reimplementation of the seed repository's original
//!    kernels ([`seed_reference`]): DIST and TRIPLET bit-identically (same
//!    summation order; the Cα–Cα bounding skip only removes
//!    zero-contribution pairs), VDW to tight relative tolerance (the
//!    environment term sums the same contacts in a different order).

use lms_protein::{BenchmarkLibrary, LoopBuilder, LoopTarget, Torsions};
use lms_scoring::{
    DistScore, KnowledgeBase, KnowledgeBaseConfig, MultiScorer, ScoreScratch, ScoringFunction,
    TripletScore, VdwScore,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Independent reimplementation of the seed repository's scoring kernels
/// (AoS interaction sites, spatial-grid environment queries, nested
/// atom-pair loops), used as the ground truth the SoA rewrite is checked
/// against.  Deliberately *not* written in terms of the production kernels.
mod seed_reference {
    use lms_geometry::Vec3;
    use lms_protein::{LoopStructure, LoopTarget, RamaClass, Torsions};
    use lms_scoring::{
        BackboneAtomKind, ContactWeights, KnowledgeBase, SeparationClass, VdwRadii, DIST_MAX,
    };

    fn overlap_penalty(softness: f64, d: f64, sigma: f64) -> f64 {
        let sigma = sigma * softness;
        if d >= sigma || sigma <= 0.0 {
            0.0
        } else {
            let x = (sigma - d) / sigma;
            x * x
        }
    }

    pub fn vdw(target: &LoopTarget, structure: &LoopStructure) -> f64 {
        let radii = VdwRadii::default();
        let weights = ContactWeights::default();
        let mut sites: Vec<(Vec3, f64, usize, bool)> =
            Vec::with_capacity(structure.n_residues() * 5);
        for (i, res) in structure.residues.iter().enumerate() {
            sites.push((res.n, radii.n, i, false));
            sites.push((res.ca, radii.ca, i, false));
            sites.push((res.c, radii.c, i, false));
            sites.push((res.o, radii.o, i, false));
            if let Some(c) = res.centroid {
                sites.push((c, target.sequence[i].centroid_radius(), i, true));
            }
        }
        let weight = |a: bool, b: bool| match (a, b) {
            (false, false) => weights.atom_atom,
            (true, true) => weights.centroid_centroid,
            _ => weights.atom_centroid,
        };
        let mut total = 0.0;
        for (a, &(pa, ra, ia, ca)) in sites.iter().enumerate() {
            for &(pb, rb, ib, cb) in &sites[(a + 1)..] {
                if ib.abs_diff(ia) < 2 {
                    continue;
                }
                total += weight(ca, cb) * overlap_penalty(radii.softness, pa.distance(pb), ra + rb);
            }
        }
        for &(p, r, _i, is_centroid) in &sites {
            target.environment.for_each_within(p, 7.0, |atom| {
                total += weight(is_centroid, atom.is_centroid)
                    * overlap_penalty(radii.softness, p.distance(atom.position), r + atom.radius);
            });
        }
        total / structure.n_residues() as f64
    }

    pub fn dist(kb: &KnowledgeBase, structure: &LoopStructure) -> f64 {
        let per_res: Vec<[(BackboneAtomKind, Vec3); 4]> = structure
            .residues
            .iter()
            .map(|r| {
                [
                    (BackboneAtomKind::N, r.n),
                    (BackboneAtomKind::Ca, r.ca),
                    (BackboneAtomKind::C, r.c),
                    (BackboneAtomKind::O, r.o),
                ]
            })
            .collect();
        let n = per_res.len();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let Some(sep) = SeparationClass::from_separation(j - i) else {
                    continue;
                };
                for &(ka, pa) in &per_res[i] {
                    for &(kb_kind, pb) in &per_res[j] {
                        let d = pa.distance(pb);
                        if d >= DIST_MAX {
                            continue;
                        }
                        total += kb.dist.energy(ka, kb_kind, sep, d);
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }

    pub fn triplet(kb: &KnowledgeBase, target: &LoopTarget, torsions: &Torsions) -> f64 {
        let classes: Vec<RamaClass> = target.sequence.iter().map(|aa| aa.rama_class()).collect();
        let n = classes.len();
        let mut total = 0.0;
        for i in 0..n {
            let prev = if i == 0 {
                RamaClass::General
            } else {
                classes[i - 1]
            };
            let next = if i + 1 == n {
                RamaClass::General
            } else {
                classes[i + 1]
            };
            total += kb
                .triplet
                .energy(prev, classes[i], next, torsions.phi(i), torsions.psi(i));
        }
        total / n as f64
    }
}

fn shared_target() -> &'static LoopTarget {
    static TARGET: OnceLock<LoopTarget> = OnceLock::new();
    TARGET.get_or_init(|| BenchmarkLibrary::standard().target_by_name("1cex").unwrap())
}

fn shared_kb() -> Arc<KnowledgeBase> {
    static KB: OnceLock<Arc<KnowledgeBase>> = OnceLock::new();
    Arc::clone(KB.get_or_init(|| KnowledgeBase::build(KnowledgeBaseConfig::fast())))
}

fn arb_torsions(n_residues: usize) -> impl Strategy<Value = Torsions> {
    prop::collection::vec(-std::f64::consts::PI..std::f64::consts::PI, 2 * n_residues)
        .prop_map(Torsions::from_flat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vdw_workspace_path_is_bit_identical(torsions in arb_torsions(12)) {
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let vdw = VdwScore::default();
        let legacy = vdw.score(target, &structure, &torsions);
        let mut scratch = ScoreScratch::new();
        let with_ws = vdw.score_with(target, &structure, &torsions, &mut scratch);
        prop_assert_eq!(legacy.to_bits(), with_ws.to_bits());
    }

    #[test]
    fn dist_workspace_path_is_bit_identical(torsions in arb_torsions(12)) {
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let dist = DistScore::new(shared_kb());
        let legacy = dist.score(target, &structure, &torsions);
        let mut scratch = ScoreScratch::new();
        let with_ws = dist.score_with(target, &structure, &torsions, &mut scratch);
        prop_assert_eq!(legacy.to_bits(), with_ws.to_bits());
    }

    #[test]
    fn triplet_workspace_path_is_bit_identical(torsions in arb_torsions(12)) {
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let triplet = TripletScore::new(shared_kb());
        let legacy = triplet.score(target, &structure, &torsions);
        let mut scratch = ScoreScratch::new();
        let with_ws = triplet.score_with(target, &structure, &torsions, &mut scratch);
        prop_assert_eq!(legacy.to_bits(), with_ws.to_bits());
    }

    #[test]
    fn multi_scorer_workspace_path_is_bit_identical(torsions in arb_torsions(12)) {
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let multi = MultiScorer::new(shared_kb());
        let legacy = multi.evaluate(target, &structure, &torsions);
        let mut scratch = ScoreScratch::new();
        let with_ws = multi.evaluate_with(target, &structure, &torsions, &mut scratch);
        prop_assert_eq!(legacy.vdw().to_bits(), with_ws.vdw().to_bits());
        prop_assert_eq!(legacy.dist().to_bits(), with_ws.dist().to_bits());
        prop_assert_eq!(legacy.triplet().to_bits(), with_ws.triplet().to_bits());
    }

    #[test]
    fn dist_matches_seed_reference_bit_identically(torsions in arb_torsions(12)) {
        // Same summation order as the seed kernel; the bounding skip only
        // removes pairs the seed kernel also skipped (zero contribution).
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let dist = DistScore::new(shared_kb());
        let mut scratch = ScoreScratch::new();
        let ours = dist.score_with(target, &structure, &torsions, &mut scratch);
        let reference = seed_reference::dist(&shared_kb(), &structure);
        prop_assert_eq!(ours.to_bits(), reference.to_bits());
    }

    #[test]
    fn triplet_matches_seed_reference_bit_identically(torsions in arb_torsions(12)) {
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let triplet = TripletScore::new(shared_kb());
        let mut scratch = ScoreScratch::new();
        let ours = triplet.score_with(target, &structure, &torsions, &mut scratch);
        let reference = seed_reference::triplet(&shared_kb(), target, &torsions);
        prop_assert_eq!(ours.to_bits(), reference.to_bits());
    }

    #[test]
    fn vdw_matches_seed_reference_numerically(torsions in arb_torsions(12)) {
        // The environment term sums the same contact set in a different
        // order (linear candidate scan vs. grid-cell order), so equality is
        // up to floating-point reassociation only.
        let target = shared_target();
        let structure = target.build(&LoopBuilder::default(), &torsions);
        let vdw = VdwScore::default();
        let mut scratch = ScoreScratch::new();
        let ours = vdw.score_with(target, &structure, &torsions, &mut scratch);
        let reference = seed_reference::vdw(target, &structure);
        prop_assert!(
            (ours - reference).abs() <= 1e-9 * (1.0 + reference.abs()),
            "VDW diverged from seed math: {} vs {}", ours, reference
        );
    }

    #[test]
    fn scratch_reuse_across_conformations_is_sound(
        torsions_a in arb_torsions(12),
        torsions_b in arb_torsions(12),
    ) {
        // One warm scratch reused across different conformations (the
        // sampler's actual usage pattern) must match fresh-scratch scoring.
        let target = shared_target();
        let builder = LoopBuilder::default();
        let multi = MultiScorer::new(shared_kb());
        let mut scratch = ScoreScratch::for_loop_len(12);
        for torsions in [&torsions_a, &torsions_b, &torsions_a] {
            let structure = target.build(&builder, torsions);
            let reused = multi.evaluate_with(target, &structure, torsions, &mut scratch);
            let fresh = multi.evaluate(target, &structure, torsions);
            prop_assert_eq!(reused.vdw().to_bits(), fresh.vdw().to_bits());
            prop_assert_eq!(reused.dist().to_bits(), fresh.dist().to_bits());
            prop_assert_eq!(reused.triplet().to_bits(), fresh.triplet().to_bits());
        }
    }
}
