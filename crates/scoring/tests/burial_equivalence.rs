//! Property tests for the BURIAL objective and the shared VDW/BURIAL
//! environment gather:
//!
//! * the shared-gather burial score (piggybacked on the VDW cell-list
//!   queries) is **bit-identical** to both the standalone cell-list kernel
//!   and the exhaustive linear-scan reference, on arbitrary conformations
//!   and environment densities;
//! * enabling the objective leaves the three core components bit-identical
//!   to the three-objective evaluation (the wider Cα gathers only add
//!   candidates that contribute exactly 0 to the VDW sum);
//! * with the objective disabled, the BURIAL slot stays at exactly `0.0`.

use lms_geometry::{StreamRngFactory, Vec3};
use lms_protein::{BenchmarkLibrary, EnvAtom, Environment, LoopBuilder, LoopTarget, Torsions};
use lms_scoring::{
    BurialScore, KnowledgeBase, KnowledgeBaseConfig, MultiScorer, ScoreScratch, ScratchPool,
};
use proptest::prelude::*;
use rand::Rng;
use std::sync::{Arc, OnceLock};

fn kb() -> Arc<KnowledgeBase> {
    static KB: OnceLock<Arc<KnowledgeBase>> = OnceLock::new();
    KB.get_or_init(|| KnowledgeBase::build(KnowledgeBaseConfig::fast()))
        .clone()
}

/// A perturbed-native conformation of the target, deterministic in `seed`.
fn perturbed(target: &LoopTarget, seed: u64, magnitude: f64) -> Torsions {
    let mut rng = StreamRngFactory::new(seed).stream(0, 0);
    let mut t = target.native_torsions.clone();
    for k in 0..t.n_angles() {
        t.rotate_angle(k, lms_geometry::random_torsion(&mut rng) * magnitude);
    }
    t
}

/// A variant of `base` with `extra` additional environment atoms scattered
/// through the loop's reach sphere (denser burial shell).
fn densified(base: &LoopTarget, extra: usize, seed: u64) -> LoopTarget {
    let mut atoms = base.environment.atoms().to_vec();
    let mut rng = StreamRngFactory::new(seed).stream(1, 0);
    let center = base.frame.n_anchor.ca;
    let reach = base.reach_radius();
    while atoms.len() < base.environment.len() + extra {
        let v = Vec3::new(
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        );
        let n = v.norm();
        if !(1e-3..=1.0).contains(&n) {
            continue;
        }
        let pos = center + (v / n) * (reach * rng.gen::<f64>().cbrt());
        atoms.push(EnvAtom::backbone(pos, 1.7));
    }
    LoopTarget {
        environment: Arc::new(Environment::new(atoms)),
        env_cache: Default::default(),
        ..base.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shared_gather_equals_standalone_and_linear(
        seed in 0usize..1_000,
        magnitude in 0.0f64..0.4,
        target_idx in 0usize..3,
        extra in 0usize..400,
    ) {
        let names = ["1cex", "1xyz", "5pti"];
        let lib = BenchmarkLibrary::standard();
        let base = lib.target_by_name(names[target_idx]).unwrap();
        let target = densified(&base, extra, (seed ^ 0x9E37) as u64);
        let builder = LoopBuilder::default();
        let torsions = perturbed(&target, seed as u64, magnitude);
        let structure = target.build(&builder, &torsions);

        // Shared-gather path (production): burial piggybacked on the VDW
        // environment pass inside the burial-enabled MultiScorer.
        let scorer = MultiScorer::new(kb()).with_burial(true);
        let mut scratch = ScoreScratch::for_loop_len(target.n_residues());
        let v = scorer.evaluate_with(&target, &structure, &torsions, &mut scratch);

        // Standalone cell-list kernel and exhaustive linear reference.
        let burial = BurialScore::new(kb());
        let mut scratch2 = ScoreScratch::new();
        let standalone = burial.score_target_with(&target, &structure, &mut scratch2);
        let linear = burial.score_target_linear(&target, &structure);

        prop_assert_eq!(v.burial().to_bits(), standalone.to_bits());
        prop_assert_eq!(v.burial().to_bits(), linear.to_bits());
        prop_assert!(v.burial().is_finite());

        // The piggybacked counts match the standalone counting kernel.
        prop_assert_eq!(scratch.burial_counts(), scratch2.burial_counts());
    }

    #[test]
    fn enabling_burial_leaves_core_objectives_bit_identical(
        seed in 0usize..1_000,
        magnitude in 0.0f64..0.4,
        target_idx in 0usize..3,
    ) {
        let names = ["1cex", "1xyz", "3pte"];
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name(names[target_idx]).unwrap();
        let builder = LoopBuilder::default();
        let torsions = perturbed(&target, seed as u64, magnitude);
        let structure = target.build(&builder, &torsions);

        let three = MultiScorer::new(kb());
        let four = three.clone().with_burial(true);
        let mut s3 = ScoreScratch::new();
        let mut s4 = ScoreScratch::new();
        let v3 = three.evaluate_with(&target, &structure, &torsions, &mut s3);
        let v4 = four.evaluate_with(&target, &structure, &torsions, &mut s4);

        prop_assert_eq!(v3.vdw().to_bits(), v4.vdw().to_bits());
        prop_assert_eq!(v3.dist().to_bits(), v4.dist().to_bits());
        prop_assert_eq!(v3.triplet().to_bits(), v4.triplet().to_bits());
        prop_assert_eq!(v3.burial(), 0.0);
    }
}

#[test]
fn pooled_scratch_reuse_does_not_change_burial_scores() {
    // A scratch warmed up on one (dense) target must score another target
    // identically to a fresh scratch — the buffers carry capacity, never
    // state.
    let lib = BenchmarkLibrary::standard();
    let builder = LoopBuilder::default();
    let scorer = MultiScorer::new(kb()).with_burial(true);
    let pool = ScratchPool::new();

    let warm_target = lib.target_by_name("1xyz").unwrap();
    let warm = warm_target.build(&builder, &warm_target.native_torsions);
    let mut scratch = pool.acquire(warm_target.n_residues());
    scorer.evaluate_with(
        &warm_target,
        &warm,
        &warm_target.native_torsions,
        &mut scratch,
    );

    let target = lib.target_by_name("1cex").unwrap();
    let native = target.build(&builder, &target.native_torsions);
    let reused = scorer.evaluate_with(&target, &native, &target.native_torsions, &mut scratch);
    let fresh = scorer.evaluate(&target, &native, &target.native_torsions);
    assert_eq!(reused, fresh);
    assert_eq!(reused.burial().to_bits(), fresh.burial().to_bits());
}
