//! Property tests for the VDW environment cell list: the cell-list query
//! path ([`VdwScore::environment_term`]) must be **bit-identical** (`==`
//! over raw `f64`s, no tolerance) to the exhaustive linear SoA scan
//! ([`VdwScore::environment_term_linear`]) for random environments —
//! including empty environments, environments collapsed into a single grid
//! cell, widely scattered ones, and random softness/weight parameters.
//! The sort-into-ascending-index step inside the cell path is what makes
//! the floating-point summation order (and hence every output bit) match.

use lms_geometry::{deg_to_rad, Vec3};
use lms_protein::LoopBuilder;
use lms_protein::{AminoAcid, AnchorFrame, EnvAtom, Environment, LoopFrame, LoopTarget, Torsions};
use lms_scoring::{ContactWeights, ScoreScratch, VdwRadii, VdwScore};
use proptest::prelude::*;
use std::f64::consts::PI;
use std::sync::Arc;

const LOOP_RES: usize = 8;

/// Build a self-contained loop target around the given environment atoms.
fn target_with_env(angles: &[f64], env_atoms: Vec<EnvAtom>) -> LoopTarget {
    let builder = LoopBuilder::default();
    let sequence: Vec<AminoAcid> = (0..LOOP_RES)
        .map(|i| AminoAcid::from_index((i * 5 + 1) % 20))
        .collect();
    let native_torsions = Torsions::from_flat(angles[..2 * LOOP_RES].to_vec());
    let frame = LoopFrame {
        n_anchor: AnchorFrame::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.458, 0.0, 0.0),
            Vec3::new(2.0, 1.4, 0.0),
        ),
        n_anchor_psi: deg_to_rad(130.0),
        c_anchor: AnchorFrame::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO),
        c_anchor_phi: deg_to_rad(-70.0),
    };
    let native_structure = builder.build(&frame, &sequence, &native_torsions);
    let frame = LoopFrame {
        c_anchor: native_structure.end_frame,
        ..frame
    };
    let native_structure = builder.build(&frame, &sequence, &native_torsions);
    LoopTarget {
        name: "cells".to_string(),
        start_res: 1,
        end_res: LOOP_RES,
        sequence,
        frame,
        environment: Arc::new(Environment::new(env_atoms)),
        native_torsions,
        native_structure,
        buried: false,
        env_cache: Default::default(),
    }
}

/// Decode a flat parameter vector into environment atoms scattered at the
/// given length scale around the loop region.
fn env_from(params: &[f64], count: usize, scale: f64) -> Vec<EnvAtom> {
    (0..count)
        .map(|i| {
            let p = Vec3::new(
                params[3 * i] * scale,
                params[3 * i + 1] * scale,
                params[3 * i + 2] * scale,
            );
            // Mix backbone atoms and centroids with varied radii.
            if i % 3 == 0 {
                EnvAtom::centroid(p, 1.8 + params[3 * i].abs())
            } else {
                EnvAtom::backbone(p, 1.4 + 0.3 * (i % 2) as f64)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cell_list_env_term_is_bit_identical_to_linear_scan(
        angles in prop::collection::vec(-PI..PI, 2 * LOOP_RES),
        coords in prop::collection::vec(-1.0..1.0f64, 3 * 96),
        count in 0usize..96,
        scale in 2.0..25.0f64,
    ) {
        let target = target_with_env(&angles, env_from(&coords, count, scale));
        let vdw = VdwScore::default();
        let builder = LoopBuilder::default();
        let structure = target.build(&builder, &target.native_torsions);
        let mut scratch = ScoreScratch::new();
        let cells = vdw.environment_term(&target, &structure, &mut scratch);
        let linear = vdw.environment_term_linear(&target, &structure, &mut scratch);
        prop_assert_eq!(cells, linear);
        // The full score path (which routes through the cell list) stays
        // finite and deterministic.
        let a = vdw.score_target_with(&target, &structure, &mut scratch);
        let b = vdw.score_target_with(&target, &structure, &mut scratch);
        prop_assert_eq!(a, b);
        prop_assert!(a.is_finite());
    }

    #[test]
    fn equivalence_holds_for_random_radii_and_weights(
        angles in prop::collection::vec(-PI..PI, 2 * LOOP_RES),
        coords in prop::collection::vec(-1.0..1.0f64, 3 * 48),
        count in 1usize..48,
        softness in 0.5..1.3f64,
        w in prop::collection::vec(0.0..2.0f64, 3),
    ) {
        // Tight scatter so many pairs actually overlap.
        let target = target_with_env(&angles, env_from(&coords, count, 6.0));
        let vdw = VdwScore::new(
            VdwRadii { softness, ..VdwRadii::default() },
            ContactWeights {
                atom_atom: w[0],
                atom_centroid: w[1],
                centroid_centroid: w[2],
            },
        );
        let builder = LoopBuilder::default();
        let structure = target.build(&builder, &target.native_torsions);
        let mut scratch = ScoreScratch::new();
        let cells = vdw.environment_term(&target, &structure, &mut scratch);
        let linear = vdw.environment_term_linear(&target, &structure, &mut scratch);
        prop_assert_eq!(cells, linear);
        // With a tight scatter the term should usually be non-trivial;
        // ensure the test is not vacuously comparing zeros every time.
        prop_assert!(cells >= 0.0);
    }

    #[test]
    fn equivalence_holds_across_conformations_with_one_scratch(
        angles in prop::collection::vec(-PI..PI, 2 * LOOP_RES),
        edits in prop::collection::vec((0usize..2 * LOOP_RES, -PI..PI), 8),
        coords in prop::collection::vec(-1.0..1.0f64, 3 * 64),
        scale in 3.0..15.0f64,
    ) {
        // One scratch reused across many conformations — the sampler's
        // access pattern — must keep both paths in exact agreement.
        let target = target_with_env(&angles, env_from(&coords, 64, scale));
        let vdw = VdwScore::default();
        let builder = LoopBuilder::default();
        let mut torsions = target.native_torsions.clone();
        let mut scratch = ScoreScratch::for_loop_len(LOOP_RES);
        for (k, v) in edits {
            torsions.set_angle(k, v);
            let structure = target.build(&builder, &torsions);
            let cells = vdw.environment_term(&target, &structure, &mut scratch);
            let linear = vdw.environment_term_linear(&target, &structure, &mut scratch);
            prop_assert_eq!(cells, linear);
        }
    }
}

#[test]
fn empty_environment_scores_zero_on_both_paths() {
    let angles = vec![-1.1; 2 * LOOP_RES];
    let target = target_with_env(&angles, Vec::new());
    let vdw = VdwScore::default();
    let builder = LoopBuilder::default();
    let structure = target.build(&builder, &target.native_torsions);
    let mut scratch = ScoreScratch::new();
    assert_eq!(vdw.environment_term(&target, &structure, &mut scratch), 0.0);
    assert_eq!(
        vdw.environment_term_linear(&target, &structure, &mut scratch),
        0.0
    );
}

#[test]
fn single_cell_environment_matches_linear_scan() {
    // Every environment atom inside one 4 Å grid cell, overlapping the
    // loop: the degenerate 1×1×1 grid must still agree bit for bit.
    let angles = vec![-0.9; 2 * LOOP_RES];
    let atoms = vec![
        EnvAtom::backbone(Vec3::new(2.2, 1.0, 0.4), 1.7),
        EnvAtom::backbone(Vec3::new(2.5, 1.2, 0.1), 1.5),
        EnvAtom::centroid(Vec3::new(2.1, 0.8, 0.6), 2.3),
    ];
    let target = target_with_env(&angles, atoms);
    let vdw = VdwScore::default();
    let builder = LoopBuilder::default();
    let structure = target.build(&builder, &target.native_torsions);
    let mut scratch = ScoreScratch::new();
    let cells = vdw.environment_term(&target, &structure, &mut scratch);
    let linear = vdw.environment_term_linear(&target, &structure, &mut scratch);
    assert_eq!(cells, linear);
    assert!(
        cells > 0.0,
        "atoms this close must produce a non-zero clash term"
    );
}
