//! Scoring-function abstractions shared by the three objectives.

use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::fmt;

/// Number of scoring functions (objectives) sampled simultaneously.
pub const NUM_OBJECTIVES: usize = 3;

/// A backbone scoring function evaluated on a built loop conformation.
///
/// Implementations must be cheap to evaluate (they run once per
/// conformation per iteration, i.e. millions of times per trajectory) and
/// thread-safe, because the executor evaluates the population in parallel.
///
/// The primary entry point is [`ScoringFunction::score_with`], which stages
/// intermediate data in a caller-owned [`ScoreScratch`] and performs no heap
/// allocation after warm-up.  [`ScoringFunction::score`] is a convenience
/// wrapper that allocates a throwaway scratch; both paths run the identical
/// kernel and therefore return bit-identical values.
pub trait ScoringFunction: Send + Sync {
    /// Short identifier used in reports (`"VDW"`, `"DIST"`, `"TRIPLET"`).
    fn name(&self) -> &'static str;

    /// Score a conformation; lower is better.  Thin allocating wrapper over
    /// [`ScoringFunction::score_with`], kept for call sites that evaluate
    /// rarely and don't want to manage a workspace.
    fn score(&self, target: &LoopTarget, structure: &LoopStructure, torsions: &Torsions) -> f64 {
        let mut scratch = ScoreScratch::new();
        self.score_with(target, structure, torsions, &mut scratch)
    }

    /// Score a conformation using caller-owned scratch buffers; lower is
    /// better.  Must not allocate once `scratch` has warmed up on this loop
    /// length, and must return exactly the same value as
    /// [`ScoringFunction::score`].
    fn score_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64;
}

/// The vector of the three objective values for one conformation, in the
/// fixed order (VDW, DIST, TRIPLET).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreVector {
    /// Soft-sphere van der Waals clash score.
    pub vdw: f64,
    /// Atom pair-wise distance-based score.
    pub dist: f64,
    /// Triplet torsion-angle score.
    pub triplet: f64,
}

impl ScoreVector {
    /// Construct from explicit components.
    pub fn new(vdw: f64, dist: f64, triplet: f64) -> Self {
        ScoreVector { vdw, dist, triplet }
    }

    /// The components as an array in (VDW, DIST, TRIPLET) order.
    pub fn as_array(&self) -> [f64; NUM_OBJECTIVES] {
        [self.vdw, self.dist, self.triplet]
    }

    /// Build from an array in (VDW, DIST, TRIPLET) order.
    pub fn from_array(a: [f64; NUM_OBJECTIVES]) -> Self {
        ScoreVector {
            vdw: a[0],
            dist: a[1],
            triplet: a[2],
        }
    }

    /// Pareto dominance: `self` dominates `other` iff it is no worse in
    /// every objective and strictly better in at least one (lower = better).
    pub fn dominates(&self, other: &ScoreVector) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        let mut strictly_better = false;
        for i in 0..NUM_OBJECTIVES {
            if a[i] > b[i] {
                return false;
            }
            if a[i] < b[i] {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Whether every component is finite.
    pub fn is_finite(&self) -> bool {
        self.vdw.is_finite() && self.dist.is_finite() && self.triplet.is_finite()
    }
}

impl fmt::Display for ScoreVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VDW={:.3} DIST={:.3} TRIPLET={:.3}",
            self.vdw, self.dist, self.triplet
        )
    }
}

/// Identifies one of the three objectives; used by the ablation benches and
/// the single-objective baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Soft-sphere van der Waals clash score.
    Vdw,
    /// Atom pair-wise distance-based score.
    Dist,
    /// Triplet torsion-angle score.
    Triplet,
}

impl Objective {
    /// All objectives in canonical (VDW, DIST, TRIPLET) order.
    pub const ALL: [Objective; NUM_OBJECTIVES] =
        [Objective::Vdw, Objective::Dist, Objective::Triplet];

    /// Extract this objective's value from a score vector.
    pub fn value(&self, s: &ScoreVector) -> f64 {
        match self {
            Objective::Vdw => s.vdw,
            Objective::Dist => s.dist,
            Objective::Triplet => s.triplet,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Vdw => "VDW",
            Objective::Dist => "DIST",
            Objective::Triplet => "TRIPLET",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let s = ScoreVector::new(1.0, 2.0, 3.0);
        assert_eq!(ScoreVector::from_array(s.as_array()), s);
        assert_eq!(s.as_array(), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn dominance_relation() {
        let a = ScoreVector::new(1.0, 1.0, 1.0);
        let b = ScoreVector::new(2.0, 2.0, 2.0);
        let c = ScoreVector::new(0.5, 3.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Incomparable pair.
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        // No self-domination.
        assert!(!a.dominates(&a));
        // Equal in some, better in one.
        let d = ScoreVector::new(1.0, 1.0, 0.5);
        assert!(d.dominates(&a));
        assert!(!a.dominates(&d));
    }

    #[test]
    fn finiteness() {
        assert!(ScoreVector::new(1.0, 2.0, 3.0).is_finite());
        assert!(!ScoreVector::new(f64::NAN, 2.0, 3.0).is_finite());
        assert!(!ScoreVector::new(1.0, f64::INFINITY, 3.0).is_finite());
    }

    #[test]
    fn objective_accessors() {
        let s = ScoreVector::new(1.0, 2.0, 3.0);
        assert_eq!(Objective::Vdw.value(&s), 1.0);
        assert_eq!(Objective::Dist.value(&s), 2.0);
        assert_eq!(Objective::Triplet.value(&s), 3.0);
        assert_eq!(Objective::ALL.len(), NUM_OBJECTIVES);
        assert_eq!(Objective::Vdw.name(), "VDW");
        assert_eq!(Objective::Triplet.name(), "TRIPLET");
    }

    #[test]
    fn display_contains_all_components() {
        let s = format!("{}", ScoreVector::new(1.5, 2.5, 3.5));
        assert!(s.contains("VDW=1.5"));
        assert!(s.contains("DIST=2.5"));
        assert!(s.contains("TRIPLET=3.5"));
    }
}
